//! Live churn over **real loopback sockets**: a WS-Gossip fleet whose
//! membership is not configured but *discovered* — every node runs a
//! `wsg_cluster` heartbeat plane on its own listener, joiners bootstrap
//! through a seed node, and crash-stopped peers are detected by silence
//! (φ accrual) or refused connections, with no announcement. The gossip
//! layer draws its per-round peer list from the live view, so
//! dissemination keeps reaching every live member while the fleet churns
//! under a publication stream.
//!
//! CI runs this binary with `WSG_BENCH_FAST=1`, which shrinks the fleet
//! and the stream so the smoke test stays quick.
//!
//! Run with:
//! ```text
//! cargo run --example live_churn
//! ```

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ws_gossip::WsGossipNode;
use wsg_cluster::{ClusterConfig, ClusterRuntime, MembershipPlane};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::NetRuntimeConfig;
use wsg_http::server::HttpServerConfig;
use wsg_net::{NodeId, PeerLiveness, SimDuration};
use wsg_xml::Element;

const TOPIC: &str = "quotes";
const MEMBERSHIP_INTERVAL_MS: u64 = 50;
const PUBLISH_INTERVAL_MS: u64 = 200;

/// Scrape `GET /metrics` from a live node socket; returns the body.
fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to node socket");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n")
        .expect("send scrape request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read scrape response");
    let (head, body) = reply.split_once("\r\n\r\n").expect("http head/body split");
    assert!(head.starts_with("HTTP/1.1 200 "), "metrics scrape failed: {head}");
    body.to_string()
}

fn live_set(plane: &Arc<MembershipPlane>) -> BTreeSet<NodeId> {
    plane.live_members().into_iter().collect()
}

/// Poll `cond` every 25ms until it holds; panics with `what` after ~20s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) -> Duration {
    let started = Instant::now();
    for _ in 0..800 {
        if cond() {
            return started.elapsed();
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

fn main() {
    let fast = std::env::var("WSG_BENCH_FAST").is_ok_and(|v| v == "1");
    let disseminators = if fast { 4 } else { 6 };
    let consumers = if fast { 2 } else { 4 };
    let total_ticks = if fast { 10 } else { 18 };
    let fleet_size = 2 + disseminators + consumers;

    let ticks: Vec<Element> = (0..total_ticks)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    // Saturating fanout: dissemination completeness is deterministic, so
    // any gap would point straight at the membership plane.
    let policy = || GossipPolicy::new(GossipParams::new(32, 6));
    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..HttpClientConfig::default()
        },
        server: HttpServerConfig {
            workers: 4,
            read_slice: Duration::from_millis(2),
            ..HttpServerConfig::default()
        },
        ..NetRuntimeConfig::default()
    };

    println!("== WS-Gossip live churn: {fleet_size}-node fleet, dynamic membership ==");
    let mut fleet: ClusterRuntime<WsGossipNode> = ClusterRuntime::new(
        2025,
        config,
        ClusterConfig::for_interval(SimDuration::from_millis(MEMBERSHIP_INTERVAL_MS)),
    );

    // n0 coordinator doubles as the membership seed; everyone else joins
    // through it and learns the rest of the fleet from heartbeat gossip.
    let coordinator = fleet.add_seed(|plane| {
        WsGossipNode::coordinator(NodeId(0)).with_policy(policy()).with_liveness(plane)
    });
    fleet
        .add_node(coordinator, |plane| {
            WsGossipNode::initiator(NodeId(1), coordinator)
                .with_publish_schedule(TOPIC, ticks, SimDuration::from_millis(PUBLISH_INTERVAL_MS))
                .with_liveness(plane)
        })
        .expect("initiator joins");
    for i in 2..2 + disseminators {
        fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::disseminator(NodeId(i), coordinator)
                    .with_auto_subscribe(TOPIC)
                    .with_liveness(plane)
            })
            .expect("disseminator joins");
    }
    for i in 2 + disseminators..fleet_size {
        fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::consumer(NodeId(i), coordinator)
                    .with_auto_subscribe(TOPIC)
                    .with_liveness(plane)
            })
            .expect("consumer joins");
    }
    for id in 0..fleet_size {
        println!("  n{id} listening on {}", fleet.net().addr_of(NodeId(id)));
    }

    let everyone: BTreeSet<NodeId> = (0..fleet_size).map(NodeId).collect();
    let took = wait_for("initial convergence", || {
        everyone.iter().all(|id| live_set(&fleet.plane(*id)) == everyone)
    });
    println!("\nall {fleet_size} members discovered each other in {took:?}");

    // Crash-stop the last consumer mid-stream: no goodbye, listener down
    // first. Survivors detect it by silence and refused heartbeats.
    let victim = NodeId(fleet_size - 1);
    fleet.crash(victim).expect("crash a live consumer");
    let survivors: BTreeSet<NodeId> = (0..fleet_size - 1).map(NodeId).collect();
    let took = wait_for("crash detection", || {
        survivors.iter().all(|id| !fleet.plane(*id).is_live(victim))
    });
    println!("crash of n{} detected by all survivors in {took:?}", victim.index());

    // A late consumer joins through the seed while ticks still flow.
    let joiner = fleet
        .add_node(coordinator, move |plane| {
            WsGossipNode::consumer(NodeId(fleet_size), coordinator)
                .with_auto_subscribe(TOPIC)
                .with_liveness(plane)
        })
        .expect("late consumer joins");
    let live: BTreeSet<NodeId> = survivors.iter().copied().chain([joiner]).collect();
    let took = wait_for("post-churn agreement", || {
        live.iter().all(|id| live_set(&fleet.plane(*id)) == live)
    });
    println!("post-churn view agreed by all {} live members in {took:?}", live.len());

    // The membership gauges are live on every node's own /metrics.
    let scraped = scrape_metrics(fleet.net().addr_of(coordinator));
    println!("\nmembership exposition at the seed:");
    for line in scraped.lines().filter(|l| l.starts_with("wsg_membership_")) {
        println!("  {line}");
    }
    assert!(
        scraped.contains(&format!("wsg_membership_alive {}", live.len())),
        "seed gauge should count the live fleet: {scraped}"
    );

    // Let the stream finish, then check dissemination tracked the view.
    std::thread::sleep(Duration::from_millis(PUBLISH_INTERVAL_MS * total_ticks as u64 + 1500));
    let finished = fleet.shutdown();

    println!();
    let mut complete = 0;
    for node in &finished {
        let role = node.protocol.role();
        let got = node.protocol.distinct_ops().len();
        if !matches!(role, ws_gossip::Role::Disseminator | ws_gossip::Role::Consumer) {
            continue;
        }
        let is_joiner = node.protocol.endpoint() == ws_gossip::endpoint::endpoint_of(joiner);
        let note = if is_joiner { "  <- joined mid-stream" } else { "" };
        println!("{} ({role}): {got}/{total_ticks} ticks{note}", node.protocol.endpoint());
        if got == total_ticks {
            complete += 1;
        }
        if is_joiner {
            let max_seq = node.protocol.distinct_ops().iter().map(|op| op.seq).max();
            assert_eq!(
                max_seq,
                Some(total_ticks as u64 - 1),
                "the joiner must receive ticks published after it subscribed"
            );
        }
    }
    assert!(
        complete >= disseminators,
        "every original disseminator should end with the complete stream"
    );
    println!("\ndissemination followed the live view through a crash and a join.");
}
