//! The paper's motivating scenario (§1): a stock market feed disseminated
//! to many service endpoints, with failures injected mid-stream.
//!
//! A Poisson stream of Zipf-popular ticks is published through WS-Gossip
//! while a quarter of the disseminators crash halfway through the run;
//! the example reports per-node delivery ratios, showing the epidemic
//! routing around the failures.
//!
//! Run with:
//! ```text
//! cargo run --example stock_ticker
//! ```

use ws_gossip::scenario::{self, Figure1Shape};
use ws_gossip::Role;
use wsg_net::sim::SimConfig;
use wsg_net::{NodeId, Pcg32, SimTime};
use wsg_workloads::{ArrivalProcess, Arrivals, StockTicker};

fn main() {
    let shape = Figure1Shape { disseminators: 24, consumers: 8 };
    let mut net = scenario::build_figure1_network(SimConfig::default().seed(7), shape);

    println!("== stock ticker over WS-Gossip ==");
    println!("1 coordinator, 1 initiator, 24 disseminators, 8 consumers\n");

    scenario::subscribe_all(&mut net, "market");
    net.run_to_quiescence();
    scenario::activate(&mut net, "market");
    net.run_to_quiescence();

    // Schedule a 2-second Poisson tick stream at 50 ticks/s.
    let mut rng = Pcg32::new(99, 0);
    let mut arrivals = Arrivals::new(ArrivalProcess::Poisson { rate_per_sec: 50.0 });
    let mut ticker = StockTicker::new(32);
    let schedule = arrivals.schedule_until(SimTime::from_secs(2), &mut rng);
    let total_ticks = schedule.len();
    println!("publishing {total_ticks} ticks over 2s of virtual time");

    let mut crashed = false;
    for at in schedule {
        net.run_until(at);
        // Halfway through, crash 6 of the 24 disseminators.
        if !crashed && at > SimTime::from_secs(1) {
            crashed = true;
            for i in 0..6 {
                net.crash(NodeId(2 + i * 4));
            }
            println!("!! crashed 6 disseminators at t={at}");
        }
        let tick = ticker.next_tick(&mut rng);
        scenario::notify(&mut net, "market", tick.to_element());
    }
    net.run_to_quiescence();

    println!("\n-- delivery report --");
    let mut survivors = 0usize;
    let mut delivered_total = 0usize;
    let mut worst: (usize, String) = (usize::MAX, String::new());
    for id in net.node_ids() {
        let node = net.node(id);
        if !matches!(node.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        if net.is_crashed(id) {
            continue; // crashed nodes are expected to miss the tail
        }
        survivors += 1;
        let got = node.distinct_ops().len();
        delivered_total += got;
        if got < worst.0 {
            worst = (got, format!("{id} ({})", node.role()));
        }
    }
    let mean_ratio = delivered_total as f64 / (survivors * total_ticks) as f64;
    println!(
        "{survivors} surviving subscribers; mean delivery ratio {:.2}%          (worst: {} with {}/{total_ticks})",
        mean_ratio * 100.0,
        worst.1,
        worst.0
    );
    println!(
        "wire traffic: {} messages, {} KiB of SOAP",
        net.stats().sent,
        net.stats().bytes_sent / 1024
    );
    // Each tick is an independent epidemic with ~95%+ per-message
    // atomicity; the aggregate feed stays near-complete through the
    // crash of a quarter of the disseminators.
    assert!(
        mean_ratio >= 0.97,
        "mean delivery ratio {mean_ratio:.3} too low"
    );
}
