//! The distributed Coordinator (paper §3, final paragraph): three
//! coordinator replicas keep the subscriber list "in a distributed
//! fashion", replicating by gossip. Two replicas then crash — and because
//! the state had replicated, dissemination still reaches every subscriber.
//!
//! Run with:
//! ```text
//! cargo run --example distributed_coordinator
//! ```

use ws_gossip::scenario::{
    self, build_distributed_network, distributed_initiator, DistributedShape,
};
use wsg_coord::GossipProtocol;
use wsg_net::sim::SimConfig;
use wsg_net::{NodeId, SimTime};
use wsg_xml::Element;

fn main() {
    let shape = DistributedShape { coordinators: 3, disseminators: 8, consumers: 4 };
    let mut net = build_distributed_network(SimConfig::default().seed(33), shape);

    println!("== distributed coordinator: 3 replicas, 12 subscribers ==\n");

    scenario::subscribe_all(&mut net, "quotes");
    net.run_until(SimTime::from_secs(1));
    println!("after subscriptions (t=1s), per-replica view of 'quotes':");
    for c in 0..3 {
        println!(
            "  replica n{c}: {} subscribers known",
            net.node(NodeId(c)).subscribers_of("quotes", net.now()).len()
        );
    }

    net.run_until(SimTime::from_secs(3));
    println!("\nafter replication gossip (t=3s):");
    for c in 0..3 {
        let known = net.node(NodeId(c)).subscribers_of("quotes", net.now()).len();
        println!("  replica n{c}: {known} subscribers known");
        assert_eq!(known, 12, "replicas must converge");
    }

    println!("\n!! crashing replicas n1 and n2");
    net.crash(NodeId(1));
    net.crash(NodeId(2));

    let initiator = distributed_initiator(shape);
    net.invoke(initiator, |node, ctx| {
        node.activate(GossipProtocol::Push, "quotes", ctx)
    });
    net.run_until(SimTime::from_secs(4));
    net.invoke(initiator, |node, ctx| {
        node.notify("quotes", Element::text_node("tick", "ACME 99.10"), ctx)
    });
    net.run_until(SimTime::from_secs(8));

    let coverage = scenario::coverage(&net, 1);
    println!(
        "\ndissemination through the surviving replica reached {:.0}% of subscribers",
        coverage * 100.0
    );
    println!("(including subscribers whose home replica is dead — their");
    println!(" subscriptions were replicated before the crash)");
    assert_eq!(coverage, 1.0);
}
