//! Side-by-side comparison of the five gossip styles the framework
//! supports (paper §4 promises "different gossip styles"): same network,
//! same seed, same message — different cost/latency/robustness trade-offs.
//!
//! Run with:
//! ```text
//! cargo run --example styles_showdown
//! ```

use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{LatencyModel, NodeId, SimDuration, SimTime};

struct Outcome {
    style: GossipStyle,
    coverage: f64,
    payloads: u64,
    control: u64,
    completion_ms: Option<u64>,
}

fn run(style: GossipStyle, n: usize, loss: f64, seed: u64) -> Outcome {
    let params = GossipParams::atomic_for(n);
    let config = SimConfig::default()
        .seed(seed)
        .drop_probability(loss)
        .latency(LatencyModel::uniform_millis(1, 5));
    let mut net = SimNet::new(config);
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::<u64>::new(
            GossipConfig::new(style, params.clone()).interval(SimDuration::from_millis(50)),
            peers,
        )
    });
    net.start();
    net.invoke(NodeId(0), |engine, ctx| {
        engine.publish(1, ctx);
    });
    net.run_until(SimTime::from_secs(5));

    let reached: Vec<NodeId> = (0..n)
        .map(NodeId)
        .filter(|id| !net.node(*id).delivered().is_empty())
        .collect();
    let completion_ms = if reached.len() == n {
        (0..n)
            .filter_map(|i| net.node(NodeId(i)).delivered().first().map(|d| d.at.as_millis()))
            .max()
    } else {
        None
    };
    let payloads: u64 = (0..n).map(|i| net.node(NodeId(i)).stats().payloads_sent).sum();
    let total = net.stats().sent;
    Outcome {
        style,
        coverage: reached.len() as f64 / n as f64,
        payloads,
        control: total - payloads,
        completion_ms,
    }
}

fn main() {
    let n = 128;
    let loss = 0.10;
    println!("== gossip styles on n={n}, 10% message loss, params=atomic ==\n");
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>12}",
        "style", "coverage", "payloads", "control", "completion"
    );
    for style in GossipStyle::all() {
        let out = run(style, n, loss, 1234);
        println!(
            "{:<14} {:>8.1}% {:>10} {:>10} {:>12}",
            out.style.to_string(),
            out.coverage * 100.0,
            out.payloads,
            out.control,
            out.completion_ms
                .map(|ms| format!("{ms} ms"))
                .unwrap_or_else(|| "incomplete".into()),
        );
    }
    println!(
        "\npayloads = full message copies; control = IHAVE/IWANT/digest traffic.\n\
         Eager push is fastest but most redundant; lazy push trades round-trips\n\
         for ~1x payloads; pull/anti-entropy converge via periodic exchanges."
    );
}
