//! Quickstart: the paper's Figure 1, executed.
//!
//! Builds a coordinator, an initiator, four disseminators and two
//! consumers; subscribes everyone, activates a WS-PushGossip coordination
//! context, publishes one notification, and prints the complete message
//! trace — activation, registration, subscription and the gossip rounds —
//! followed by each node's application-level event log.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use ws_gossip::scenario::{
    self, Figure1Shape, COORDINATOR, INITIATOR,
};
use wsg_net::sim::SimConfig;
use wsg_xml::Element;

fn main() {
    let shape = Figure1Shape { disseminators: 4, consumers: 2 };
    let mut net = scenario::build_figure1_network(SimConfig::default().seed(42), shape);
    let trace = scenario::install_tracer(&mut net);

    println!("== WS-Gossip quickstart: Figure 1 of the paper ==");
    println!(
        "roles: n0 = Coordinator, n1 = Initiator, n2..n5 = Disseminators, n6..n7 = Consumers\n"
    );

    // 1. Consumers and disseminators subscribe to the topic.
    scenario::subscribe_all(&mut net, "quotes");
    net.run_to_quiescence();

    // 2. The initiator activates a gossip coordination context.
    scenario::activate(&mut net, "quotes");
    net.run_to_quiescence();

    // 3. One notification; the gossip layer does the rest.
    scenario::notify(&mut net, "quotes", Element::text_node("tick", "ACME 101.25"));
    net.run_to_quiescence();

    println!("-- network trace ({} events) --", trace.lock().unwrap().len());
    for line in trace.lock().unwrap().iter() {
        println!("  {line}");
    }

    println!("\n-- per-node event logs --");
    for id in net.node_ids() {
        let node = net.node(id);
        println!("{id} ({}):", node.role());
        for event in node.events() {
            println!("    {event}");
        }
    }

    let coverage = scenario::coverage(&net, 1);
    println!("\ncoverage: {:.0}% of subscribers received the notification", coverage * 100.0);
    println!(
        "messages on the wire: {} ({} bytes of SOAP)",
        net.stats().sent,
        net.stats().bytes_sent
    );
    let coordinator = net.node(COORDINATOR);
    println!(
        "coordinator log has {} entries; initiator context: {:?}",
        coordinator.events().len(),
        net.node(INITIATOR).context_for("quotes").map(|c| c.identifier().to_string())
    );
    assert_eq!(coverage, 1.0, "quickstart must reach everyone");
}
