//! Gossip-based aggregation: a fleet of sensors computes its global
//! average with no coordinator at all (push-sum — the aggregation style of
//! the WS-Gossip framework's "multiple application scenarios").
//!
//! Run with:
//! ```text
//! cargo run --example sensor_average
//! ```

use wsg_gossip::PushSum;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, SimDuration, SimTime};

fn spread(net: &SimNet<PushSum>, expected: f64) -> (f64, f64) {
    let estimates: Vec<f64> = net.node_ids().iter().map(|id| net.node(*id).estimate()).collect();
    let max_err = estimates.iter().map(|e| (e - expected).abs()).fold(0.0, f64::max);
    let mean: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
    (mean, max_err)
}

fn main() {
    let n = 64;
    // Sensors report temperatures 15.0 .. 25.0-ish.
    let values: Vec<f64> = (0..n).map(|i| 15.0 + (i % 11) as f64).collect();
    let expected = values.iter().sum::<f64>() / n as f64;

    let mut net = SimNet::new(SimConfig::default().seed(21));
    for (i, &v) in values.iter().enumerate() {
        let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
        net.add_node(PushSum::new(v, peers, SimDuration::from_millis(100)));
    }
    net.start();

    println!("== push-sum aggregation over {n} sensors ==");
    println!("true average: {expected:.4}\n");
    println!("{:>6}  {:>12}  {:>12}", "t (s)", "mean estimate", "max error");
    for secs in [1u64, 2, 4, 8, 16] {
        net.run_until(SimTime::from_secs(secs));
        let (mean, max_err) = spread(&net, expected);
        println!("{secs:>6}  {mean:>12.4}  {max_err:>12.6}");
    }

    // A heat spike at one sensor propagates into the aggregate.
    println!("\n!! sensor n0 spikes +64.0");
    net.node_mut(NodeId(0)).update_value(64.0);
    let expected = expected + 64.0 / n as f64;
    println!("new true average: {expected:.4}");
    for secs in [20u64, 30] {
        net.run_until(SimTime::from_secs(secs));
        let (mean, max_err) = spread(&net, expected);
        println!("t={secs:>3}s  mean {mean:.4}  max error {max_err:.6}");
    }
    let (_, final_err) = spread(&net, expected);
    assert!(final_err < 0.01, "aggregation must re-converge after the spike");
}
