//! The full WS-Gossip middleware over **real loopback HTTP sockets**:
//! every node binds its own `127.0.0.1` listener via `wsg_http` and
//! gossip rounds are serialized SOAP envelopes POSTed between them — the
//! networked counterpart of the `live_threads` demo. One consumer's
//! socket refuses connections to show the client's retry/backoff path in
//! the transport counters.
//!
//! While the fleet gossips, the example scrapes `GET /metrics` from the
//! coordinator's own socket — twice — and validates the exposition:
//! parseable samples, and `_total`/`_count` counters that never move
//! backwards between scrapes. CI runs this binary, so the observability
//! endpoint is smoke-tested on every push.
//!
//! Run with:
//! ```text
//! cargo run --example live_http
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ws_gossip::{Role, WsGossipNode};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig, TransportStats};
use wsg_net::{NodeId, SimDuration};
use wsg_obs::{monotone_keys, parse_exposition};
use wsg_xml::Element;

/// Scrape `GET /metrics` from a live node socket; returns the body.
fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to node socket");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n")
        .expect("send scrape request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read scrape response");
    let (head, body) = reply.split_once("\r\n\r\n").expect("http head/body split");
    assert!(head.starts_with("HTTP/1.1 200 "), "metrics scrape failed: {head}");
    body.to_string()
}

/// Smoke-validate two consecutive scrapes: both parse, sample keys are
/// deterministic where state overlaps, and no counter moves backwards.
fn validate_scrapes(first: &str, second: &str) -> usize {
    let before = parse_exposition(first).expect("first scrape parses");
    let after = parse_exposition(second).expect("second scrape parses");
    assert!(!before.is_empty(), "exposition must carry samples");
    let counters = monotone_keys(&before);
    for (key, old) in &before {
        let new = after
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("sample {key} disappeared between scrapes"));
        if counters.contains(&key.as_str()) {
            assert!(new >= *old, "counter {key} went backwards: {old} -> {new}");
        }
    }
    after.len()
}

fn main() {
    let coordinator = NodeId(0);
    let ticks: Vec<Element> = (0..5)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    let total = ticks.len();

    // n0 coordinator, n1 self-driving initiator, n2-n4 disseminators,
    // n5-n6 consumers, n7 a consumer whose socket refuses connections.
    // Saturating fanout keeps the live subscribers' completeness
    // deterministic, as in the threaded demo.
    let mut nodes = vec![
        WsGossipNode::coordinator(coordinator)
            .with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            ticks,
            SimDuration::from_millis(150),
        ),
    ];
    for i in 2..5 {
        nodes.push(WsGossipNode::disseminator(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    for i in 5..8 {
        nodes.push(WsGossipNode::consumer(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    let refused = NodeId(7);

    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        refuse: vec![refused],
        ..NetRuntimeConfig::default()
    };

    println!("== WS-Gossip live on {} loopback HTTP sockets ==", nodes.len());
    let net = NetRuntime::spawn(nodes, 99, config);
    for id in 0..net.node_count() {
        let marker = if NodeId(id) == refused { "  (refuses connections)" } else { "" };
        println!("  n{id} listening on {}{marker}", net.addr_of(NodeId(id)));
    }
    println!("\npublishing {total} ticks at 150ms intervals over HTTP\n");

    // Scrape the coordinator's /metrics endpoint mid-flight, let more
    // gossip traffic land, then scrape again and check the counters only
    // ever go up. The exposition excerpt below is what a Prometheus
    // scraper would ingest.
    let metrics_addr = net.addr_of(coordinator);
    std::thread::sleep(Duration::from_millis(1200));
    let first = scrape_metrics(metrics_addr);
    std::thread::sleep(Duration::from_millis(1200));
    let second = scrape_metrics(metrics_addr);
    let samples = validate_scrapes(&first, &second);
    println!("scraped http://{metrics_addr}/metrics twice: {samples} samples, counters monotone");
    println!("exposition excerpt:");
    for line in second.lines().filter(|l| l.contains("wsg_http_server_")) {
        println!("  {line}");
    }
    println!();

    let finished = net.shutdown_after(Duration::from_millis(1100));

    let mut all_complete = true;
    for (i, node) in finished.iter().enumerate() {
        if !matches!(node.protocol.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        let got = node.protocol.distinct_ops().len();
        let note = if NodeId(i) == refused { "  <- refused, never reachable" } else { "" };
        println!("{} ({}): {got}/{total} ticks{note}", node.protocol.endpoint(), node.protocol.role());
        if NodeId(i) != refused && got != total {
            all_complete = false;
        }
    }

    let totals = finished.iter().fold(TransportStats::default(), |mut acc, n| {
        acc.posts_ok += n.transport.posts_ok;
        acc.posts_failed += n.transport.posts_failed;
        acc.attempts += n.transport.attempts;
        acc.unroutable += n.transport.unroutable;
        acc
    });
    println!(
        "\ntransport: {} envelopes delivered, {} abandoned after retries, {} connect attempts",
        totals.posts_ok, totals.posts_failed, totals.attempts
    );

    assert!(all_complete, "every reachable subscriber should get the full feed");
    assert!(totals.posts_failed > 0, "the refused node should show up in the counters");
    println!("\nall reachable subscribers received the complete feed over real sockets.");
}
