//! The full WS-Gossip middleware over **real loopback HTTP sockets**:
//! every node binds its own `127.0.0.1` listener via `wsg_http` and
//! gossip rounds are serialized SOAP envelopes POSTed between them — the
//! networked counterpart of the `live_threads` demo. One consumer's
//! socket refuses connections to show the client's retry/backoff path in
//! the transport counters.
//!
//! Run with:
//! ```text
//! cargo run --example live_http
//! ```

use std::time::Duration;

use ws_gossip::{Role, WsGossipNode};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig, TransportStats};
use wsg_net::{NodeId, SimDuration};
use wsg_xml::Element;

fn main() {
    let coordinator = NodeId(0);
    let ticks: Vec<Element> = (0..5)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    let total = ticks.len();

    // n0 coordinator, n1 self-driving initiator, n2-n4 disseminators,
    // n5-n6 consumers, n7 a consumer whose socket refuses connections.
    // Saturating fanout keeps the live subscribers' completeness
    // deterministic, as in the threaded demo.
    let mut nodes = vec![
        WsGossipNode::coordinator(coordinator)
            .with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            ticks,
            SimDuration::from_millis(150),
        ),
    ];
    for i in 2..5 {
        nodes.push(WsGossipNode::disseminator(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    for i in 5..8 {
        nodes.push(WsGossipNode::consumer(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    let refused = NodeId(7);

    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        refuse: vec![refused],
        ..NetRuntimeConfig::default()
    };

    println!("== WS-Gossip live on {} loopback HTTP sockets ==", nodes.len());
    let net = NetRuntime::spawn(nodes, 99, config);
    for id in 0..net.node_count() {
        let marker = if NodeId(id) == refused { "  (refuses connections)" } else { "" };
        println!("  n{id} listening on {}{marker}", net.addr_of(NodeId(id)));
    }
    println!("\npublishing {total} ticks at 150ms intervals over HTTP\n");

    let finished = net.shutdown_after(Duration::from_millis(3500));

    let mut all_complete = true;
    for (i, node) in finished.iter().enumerate() {
        if !matches!(node.protocol.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        let got = node.protocol.distinct_ops().len();
        let note = if NodeId(i) == refused { "  <- refused, never reachable" } else { "" };
        println!("{} ({}): {got}/{total} ticks{note}", node.protocol.endpoint(), node.protocol.role());
        if NodeId(i) != refused && got != total {
            all_complete = false;
        }
    }

    let totals = finished.iter().fold(TransportStats::default(), |mut acc, n| {
        acc.posts_ok += n.transport.posts_ok;
        acc.posts_failed += n.transport.posts_failed;
        acc.attempts += n.transport.attempts;
        acc.unroutable += n.transport.unroutable;
        acc
    });
    println!(
        "\ntransport: {} envelopes delivered, {} abandoned after retries, {} connect attempts",
        totals.posts_ok, totals.posts_failed, totals.attempts
    );

    assert!(all_complete, "every reachable subscriber should get the full feed");
    assert!(totals.posts_failed > 0, "the refused node should show up in the counters");
    println!("\nall reachable subscribers received the complete feed over real sockets.");
}
