//! The full WS-Gossip middleware on **real OS threads**: every node runs
//! in its own thread, exchanging serialized SOAP envelopes over channels
//! with wall-clock timers — no simulator involved. The deployment is
//! self-driving: subscribers auto-subscribe at startup and the initiator
//! activates its context and publishes on a schedule.
//!
//! Run with:
//! ```text
//! cargo run --example live_threads
//! ```

use std::time::Duration;

use ws_gossip::{Role, WsGossipNode};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_net::threads::ThreadNet;
use wsg_net::{NodeId, SimDuration};
use wsg_xml::Element;

fn main() {
    let coordinator = NodeId(0);
    let ticks: Vec<Element> = (0..5)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    let total = ticks.len();

    // n0 coordinator, n1 self-driving initiator, n2-n4 disseminators,
    // n5-n6 consumers.
    // Saturating fanout: with 5 subscribers every forward floods, so the
    // demo's completeness assertion is deterministic (the probabilistic
    // regime is what the E2 experiment is for).
    let mut nodes = vec![
        WsGossipNode::coordinator(coordinator)
            .with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            ticks,
            SimDuration::from_millis(120),
        ),
    ];
    for i in 2..5 {
        nodes.push(WsGossipNode::disseminator(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    for i in 5..7 {
        nodes.push(WsGossipNode::consumer(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }

    println!("== WS-Gossip live on {} OS threads ==", nodes.len());
    println!("publishing {total} ticks at 120ms intervals, wall-clock\n");

    let net = ThreadNet::spawn(nodes, 99);
    let finished = net.shutdown_after(Duration::from_millis(1500));

    let mut all_complete = true;
    for node in &finished {
        if !matches!(node.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        let got = node.distinct_ops().len();
        println!("{} ({}): {got}/{total} ticks", node.endpoint(), node.role());
        if got != total {
            all_complete = false;
        }
    }
    println!("\nsample of one consumer's event log:");
    if let Some(consumer) = finished.iter().find(|n| n.role() == Role::Consumer) {
        for line in consumer.events().iter().take(8) {
            println!("  {line}");
        }
    }
    assert!(all_complete, "every live subscriber should get the full feed");
    println!("\nall subscribers received the complete feed over real threads.");
}
