//! WS-Membership in action: failure management for a service fleet.
//!
//! Runs the gossip membership service over 32 nodes, crashes a few,
//! recovers one, and prints what the surviving views believe at each
//! stage — the "failure management in a Web-Services world" substrate the
//! paper's distributed Coordinator relies on.
//!
//! Run with:
//! ```text
//! cargo run --example membership_monitor
//! ```

use wsg_membership::{MembershipConfig, MembershipGossip};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, SimTime};

fn report(net: &SimNet<MembershipGossip>, label: &str) {
    let n = net.len();
    let mut complete = 0;
    let mut alive_total = 0;
    for id in net.node_ids() {
        if net.is_crashed(id) {
            continue;
        }
        let alive = net.node(id).view().alive_count();
        alive_total += alive;
        if alive == n - crashed_count(net) {
            complete += 1;
        }
    }
    let survivors = n - crashed_count(net);
    println!(
        "{label}: {complete}/{survivors} survivors have an exact view \
         (mean alive-count {:.1})",
        alive_total as f64 / survivors as f64
    );
}

fn crashed_count(net: &SimNet<MembershipGossip>) -> usize {
    net.node_ids().iter().filter(|id| net.is_crashed(**id)).count()
}

fn main() {
    let n = 32;
    let mut net = SimNet::new(SimConfig::default().seed(11));
    net.add_nodes(n, |id| MembershipGossip::new(MembershipConfig::default(), id, n));
    net.start();

    println!("== WS-Membership failure monitor, {n} nodes ==\n");

    net.run_until(SimTime::from_secs(5));
    report(&net, "t=5s  (bootstrap)");

    // Crash three nodes.
    for id in [NodeId(3), NodeId(17), NodeId(29)] {
        net.crash(id);
    }
    println!("\n!! crashed n3, n17, n29");
    net.run_until(SimTime::from_secs(8));
    report(&net, "t=8s  (before detection)");
    net.run_until(SimTime::from_secs(20));
    report(&net, "t=20s (after fail timeout)");

    let believer = net.node(NodeId(0));
    println!(
        "n0's verdicts: n3={:?} n17={:?} n29={:?}",
        believer.view().status(NodeId(3)),
        believer.view().status(NodeId(17)),
        believer.view().status(NodeId(29)),
    );

    // One node comes back.
    net.recover(NodeId(17));
    println!("\n!! recovered n17");
    net.run_until(SimTime::from_secs(40));
    let back = net
        .node_ids()
        .iter()
        .filter(|id| !net.is_crashed(**id) && net.node(**id).alive_peers().contains(&NodeId(17)))
        .count();
    println!("t=40s: {back}/{} survivors re-admitted n17", n - 2);

    assert!(back >= n - 4, "recovery must propagate");
}
