//! `GET /metrics` on a **live** [`wsg_http::server::SoapHttpServer`],
//! exercised over real loopback sockets.
//!
//! The acceptance claims:
//!
//! * the endpoint answers `200` with a Prometheus-style text exposition
//!   whose families span all three layers — gossip (`wsg_gossip_*`),
//!   coordinator (`wsg_coord_*`), and HTTP transport (`wsg_http_*`);
//! * the exposition is deterministically ordered (sorted by metric name,
//!   label tuples sorted within a family), so two scrapes of the same
//!   state are byte-identical;
//! * counters are monotone across scrapes of a live server;
//! * unsupported methods get a `405` whose `Allow` header is derived
//!   from the real route table.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ws_gossip::WsGossipNode;
use wsg_coord::{
    ActivationService, GossipPolicy, GossipProtocol, RegistrationService, SubscriptionList,
};
use wsg_gossip::{EngineStats, GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig};
use wsg_http::server::{HttpServerConfig, Service, SoapHttpServer, SoapReply, SoapRequest};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, SimDuration, SimTime};
use wsg_obs::{monotone_keys, parse_exposition, Registry};

fn accept_service() -> Service {
    #[allow(clippy::result_large_err)] // the Err size is fixed by the Service signature
    Arc::new(|_req: SoapRequest| Ok(SoapReply::Accepted))
}

/// One raw HTTP exchange; returns the full response text.
fn raw_exchange(addr: SocketAddr, wire: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(wire).expect("send request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// GET /metrics over a real socket; returns (head, body).
fn scrape(addr: SocketAddr) -> (String, String) {
    let reply = raw_exchange(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    let (head, body) = reply.split_once("\r\n\r\n").expect("head/body split");
    (head.to_string(), body.to_string())
}

/// Build a registry already carrying gossip and coordinator families:
/// a small eager-push epidemic merged across nodes, and a coordinator
/// with one context, registrations, and live subscriptions.
fn populated_registry() -> Arc<Registry> {
    let registry = Arc::new(Registry::new());

    // Gossip: run a real 6-node epidemic in the simulator and export the
    // fleet-wide EngineStats under the style label.
    let style = GossipStyle::EagerPush;
    let mut net = SimNet::new(SimConfig::default().seed(99));
    let n = 6;
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::<u64>::new(GossipConfig::new(style, GossipParams::new(3, 5)), peers)
    });
    net.start();
    net.invoke(NodeId(0), |engine, ctx| {
        engine.publish(7, ctx);
    });
    net.run_to_quiescence();
    let mut merged = EngineStats::default();
    for id in net.node_ids() {
        merged.merge(net.node(id).stats());
    }
    merged.export(&registry, style.label());

    // Coordinator: one context, two participants, two topics.
    let mut activation = ActivationService::new("http://c/activation", "http://c/registration");
    let ctx = activation.create_context(GossipProtocol::Push, GossipPolicy::default(), SimTime::ZERO);
    let mut registration = RegistrationService::new();
    registration.register(ctx.identifier(), "http://n1/gossip");
    registration.register(ctx.identifier(), "http://n2/gossip");
    let mut subscriptions = SubscriptionList::new();
    subscriptions.subscribe("quotes", "http://n1/gossip", u64::MAX);
    subscriptions.subscribe("alerts", "http://n2/gossip", u64::MAX);
    wsg_coord::obs::export(&registry, &activation, &registration, &subscriptions, 0);

    registry
}

#[test]
fn live_metrics_endpoint_spans_gossip_coordinator_and_http_families() {
    let registry = populated_registry();
    let mut server = SoapHttpServer::bind_observed(
        "127.0.0.1:0",
        accept_service(),
        HttpServerConfig::default(),
        Arc::clone(&registry),
    )
    .expect("bind metrics server");
    let addr = server.local_addr();

    let (head, body) = scrape(addr);
    assert!(head.starts_with("HTTP/1.1 200 "), "got: {head}");
    assert!(head.contains("Content-Type: text/plain; version=0.0.4"), "got: {head}");

    // All three layers are present in one exposition.
    assert!(body.contains("wsg_gossip_published_total{style=\"eager_push\"} 1"), "{body}");
    assert!(body.contains("wsg_gossip_payloads_sent_total{style=\"eager_push\"}"), "{body}");
    assert!(body.contains("wsg_gossip_delivery_rounds_count{style=\"eager_push\"} 6"), "{body}");
    assert!(body.contains("wsg_coord_contexts_created_total 1"), "{body}");
    assert!(body.contains("wsg_coord_registrations_total 2"), "{body}");
    assert!(body.contains("wsg_coord_subscribers{topic=\"alerts\"} 1"), "{body}");
    assert!(body.contains("wsg_http_server_requests_total"), "{body}");

    // Deterministic ordering: families sorted by name, and the parsed
    // sample keys reproduce exactly on a second scrape of unchanged
    // gossip/coord state.
    let families: Vec<&str> = body
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split(' ').next())
        .collect();
    let mut sorted = families.clone();
    sorted.sort_unstable();
    assert_eq!(families, sorted, "families must render in sorted order");

    let first = parse_exposition(&body).expect("parseable exposition");
    assert!(!first.is_empty());

    // Unchanged state renders byte-identically — determinism at the
    // source, independent of the scrapes mutating the server counters.
    assert_eq!(registry.render(), registry.render());

    // Monotonicity across scrapes: the scrape itself bumps the server
    // counters; families may gain label children (the first scrape mints
    // the 2xx response class), but no sample disappears and no counter
    // ever decreases.
    let (_, body2) = scrape(addr);
    let second = parse_exposition(&body2).expect("parseable second scrape");
    let lookup = |samples: &[(String, f64)], key: &str| {
        samples.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    };
    let counters: Vec<&str> = monotone_keys(&first);
    for (key, before) in &first {
        let after = lookup(&second, key).expect("samples never disappear");
        if counters.contains(&key.as_str()) {
            assert!(after >= *before, "{key} went backwards: {before} -> {after}");
        }
    }
    assert_eq!(
        lookup(&second, "wsg_http_server_requests_total"),
        lookup(&first, "wsg_http_server_requests_total").map(|v| v + 1.0),
        "each scrape is itself one served request"
    );

    // Route-table-derived 405 for unsupported methods.
    let reply = raw_exchange(
        addr,
        b"PUT /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 405 "), "got: {reply}");
    assert!(reply.contains("Allow: GET, POST\r\n"), "got: {reply}");

    server.shutdown();
}

/// The membership plane publishes its gauges into the same per-node
/// registry the listener serves: scraping a live cluster node's socket
/// yields the `wsg_membership_*` family, and the gauges track the view
/// through a crash.
#[test]
fn live_cluster_node_exposes_membership_gauges() {
    use wsg_cluster::{ClusterConfig, ClusterRuntime};
    use wsg_net::{Context, PeerLiveness, Protocol};

    #[derive(Debug, Default)]
    struct Idle;
    impl Protocol for Idle {
        type Message = String;
        fn on_message(&mut self, _from: NodeId, _msg: String, _ctx: &mut dyn Context<String>) {}
    }

    let mut fleet: ClusterRuntime<Idle> = ClusterRuntime::new(
        7,
        NetRuntimeConfig::default(),
        ClusterConfig::for_interval(SimDuration::from_millis(20)),
    );
    let seed = fleet.add_seed(|_| Idle);
    for _ in 0..2 {
        fleet.add_node(seed, |_| Idle).expect("join via seed");
    }

    // Heartbeat gossip converges the 3-node view, and the gauges follow.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        let (alive, _, _) = fleet.plane(seed).status_counts();
        if alive == 3 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "view never converged");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Joins alone converge the view, so the first scrape can land before
    // any heartbeat envelope has arrived — poll until the counter moves.
    let (head, mut body) = scrape(fleet.net().addr_of(seed));
    assert!(head.starts_with("HTTP/1.1 200 "), "got: {head}");
    let get = |body: &str, key: &str| {
        parse_exposition(body)
            .expect("cluster exposition parses")
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("{key} missing from: {body}"))
    };
    while get(&body, "wsg_membership_heartbeats_total") < 1.0 {
        assert!(std::time::Instant::now() < deadline, "no heartbeat ever scraped: {body}");
        std::thread::sleep(Duration::from_millis(20));
        body = scrape(fleet.net().addr_of(seed)).1;
    }
    assert_eq!(get(&body, "wsg_membership_alive"), 3.0, "{body}");
    assert_eq!(get(&body, "wsg_membership_suspect"), 0.0, "{body}");
    assert_eq!(get(&body, "wsg_membership_dead"), 0.0, "{body}");

    // Crash a member: once the survivor's detector condemns it, the next
    // scrape of the same socket shows the dead gauge move.
    let victim = NodeId(2);
    fleet.crash(victim).expect("crash a live member");
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while fleet.plane(seed).is_live(victim) {
        assert!(std::time::Instant::now() < deadline, "crash never detected");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, body2) = scrape(fleet.net().addr_of(seed));
    let after = parse_exposition(&body2).expect("second cluster scrape parses");
    let dead = after
        .iter()
        .find(|(k, _)| k == "wsg_membership_dead")
        .map(|(_, v)| *v)
        .expect("dead gauge present");
    assert!(dead >= 1.0, "crashed member should be counted dead: {body2}");

    fleet.shutdown();
}

/// The node runtime wires one registry per node into its server and
/// sender threads: scraping a live gossip node's socket works, and the
/// transport counters it exposes move with real traffic.
#[test]
fn live_runtime_node_serves_its_own_metrics() {
    let coordinator = NodeId(0);
    let nodes = vec![
        WsGossipNode::coordinator(coordinator),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            vec![wsg_xml::Element::text_node("tick", "ACME 100")],
            SimDuration::from_millis(50),
        ),
        WsGossipNode::disseminator(NodeId(2), coordinator).with_auto_subscribe("quotes"),
        WsGossipNode::disseminator(NodeId(3), coordinator).with_auto_subscribe("quotes"),
    ];
    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        ..NetRuntimeConfig::default()
    };
    let net = NetRuntime::spawn(nodes, 2025, config);

    // Let the subscription + publication traffic flow.
    std::thread::sleep(Duration::from_millis(900));

    // Scrape the coordinator's node socket while the fleet is live.
    let (head, body) = scrape(net.addr_of(coordinator));
    assert!(head.starts_with("HTTP/1.1 200 "), "got: {head}");
    let samples = parse_exposition(&body).expect("node exposition parses");
    let get = |key: &str| {
        samples
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{key} missing from: {body}"))
    };
    assert!(get("wsg_http_server_requests_total") >= 1.0, "subscribe traffic arrived");
    assert!(get("wsg_transport_posts_ok_total") >= 1.0, "grant responses went out");

    // The wire-batching histogram is scraped live from the same socket:
    // one observation per successful POST, its sum counting envelopes,
    // so sum >= count and the POSTs-saved counter is their difference.
    let batch_count = get("wsg_transport_batch_msgs_count");
    let batch_sum = get("wsg_transport_batch_msgs_sum");
    assert!(batch_count >= 1.0, "every successful POST observes a batch size: {body}");
    assert!(batch_sum >= batch_count, "batches carry at least one envelope each: {body}");
    assert_eq!(
        get("wsg_transport_posts_saved_total"),
        batch_sum - batch_count,
        "saved POSTs are exactly envelopes minus POSTs: {body}"
    );

    // After shutdown, the finished protocol enriches the same registry
    // with node/coordinator families — the full per-node picture.
    let registry = net.registry_of(coordinator);
    let finished = net.shutdown_after(Duration::from_millis(200));
    finished[0].protocol.export_metrics(&registry, SimTime::ZERO);
    let text = registry.render();
    assert!(text.contains("wsg_node_messages_received_total"), "{text}");
    assert!(text.contains("wsg_coord_subscribes_total"), "{text}");
    assert!(
        finished[2].protocol.distinct_ops().len() == 1,
        "dissemination happened during the live window"
    );
}
