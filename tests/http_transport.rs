//! The full WS-Gossip middleware over **real loopback sockets**: every
//! node owns a `127.0.0.1` HTTP listener and gossip rounds are serialized
//! SOAP envelopes POSTed between them by `wsg_http::NetRuntime`.
//!
//! This is the strongest claim in the dissemination chain: the same
//! protocol state machines that run in the simulator and on channel-backed
//! threads also run on actual sockets, including a refused peer that
//! drives the client's retry/backoff path mid-dissemination.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ws_gossip::{Role, WsGossipNode};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig};
use wsg_net::{NodeId, SimDuration};
use wsg_xml::Element;

/// Snappy transport settings for loopback: refused connections fail fast
/// and retry quickly, so a dead peer cannot stall a sender thread.
fn loopback_config() -> NetRuntimeConfig {
    NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        ..NetRuntimeConfig::default()
    }
}

/// The acceptance scenario: ten nodes (eight of them live subscribers or
/// infrastructure), one refused. A publication pushed by the initiator
/// must reach every live subscriber via real HTTP traffic, and the
/// refused consumer must leave retry evidence in the transport counters.
#[test]
fn full_dissemination_over_loopback_sockets_with_a_refused_peer() {
    let coordinator = NodeId(0);
    let ticks: Vec<Element> = (0..4)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    let total = ticks.len();

    // n0 coordinator, n1 initiator, n2-n6 disseminators, n7-n8 consumers,
    // n9 a consumer whose socket refuses connections. Saturating fanout
    // makes completeness on the live subscribers deterministic.
    let mut nodes = vec![
        WsGossipNode::coordinator(coordinator)
            .with_policy(GossipPolicy::new(GossipParams::new(10, 6))),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            ticks,
            SimDuration::from_millis(150),
        ),
    ];
    for i in 2..7 {
        nodes.push(WsGossipNode::disseminator(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    for i in 7..10 {
        nodes.push(WsGossipNode::consumer(NodeId(i), coordinator).with_auto_subscribe("quotes"));
    }
    assert!(nodes.len() >= 8, "the scenario must deploy at least 8 gossip nodes");

    let mut config = loopback_config();
    config.refuse = vec![NodeId(9)];
    let net = NetRuntime::spawn(nodes, 2024, config);
    let finished = net.shutdown_after(Duration::from_millis(3500));

    // Every live subscriber saw the complete feed.
    for (i, node) in finished.iter().enumerate() {
        if i == 9 || !matches!(node.protocol.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        assert_eq!(
            node.protocol.distinct_ops().len(),
            total,
            "node {i} ({}) missed ticks; transport: {:?}",
            node.protocol.endpoint(),
            node.transport
        );
    }

    // The refused consumer received nothing...
    assert!(finished[9].protocol.distinct_ops().is_empty());

    // ...and somebody paid for trying: failed posts with retries behind
    // them (attempts strictly exceed the number of posts).
    let failed: u64 = finished.iter().map(|n| n.transport.posts_failed).sum();
    let attempts: u64 = finished.iter().map(|n| n.transport.attempts).sum();
    let posts: u64 = finished.iter().map(|n| n.transport.posts_ok + n.transport.posts_failed).sum();
    assert!(failed > 0, "the refused node should have failed somebody's posts");
    assert!(
        attempts > posts,
        "retries should make attempts ({attempts}) exceed posts ({posts})"
    );

    // And the dissemination itself was real traffic, not channel luck.
    let ok: u64 = finished.iter().map(|n| n.transport.posts_ok).sum();
    assert!(ok as usize >= total * 7, "expected at least one post per tick per subscriber");
}

/// A node's socket survives hostile bytes: raw garbage gets an HTTP 400
/// and the node keeps serving well-formed envelopes afterwards.
#[test]
fn garbage_on_the_wire_does_not_poison_a_node() {
    let nodes = vec![
        WsGossipNode::coordinator(NodeId(0)),
        WsGossipNode::consumer(NodeId(1), NodeId(0)),
    ];
    let net = NetRuntime::spawn(nodes, 5, loopback_config());

    let mut stream = TcpStream::connect(net.addr_of(NodeId(0))).unwrap();
    stream.write_all(b"EHLO not-http\r\n\r\n").unwrap();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400 "), "got: {reply}");

    // The same node still accepts a real envelope afterwards.
    let envelope = wsg_soap::Envelope::request(
        wsg_soap::MessageHeaders::request("http://node0/gossip", "urn:wsg:Probe"),
        Element::text_node("probe", "still alive"),
    );
    let outcome = net
        .post_external(NodeId(0), Some("urn:wsg:Probe"), &envelope.to_xml())
        .unwrap();
    assert_eq!(outcome.response.status, 202);
    net.shutdown();
}

/// Deterministic replay at the transport level: the same seed produces
/// the same jittered backoff schedule, so a refused-peer run is
/// reproducible wall-clock behaviour, not luck.
#[test]
fn refused_posts_follow_a_seeded_backoff_schedule() {
    use wsg_http::client::SoapHttpClient;

    let refused = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let config = HttpClientConfig {
        connect_timeout: Duration::from_millis(200),
        retries: 3,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(40),
        ..HttpClientConfig::default()
    };
    for _ in 0..2 {
        let client = SoapHttpClient::new(77, config.clone());
        let err = client.post(refused, "/gossip", None, &[], b"<x/>").unwrap_err();
        assert_eq!(err.attempts, 4, "1 initial + 3 retries");
    }
}
