//! Membership ↔ gossip integration: the distributed-coordinator story.
//! The paper (§3) notes the subscriber list "can be maintained in a
//! distributed fashion as proposed by WS-Membership". Here the membership
//! service drives the gossip engine's peer view under churn.

use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_membership::{MembershipConfig, MembershipGossip, MembershipMessage};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{Context, NodeId, Protocol, SimDuration, SimTime, TimerTag};

/// A composite node: membership service + gossip engine, with the
/// membership view wired into the engine's peer list on every tick.
struct Composite {
    membership: MembershipGossip,
    engine: GossipEngine<u32>,
}

#[derive(Debug, Clone)]
enum CompositeMsg {
    Membership(MembershipMessage),
    Gossip(wsg_gossip::GossipMessage<u32>),
}

/// Adapters so each sub-protocol can speak through the composite message.
struct MembershipCtx<'a, 'b> {
    inner: &'a mut dyn Context<CompositeMsg>,
    _pd: std::marker::PhantomData<&'b ()>,
}

impl Context<MembershipMessage> for MembershipCtx<'_, '_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn self_id(&self) -> NodeId {
        self.inner.self_id()
    }
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn send(&mut self, to: NodeId, msg: MembershipMessage) {
        self.inner.send(to, CompositeMsg::Membership(msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.inner.set_timer(delay, tag);
    }
    fn rng(&mut self) -> &mut dyn wsg_net::Rng64 {
        self.inner.rng()
    }
}

struct GossipCtx<'a> {
    inner: &'a mut dyn Context<CompositeMsg>,
}

impl Context<wsg_gossip::GossipMessage<u32>> for GossipCtx<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn self_id(&self) -> NodeId {
        self.inner.self_id()
    }
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn send(&mut self, to: NodeId, msg: wsg_gossip::GossipMessage<u32>) {
        self.inner.send(to, CompositeMsg::Gossip(msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.inner.set_timer(delay, tag);
    }
    fn rng(&mut self) -> &mut dyn wsg_net::Rng64 {
        self.inner.rng()
    }
}

impl Protocol for Composite {
    type Message = CompositeMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        self.membership
            .on_start(&mut MembershipCtx { inner: ctx, _pd: std::marker::PhantomData });
        self.engine.on_start(&mut GossipCtx { inner: ctx });
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        match msg {
            CompositeMsg::Membership(m) => {
                self.membership.on_message(
                    from,
                    m,
                    &mut MembershipCtx { inner: ctx, _pd: std::marker::PhantomData },
                );
            }
            CompositeMsg::Gossip(g) => {
                self.engine.on_message(from, g, &mut GossipCtx { inner: ctx });
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        // Both sub-protocols get a chance; tags are disjoint.
        self.membership
            .on_timer(tag, &mut MembershipCtx { inner: ctx, _pd: std::marker::PhantomData });
        // Refresh the engine's peer view from the current membership.
        self.engine.set_peers(self.membership.alive_peers());
        self.engine.on_timer(tag, &mut GossipCtx { inner: ctx });
    }
}

fn build(n: usize, seed: u64) -> SimNet<Composite> {
    let mut net = SimNet::new(SimConfig::default().seed(seed));
    net.add_nodes(n, |id| Composite {
        membership: MembershipGossip::new(MembershipConfig::default(), id, n),
        engine: GossipEngine::new(
            GossipConfig::new(GossipStyle::PushPull, GossipParams::atomic_for(n))
                .interval(SimDuration::from_millis(100)),
            Vec::new(), // peers come from membership
        ),
    });
    net.start();
    net
}

#[test]
fn membership_driven_peers_disseminate() {
    let n = 24;
    let mut net = build(n, 1);
    // Let membership converge first.
    net.run_until(SimTime::from_secs(3));
    net.invoke(NodeId(0), |node, ctx| {
        node.engine.publish(42, &mut GossipCtx { inner: ctx });
    });
    net.run_until(SimTime::from_secs(8));
    for i in 0..n {
        assert!(
            !net.node(NodeId(i)).engine.delivered().is_empty(),
            "node {i} missed the message"
        );
    }
}

#[test]
fn dissemination_avoids_nodes_membership_declared_dead() {
    let n = 16;
    let mut net = build(n, 2);
    net.run_until(SimTime::from_secs(3));
    net.crash(NodeId(7));
    // Give the failure detector time to declare it dead everywhere.
    net.run_until(SimTime::from_secs(15));
    let before_dropped = net.stats().dropped_crashed;
    net.invoke(NodeId(0), |node, ctx| {
        node.engine.publish(1, &mut GossipCtx { inner: ctx });
    });
    net.run_until(SimTime::from_secs(20));
    // Survivors all got it...
    for i in 0..n {
        if i == 7 {
            continue;
        }
        assert!(!net.node(NodeId(i)).engine.delivered().is_empty(), "node {i}");
    }
    // ...and (almost) nothing was wasted on the dead node: only membership
    // probes may still hit it, not payload floods.
    let wasted = net.stats().dropped_crashed - before_dropped;
    assert!(
        wasted <= (n as u64) * 2,
        "too many messages ({wasted}) sent to a known-dead node"
    );
}

#[test]
fn rejoining_node_catches_up_via_pull() {
    let n = 12;
    let mut net = build(n, 3);
    net.run_until(SimTime::from_secs(3));
    net.crash(NodeId(5));
    net.run_until(SimTime::from_secs(10));
    // Published while node 5 is down.
    net.invoke(NodeId(0), |node, ctx| {
        node.engine.publish(99, &mut GossipCtx { inner: ctx });
    });
    net.run_until(SimTime::from_secs(12));
    assert!(net.node(NodeId(5)).engine.delivered().is_empty());
    net.recover(NodeId(5));
    // Push-pull periodic reconciliation must deliver the missed message.
    net.run_until(SimTime::from_secs(40));
    assert!(
        !net.node(NodeId(5)).engine.delivered().is_empty(),
        "rejoined node must catch up via pull"
    );
}

/// Scalable deployment: gossip over *partial views* from the peer
/// sampler, instead of full membership — O(view) state per node.
mod partial_views {
    use super::{GossipCtx};
    use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
    use wsg_membership::{PeerSampler, SamplerConfig};
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::{Context, NodeId, Protocol, SimDuration, SimTime, TimerTag};

    pub struct SampledNode {
        pub sampler: PeerSampler,
        pub engine: GossipEngine<u32>,
    }

    #[derive(Debug, Clone)]
    pub enum Msg {
        Sampler(wsg_membership::sampler::SamplerMessage),
        Gossip(wsg_gossip::GossipMessage<u32>),
    }

    struct SamplerCtx<'a> {
        inner: &'a mut dyn Context<Msg>,
    }

    impl Context<wsg_membership::sampler::SamplerMessage> for SamplerCtx<'_> {
        fn now(&self) -> SimTime {
            self.inner.now()
        }
        fn self_id(&self) -> NodeId {
            self.inner.self_id()
        }
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn send(&mut self, to: NodeId, msg: wsg_membership::sampler::SamplerMessage) {
            self.inner.send(to, Msg::Sampler(msg));
        }
        fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
            self.inner.set_timer(delay, tag);
        }
        fn rng(&mut self) -> &mut dyn wsg_net::Rng64 {
            self.inner.rng()
        }
    }

    struct EngineCtx<'a> {
        inner: &'a mut dyn Context<Msg>,
    }

    impl Context<wsg_gossip::GossipMessage<u32>> for EngineCtx<'_> {
        fn now(&self) -> SimTime {
            self.inner.now()
        }
        fn self_id(&self) -> NodeId {
            self.inner.self_id()
        }
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn send(&mut self, to: NodeId, msg: wsg_gossip::GossipMessage<u32>) {
            self.inner.send(to, Msg::Gossip(msg));
        }
        fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
            self.inner.set_timer(delay, tag);
        }
        fn rng(&mut self) -> &mut dyn wsg_net::Rng64 {
            self.inner.rng()
        }
    }

    impl Protocol for SampledNode {
        type Message = Msg;

        fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
            self.sampler.on_start(&mut SamplerCtx { inner: ctx });
            self.engine.on_start(&mut EngineCtx { inner: ctx });
        }

        fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
            match msg {
                Msg::Sampler(m) => self.sampler.on_message(from, m, &mut SamplerCtx { inner: ctx }),
                Msg::Gossip(m) => self.engine.on_message(from, m, &mut EngineCtx { inner: ctx }),
            }
        }

        fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
            self.sampler.on_timer(tag, &mut SamplerCtx { inner: ctx });
            // Refresh the engine's peers from the current partial view.
            self.engine.set_peers(self.sampler.view());
            self.engine.on_timer(tag, &mut EngineCtx { inner: ctx });
        }
    }

    #[test]
    fn dissemination_over_partial_views_covers_large_networks() {
        let n = 256;
        let view = SamplerConfig::default(); // 8-entry partial views
        let mut net = SimNet::new(SimConfig::default().seed(5));
        net.add_nodes(n, |id| {
            let seeds = vec![NodeId((id.0 + 1) % n), NodeId((id.0 + 7) % n)];
            SampledNode {
                sampler: PeerSampler::new(view.clone(), id, seeds),
                engine: GossipEngine::new(
                    GossipConfig::new(GossipStyle::PushPull, GossipParams::new(4, 12))
                        .interval(SimDuration::from_millis(100)),
                    Vec::new(), // peers come from the sampler
                ),
            }
        });
        net.start();
        // Let shuffling randomise the overlay first.
        net.run_until(SimTime::from_secs(3));
        net.invoke(NodeId(0), |node, ctx| {
            node.engine.publish(99, &mut EngineCtx { inner: ctx });
        });
        net.run_until(SimTime::from_secs(10));
        let reached = (0..n)
            .filter(|i| !net.node(NodeId(*i)).engine.delivered().is_empty())
            .count();
        assert_eq!(reached, n, "partial-view gossip must still cover: {reached}/{n}");
        // And nobody ever held more than the partial view.
        for id in net.node_ids() {
            assert!(net.node(id).sampler.view().len() <= 8);
        }
    }

    // Silence unused-import warning from the parent module glue.
    #[allow(dead_code)]
    fn _touch(_: Option<GossipCtx>) {}
}
