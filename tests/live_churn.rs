//! The live-churn acceptance scenario: a 20-node WS-Gossip fleet on
//! loopback sockets with the `wsg_cluster` membership plane underneath,
//! where nodes crash-stop and join **while a publication stream is in
//! flight**. Survivors must agree on the live member set (heartbeat
//! gossip + φ accrual detection, no announcements for crashes) and
//! dissemination must keep reaching every live member — including the
//! late joiners, for ticks published after they subscribed.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ws_gossip::endpoint::endpoint_of;
use ws_gossip::WsGossipNode;
use wsg_cluster::{ClusterConfig, ClusterRuntime, MembershipPlane};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::NetRuntimeConfig;
use wsg_http::server::HttpServerConfig;
use wsg_net::{NodeId, PeerLiveness, SimDuration};
use wsg_xml::Element;

// 50ms heartbeats put the fixed-timeout backstop at 1.5s (30 intervals):
// roomy enough that gossip traffic bursts never transiently kill a live
// member, tight enough that the five crashes are detected mid-stream.
const MEMBERSHIP_INTERVAL_MS: u64 = 50;
const PUBLISH_INTERVAL_MS: u64 = 250;
const TOTAL_TICKS: usize = 36;
const TOPIC: &str = "quotes";

/// Fast-failing transport: a crashed peer costs one refused connect, not
/// a retry ladder, so detection and dissemination stay snappy. The server
/// side is tuned for this fleet's connection count: every node holds
/// ~35 keep-alive connections (gossip senders plus heartbeat pumps), and
/// a saturating notify is ~16 sequential posts that must clear well
/// inside the 250ms publish interval — so more workers and a short read
/// slice keep per-post multiplexing latency in the single milliseconds.
fn loopback_config() -> NetRuntimeConfig {
    NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..HttpClientConfig::default()
        },
        server: HttpServerConfig {
            workers: 6,
            read_slice: Duration::from_millis(2),
            ..HttpServerConfig::default()
        },
        ..NetRuntimeConfig::default()
    }
}

/// Poll `cond` every 25ms for up to ~20s; panic with `what` on timeout.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..800 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

fn live_set(plane: &Arc<MembershipPlane>) -> BTreeSet<NodeId> {
    plane.live_members().into_iter().collect()
}

#[test]
fn churn_under_a_live_publication_stream() {
    // A saturating gossip policy (fanout >= fleet size) makes subscriber
    // completeness deterministic; the churn is the variable under test.
    let policy = || GossipPolicy::new(GossipParams::new(32, 8));
    let ticks: Vec<Element> = (0..TOTAL_TICKS)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();

    let epoch = Instant::now();
    let mut fleet: ClusterRuntime<WsGossipNode> = ClusterRuntime::new(
        4207,
        loopback_config(),
        ClusterConfig::for_interval(SimDuration::from_millis(MEMBERSHIP_INTERVAL_MS)),
    );

    // n0 coordinator (the seed everyone joins through), n1 initiator
    // publishing the tick stream, n2-n11 disseminators, n12-n19
    // consumers: 20 nodes. Every node adopts its membership plane as the
    // gossip liveness oracle.
    let coordinator = fleet.add_seed(|plane| {
        WsGossipNode::coordinator(NodeId(0)).with_policy(policy()).with_liveness(plane)
    });
    fleet
        .add_node(coordinator, |plane| {
            WsGossipNode::initiator(NodeId(1), coordinator)
                .with_publish_schedule(
                    TOPIC,
                    ticks,
                    SimDuration::from_millis(PUBLISH_INTERVAL_MS),
                )
                .with_liveness(plane)
        })
        .expect("initiator joins");
    for i in 2..12 {
        fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::disseminator(NodeId(i), coordinator)
                    .with_auto_subscribe(TOPIC)
                    .with_liveness(plane)
            })
            .expect("disseminator joins");
    }
    for i in 12..20 {
        fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::consumer(NodeId(i), coordinator)
                    .with_auto_subscribe(TOPIC)
                    .with_liveness(plane)
            })
            .expect("consumer joins");
    }
    assert_eq!(fleet.net().node_count(), 20);

    // Membership converges to all 20 via heartbeat gossip (only the seed
    // was told about each joiner directly).
    let everyone: BTreeSet<NodeId> = (0..20).map(NodeId).collect();
    wait_for("initial 20-member convergence", || {
        everyone.iter().all(|id| live_set(&fleet.plane(*id)) == everyone)
    });

    // Crash-stop five consumers mid-stream: listeners down first, no
    // goodbye. Survivors must detect them via silence/refusals alone.
    let crashed: Vec<NodeId> = (15..20).map(NodeId).collect();
    for id in &crashed {
        fleet.crash(*id).expect("crash a live consumer");
    }
    let survivors: BTreeSet<NodeId> = (0..15).map(NodeId).collect();
    wait_for("survivors agree the crashed five are dead", || {
        survivors.iter().all(|id| {
            let plane = fleet.plane(*id);
            crashed.iter().all(|dead| !plane.is_live(*dead))
        })
    });

    // Three late consumers join through the seed while ticks still flow.
    let mut joined = Vec::new();
    for i in 20..23 {
        let id = fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::consumer(NodeId(i), coordinator)
                    .with_auto_subscribe(TOPIC)
                    .with_liveness(plane)
            })
            .expect("late consumer joins");
        joined.push(id);
    }

    // Every live member converges on the same post-churn view.
    let live: BTreeSet<NodeId> = survivors.iter().copied().chain(joined.clone()).collect();
    wait_for("post-churn agreement on the live member set", || {
        live.iter().all(|id| live_set(&fleet.plane(*id)) == live)
    });

    // The whole churn must finish with stream time to spare, or the
    // late-joiner assertions below would be vacuous.
    let stream = Duration::from_millis(PUBLISH_INTERVAL_MS * TOTAL_TICKS as u64);
    let churn_done = epoch.elapsed();
    assert!(
        churn_done < stream / 2,
        "churn took {churn_done:?}, leaving too little of the {stream:?} stream"
    );

    // Let the stream run out, plus a grace period for the last rounds.
    std::thread::sleep(stream - churn_done + Duration::from_millis(1500));
    let finished = fleet.shutdown();

    let by_id = |id: NodeId| {
        finished
            .iter()
            .find(|n| n.protocol.endpoint() == endpoint_of(id))
            .unwrap_or_else(|| panic!("no final state for {id}"))
    };

    // Original subscribers (disseminators and surviving consumers) end
    // with the complete stream despite five peers dying under them.
    for id in (2..15).map(NodeId) {
        let node = by_id(id);
        assert_eq!(
            node.protocol.distinct_ops().len(),
            TOTAL_TICKS,
            "node {id} missed ticks; transport: {:?}",
            node.transport
        );
    }

    // Late joiners — subscribed mid-stream — received the closing ticks
    // published after they arrived, proving dissemination reaches every
    // live member of the post-churn fleet.
    for id in &joined {
        let ops = by_id(*id).protocol.distinct_ops();
        assert!(!ops.is_empty(), "late joiner {id} never received a tick");
        let max_seq = ops.iter().map(|op| op.seq).max().unwrap();
        assert_eq!(
            max_seq,
            TOTAL_TICKS as u64 - 1,
            "late joiner {id} missed the closing tick"
        );
    }

    // And the crashed five are genuinely gone: their final states were
    // returned by crash() at crash time, not by shutdown().
    for id in &crashed {
        assert!(
            !finished.iter().any(|n| n.protocol.endpoint() == endpoint_of(*id)),
            "crashed node {id} reappeared at shutdown"
        );
    }
}
