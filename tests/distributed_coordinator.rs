//! Distributed coordinator (paper §3, final paragraph): the subscriber
//! list "maintained in a distributed fashion", with coordinator replicas
//! converging by gossip and surviving coordinator crashes.

use ws_gossip::scenario::{
    self, build_distributed_network, distributed_initiator, DistributedShape,
};
use ws_gossip::Role;
use wsg_net::sim::SimConfig;
use wsg_net::{NodeId, SimTime};
use wsg_xml::Element;

fn shape() -> DistributedShape {
    DistributedShape { coordinators: 3, disseminators: 6, consumers: 3 }
}

#[test]
fn subscriptions_replicate_to_all_coordinators() {
    let mut net = build_distributed_network(SimConfig::default().seed(1), shape());
    scenario::subscribe_all(&mut net, "t");
    // Let a few sync rounds pass.
    net.run_until(SimTime::from_secs(3));
    for c in 0..3 {
        let known = net.node(NodeId(c)).subscribers_of("t", net.now());
        assert_eq!(known.len(), 9, "coordinator {c} sees {} subscribers", known.len());
    }
}

#[test]
fn activation_at_one_coordinator_sees_everyones_subscribers() {
    let mut net = build_distributed_network(SimConfig::default().seed(2), shape());
    scenario::subscribe_all(&mut net, "t");
    net.run_until(SimTime::from_secs(3));
    // Activate at coordinator 0 (the initiator's home); its grant must
    // cover subscribers registered at coordinators 1 and 2 too.
    let initiator = distributed_initiator(shape());
    net.invoke(initiator, |node, ctx| {
        node.activate(wsg_coord::GossipProtocol::Push, "t", ctx)
    });
    net.run_until(SimTime::from_secs(4));
    net.invoke(initiator, |node, ctx| {
        node.notify("t", Element::text_node("op", "x"), ctx)
    });
    net.run_until(SimTime::from_secs(8));
    assert_eq!(scenario::coverage(&net, 1), 1.0, "all subscribers reached");
}

#[test]
fn coordinator_crash_is_survivable_after_replication() {
    let mut net = build_distributed_network(SimConfig::default().seed(3), shape());
    scenario::subscribe_all(&mut net, "t");
    net.run_until(SimTime::from_secs(3));
    // Coordinators 1 and 2 die; everything they knew lives on at 0.
    net.crash(NodeId(1));
    net.crash(NodeId(2));
    let initiator = distributed_initiator(shape());
    net.invoke(initiator, |node, ctx| {
        node.activate(wsg_coord::GossipProtocol::Push, "t", ctx)
    });
    net.run_until(SimTime::from_secs(4));
    net.invoke(initiator, |node, ctx| {
        node.notify("t", Element::text_node("op", "x"), ctx)
    });
    net.run_until(SimTime::from_secs(10));
    // Every *surviving* subscriber must still be reached, including ones
    // whose home coordinator is dead (their subscription was replicated).
    for id in net.node_ids() {
        let node = net.node(id);
        if net.is_crashed(id) || !matches!(node.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        assert!(
            !node.distinct_ops().is_empty(),
            "{id} ({}) missed the op after coordinator crash",
            node.role()
        );
    }
}

#[test]
fn registrations_replicate_between_coordinators() {
    let mut net = build_distributed_network(SimConfig::default().seed(4), shape());
    scenario::subscribe_all(&mut net, "t");
    net.run_until(SimTime::from_secs(3));
    let initiator = distributed_initiator(shape());
    net.invoke(initiator, |node, ctx| {
        node.activate(wsg_coord::GossipProtocol::Push, "t", ctx)
    });
    net.run_until(SimTime::from_secs(4));
    net.invoke(initiator, |node, ctx| {
        node.notify("t", Element::text_node("op", "x"), ctx)
    });
    net.run_until(SimTime::from_secs(10));
    // The context was created at coordinator 0; after sync every replica
    // knows its participants.
    let ctx_id = net
        .node(initiator)
        .context_for("t")
        .unwrap()
        .identifier()
        .to_string();
    for c in 0..3 {
        assert!(
            net.node(NodeId(c)).participant_count(&ctx_id) >= 2,
            "coordinator {c} has no replicated participants"
        );
    }
}

#[test]
fn single_coordinator_mode_unchanged() {
    // k=1 must behave exactly like the plain builder (no sync traffic).
    let mut net = build_distributed_network(
        SimConfig::default().seed(5),
        DistributedShape { coordinators: 1, disseminators: 4, consumers: 2 },
    );
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    net.invoke(NodeId(1), |node, ctx| {
        node.activate(wsg_coord::GossipProtocol::Push, "t", ctx)
    });
    net.run_to_quiescence();
    net.invoke(NodeId(1), |node, ctx| {
        node.notify("t", Element::text_node("op", "x"), ctx)
    });
    net.run_to_quiescence();
    assert_eq!(scenario::coverage(&net, 1), 1.0);
}
