//! Determinism regression tests: with the in-tree RNG layer, a simulated
//! gossip run is a pure function of (seed, fanout, rounds). Running the
//! same scenario twice must produce bit-identical trace-event streams and
//! delivery records — any divergence means nondeterminism crept into the
//! RNG, the event queue, or the engine, and replay debugging is broken.

use std::sync::{Arc, Mutex};

use wsg_gossip::{DeliveredMessage, GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, TraceEvent};

type RunRecord = (Vec<TraceEvent>, Vec<Vec<DeliveredMessage<u64>>>, String, wsg_net::SimTime);

/// Run one dissemination and capture everything observable: the full
/// trace stream, every node's delivery log, final stats, and the final
/// virtual clock. Event-driven styles run to quiescence; `horizon`
/// bounds tick-driven styles (pull, push-pull) whose periodic timers
/// put quiescence far into virtual time.
fn run_scenario(
    seed: u64,
    n: usize,
    style: GossipStyle,
    params: GossipParams,
    drop: f64,
    duplicate: f64,
    horizon: Option<wsg_net::SimTime>,
) -> RunRecord {
    let mut net = SimNet::new(
        SimConfig::default()
            .seed(seed)
            .drop_probability(drop)
            .duplicate_probability(duplicate),
    );
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::<u64>::new(GossipConfig::new(style, params.clone()), peers)
    });
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
    let sink = events.clone();
    net.set_tracer(Box::new(move |ev| sink.lock().unwrap().push(ev.clone())));
    net.start();
    net.invoke(NodeId(0), |engine, ctx| {
        engine.publish(0xDEAD_BEEF, ctx);
    });
    match horizon {
        Some(t) => {
            net.run_until(t);
        }
        None => {
            net.run_to_quiescence();
        }
    }

    let trace = std::mem::take(&mut *events.lock().unwrap());
    let delivered =
        (0..n).map(|i| net.node(NodeId(i)).delivered().to_vec()).collect();
    (trace, delivered, format!("{:?}", net.stats()), net.now())
}

fn assert_identical(a: &RunRecord, b: &RunRecord) {
    assert_eq!(a.0.len(), b.0.len(), "trace lengths diverge");
    for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(x, y, "trace event {i} diverges");
    }
    assert_eq!(a.1, b.1, "delivery records diverge");
    assert_eq!(a.2, b.2, "final stats diverge");
    assert_eq!(a.3, b.3, "quiescence times diverge");
}

#[test]
fn eager_push_is_bit_identical_across_runs() {
    let params = GossipParams::new(3, 6);
    let first = run_scenario(42, 24, GossipStyle::EagerPush, params.clone(), 0.0, 0.0, None);
    let second = run_scenario(42, 24, GossipStyle::EagerPush, params, 0.0, 0.0, None);
    assert_identical(&first, &second);
    // Sanity: the run actually did something.
    assert!(first.0.len() > 24, "suspiciously short trace");
}

#[test]
fn lossy_duplicating_network_is_bit_identical_across_runs() {
    // Loss and duplication both draw from the network RNG; if stream
    // consumption ever depends on iteration order, this catches it.
    let params = GossipParams::new(4, 8);
    let first = run_scenario(7, 32, GossipStyle::EagerPush, params.clone(), 0.2, 0.1, None);
    let second = run_scenario(7, 32, GossipStyle::EagerPush, params, 0.2, 0.1, None);
    assert_identical(&first, &second);
}

#[test]
fn all_styles_are_bit_identical_across_runs() {
    // Pull-ish styles tick periodically, so bound them by virtual time
    // (like the engine's own tests) instead of waiting for quiescence.
    let horizon = Some(wsg_net::SimTime::from_secs(3));
    for style in [
        GossipStyle::EagerPush,
        GossipStyle::LazyPush,
        GossipStyle::Pull,
        GossipStyle::PushPull,
    ] {
        let params = GossipParams::new(3, 5);
        let first = run_scenario(11, 16, style, params.clone(), 0.05, 0.0, horizon);
        let second = run_scenario(11, 16, style, params, 0.05, 0.0, horizon);
        assert_identical(&first, &second);
    }
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    // The bench sweep runner fans (config, seed) cells across worker
    // threads; results must come back keyed by cell index so a parallel
    // sweep over full simulations is bit-identical to the serial loop.
    let cells: Vec<(u64, usize)> =
        (0..12u64).map(|seed| (seed, 3 + (seed as usize % 3))).collect();
    let run = |&(seed, fanout): &(u64, usize)| {
        let record = run_scenario(
            seed * 17 + 1,
            16,
            GossipStyle::EagerPush,
            GossipParams::new(fanout, 5),
            0.1,
            0.05,
            None,
        );
        // Coverage is an f64 reduction — exactly the kind of value whose
        // bit pattern would drift if result order depended on scheduling.
        let covered =
            record.1.iter().filter(|msgs| !msgs.is_empty()).count() as f64 / 16.0;
        (record.0.len(), covered, record.2, record.3)
    };
    let serial = wsg_bench::sweep::map_with_threads(&cells, 1, run);
    for workers in [2, 5, 16] {
        let parallel = wsg_bench::sweep::map_with_threads(&cells, workers, run);
        assert_eq!(serial, parallel, "sweep diverges at {workers} workers");
    }
}

#[test]
fn experiment_sweep_is_thread_count_invariant() {
    // End-to-end: a real experiment sweep (which routes through
    // `wsg_bench::sweep::map` and reads WSG_SWEEP_THREADS) produces the
    // same rows serial and parallel. Env is process-global, so this test
    // owns the variable for its whole body.
    std::env::set_var("WSG_SWEEP_THREADS", "1");
    let serial = wsg_bench::experiments::e2_reliability::sweep(&[32], 4, 8, 3);
    std::env::set_var("WSG_SWEEP_THREADS", "4");
    let parallel = wsg_bench::experiments::e2_reliability::sweep(&[32], 4, 8, 3);
    std::env::remove_var("WSG_SWEEP_THREADS");
    assert_eq!(serial, parallel, "experiment rows diverge with thread count");
}

#[test]
fn different_seeds_produce_different_traces() {
    // Guards against the determinism tests passing vacuously (e.g. the
    // seed being ignored and every run identical by construction).
    let params = GossipParams::new(3, 6);
    let a = run_scenario(1, 24, GossipStyle::EagerPush, params.clone(), 0.1, 0.0, None);
    let b = run_scenario(2, 24, GossipStyle::EagerPush, params, 0.1, 0.0, None);
    assert_ne!(a.0, b.0, "seed does not influence the run");
}

#[test]
fn fanout_and_rounds_shape_the_run() {
    // (seed, f, r) is the whole input: changing f or r must change the
    // trace for a fixed seed.
    let small =
        run_scenario(5, 24, GossipStyle::EagerPush, GossipParams::new(2, 3), 0.0, 0.0, None);
    let large =
        run_scenario(5, 24, GossipStyle::EagerPush, GossipParams::new(5, 8), 0.0, 0.0, None);
    assert_ne!(small.0, large.0, "params do not influence the run");
    assert!(large.0.len() > small.0.len(), "larger fanout/rounds should send more");
}
