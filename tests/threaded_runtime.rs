//! The same protocols on real OS threads: the gossip engine and the
//! membership service running over `wsg_net::threads::ThreadNet` with
//! wall-clock timers and crossbeam channels — proving the protocol
//! implementations are not simulation artifacts.

use std::time::Duration;

use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_membership::{MembershipConfig, MembershipGossip};
use wsg_net::threads::ThreadNet;
use wsg_net::{NodeId, SimDuration};

#[test]
fn eager_push_disseminates_over_real_threads() {
    let n = 8;
    let params = GossipParams::new(n, 4); // saturating fanout: deterministic
    let engines: Vec<GossipEngine<String>> = (0..n)
        .map(|i| {
            let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
            GossipEngine::new(GossipConfig::new(GossipStyle::EagerPush, params.clone()), peers)
        })
        .collect();
    let net = ThreadNet::spawn(engines, 42);
    // Inject the publication as a Push from a synthetic origin.
    net.send_external(
        NodeId(0),
        NodeId(0),
        wsg_gossip::GossipMessage::Push {
            id: wsg_gossip::MsgId::new(NodeId(0), 0),
            round: 0,
            payload: "live!".to_string(),
        },
    );
    let nodes = net.shutdown_after(Duration::from_millis(500));
    let reached = nodes.iter().filter(|e| !e.delivered().is_empty()).count();
    assert_eq!(reached, n, "all live nodes must deliver");
}

#[test]
fn pull_style_ticks_on_wall_clock() {
    let n = 6;
    let engines: Vec<GossipEngine<u32>> = (0..n)
        .map(|i| {
            let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
            GossipEngine::new(
                GossipConfig::new(GossipStyle::Pull, GossipParams::new(2, 4))
                    .interval(SimDuration::from_millis(30)),
                peers,
            )
        })
        .collect();
    let net = ThreadNet::spawn(engines, 7);
    net.send_external(
        NodeId(0),
        NodeId(0),
        wsg_gossip::GossipMessage::Push {
            id: wsg_gossip::MsgId::new(NodeId(0), 0),
            round: 0,
            payload: 9,
        },
    );
    // Several pull intervals of wall time.
    let nodes = net.shutdown_after(Duration::from_millis(800));
    let reached = nodes.iter().filter(|e| !e.delivered().is_empty()).count();
    assert!(reached >= n - 1, "pull should spread over threads: {reached}/{n}");
}

#[test]
fn membership_converges_on_threads() {
    let n = 6;
    let members: Vec<MembershipGossip> = (0..n)
        .map(|i| {
            MembershipGossip::new(
                MembershipConfig::default().interval(SimDuration::from_millis(40)),
                NodeId(i),
                n,
            )
        })
        .collect();
    let net = ThreadNet::spawn(members, 3);
    let nodes = net.shutdown_after(Duration::from_millis(1200));
    for (i, node) in nodes.iter().enumerate() {
        assert!(
            node.view().alive_count() >= n - 1,
            "node {i} only sees {} alive",
            node.view().alive_count()
        );
    }
}
