//! SOAP stack integration: envelopes produced by one subsystem parse in
//! another, header blocks survive full wire round-trips, and the
//! middleware chain composes with application handlers.

use ws_gossip::{GossipHeader, WsGossipNode};
use wsg_coord::{
    ActivationService, CoordinationContext, GossipGrant, GossipPolicy, GossipProtocol,
    RegistrationService, SubscriptionList,
};
use wsg_gossip::GossipParams;
use wsg_net::NodeId;
use wsg_soap::handler::{Direction, Disposition};
use wsg_soap::{Envelope, Handler, HandlerChain, HandlerOutcome, MessageContext, MessageHeaders};
use wsg_xml::Element;

#[test]
fn coordination_context_survives_full_wire_roundtrip() {
    let context = CoordinationContext::new(
        "urn:ws-gossip:ctx:55",
        GossipProtocol::PushPull,
        "http://node0/registration",
        GossipPolicy::new(GossipParams::new(7, 11)),
    )
    .with_expires(120_000);
    let envelope = Envelope::request(
        MessageHeaders::request("http://node3/gossip", "urn:x:Op").with_message_id("urn:uuid:9"),
        Element::new("op"),
    )
    .with_header(context.to_header());
    let xml = envelope.to_xml();
    let parsed = Envelope::parse(&xml).unwrap();
    let header = parsed
        .header(wsg_coord::WSCOOR_NS, "CoordinationContext")
        .expect("context header present");
    let decoded = CoordinationContext::from_header(header).unwrap();
    assert_eq!(decoded, context);
    assert_eq!(decoded.policy().params().fanout(), 7);
}

#[test]
fn all_coordination_bodies_roundtrip_via_wire_xml() {
    // CreateCoordinationContext
    let req = ActivationService::encode_request(GossipProtocol::AntiEntropy);
    let re = Element::parse(&req.to_xml_string()).unwrap();
    assert_eq!(
        ActivationService::decode_request(&re).unwrap(),
        GossipProtocol::AntiEntropy
    );

    // Register
    let reg = RegistrationService::encode_register("urn:ctx:1", "http://node9/gossip");
    let re = Element::parse(&reg.to_xml_string()).unwrap();
    assert_eq!(
        RegistrationService::decode_register(&re).unwrap(),
        ("urn:ctx:1".to_string(), "http://node9/gossip".to_string())
    );

    // RegisterResponse + grant
    let grant = GossipGrant {
        fanout: 3,
        rounds: 5,
        peers: vec!["http://node1/gossip".into(), "http://node2/gossip".into()],
    };
    let re = Element::parse(&grant.to_register_response().to_xml_string()).unwrap();
    assert_eq!(GossipGrant::from_parent(&re).unwrap(), grant);

    // Subscribe
    let sub = SubscriptionList::encode_subscribe("quotes", "http://node4/gossip", 9000);
    let re = Element::parse(&sub.to_xml_string()).unwrap();
    assert_eq!(
        SubscriptionList::decode_subscribe(&re).unwrap(),
        ("quotes".to_string(), "http://node4/gossip".to_string(), 9000)
    );
}

#[test]
fn gossip_header_and_context_coexist_in_one_envelope() {
    let context = CoordinationContext::new(
        "urn:ws-gossip:ctx:0",
        GossipProtocol::Push,
        "http://node0/registration",
        GossipPolicy::default(),
    );
    let gossip = GossipHeader {
        context_id: "urn:ws-gossip:ctx:0".into(),
        topic: "quotes".into(),
        origin: "http://node1/gossip".into(),
        seq: 0,
        round: 2,
    };
    let envelope = Envelope::request(
        MessageHeaders::request("http://node5/gossip", "urn:ws-gossip:2008:Notify"),
        Element::text_node("tick", "ACME"),
    )
    .with_header(context.to_header())
    .with_header(gossip.to_element());
    let parsed = Envelope::parse(&envelope.to_xml()).unwrap();
    assert_eq!(GossipHeader::from_envelope(&parsed), Some(gossip));
    assert!(parsed.header(wsg_coord::WSCOOR_NS, "CoordinationContext").is_some());
    assert_eq!(parsed.body().unwrap().text(), "ACME");
}

#[test]
fn application_handler_composes_with_gossip_layer() {
    // A logging handler after the gossip layer still sees pass-through
    // (non-gossip) traffic; gossip traffic is intercepted before it.
    struct Logger {
        seen: Vec<String>,
    }
    impl Handler for Logger {
        fn name(&self) -> &str {
            "logger"
        }
        fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
            self.seen
                .push(ctx.envelope.addressing().action().unwrap_or("?").to_string());
            HandlerOutcome::Continue
        }
    }

    let layer = ws_gossip::layer::GossipLayerHandle::new("http://node1/gossip", 1);
    let mut chain = HandlerChain::new();
    chain.push(Box::new(layer.handler()));
    chain.push(Box::new(Logger { seen: Vec::new() }));

    let plain = Envelope::request(
        MessageHeaders::request("http://node1/gossip", "urn:app:Echo"),
        Element::new("echo"),
    );
    let result = chain.process(Direction::Inbound, plain, "http://node1/gossip");
    assert!(matches!(result.disposition, Disposition::Deliver(_)));
}

#[test]
fn node_tolerates_garbage_on_the_wire() {
    use wsg_net::sim::{SimConfig, SimNet};
    let mut net = SimNet::new(SimConfig::default().seed(1));
    let id = net.add_node(WsGossipNode::consumer(NodeId(0), NodeId(0)));
    net.send_external(id, id, "this is not xml <<<".to_string());
    net.send_external(id, id, "<notsoap/>".to_string());
    net.run_to_quiescence();
    let stats = net.node(id).stats();
    assert_eq!(stats.messages_received, 2);
    assert_eq!(stats.parse_errors, 2);
    assert!(net.node(id).ops().is_empty());
}

#[test]
fn fault_envelopes_roundtrip_between_subsystems() {
    let fault = wsg_soap::Fault::new(wsg_soap::FaultCode::Sender, "unknown coordination context")
        .with_detail(Element::text_node("ContextId", "urn:ctx:404"));
    let envelope = Envelope::fault(
        MessageHeaders::new().with_relates_to("urn:uuid:req-1"),
        fault.clone(),
    );
    let parsed = Envelope::parse(&envelope.to_xml()).unwrap();
    assert!(parsed.is_fault());
    assert_eq!(parsed.as_fault(), Some(&fault));
    assert_eq!(parsed.addressing().relates_to(), Some("urn:uuid:req-1"));
}
