//! Property-based tests for the `wsg_http` HTTP/1.1 parser on the
//! in-tree `wsg_net::check` harness: random header casing, random body
//! sizes, arbitrary read-boundary splits, and hostile request lines. The
//! one invariant that matters above all: the parser **never panics** —
//! malformed input is a typed error the server turns into a 400.

use wsg_net::check::{run, Gen};
use wsg_net::{prop_assert, prop_assert_eq};

use wsg_http::message::Request;
use wsg_http::parser::{ParseError, Parsed, RequestParser, ResponseParser};

/// Randomise the ASCII case of a header name ("content-length" →
/// "CoNtEnT-lEnGtH"); lookups must not care.
fn random_case(g: &mut Gen, name: &str) -> String {
    name.chars()
        .map(|c| if g.bool(0.5) { c.to_ascii_uppercase() } else { c.to_ascii_lowercase() })
        .collect()
}

/// Feed `wire` to a parser in random chunks, mimicking arbitrary
/// `read()` boundaries, and return the first parse outcome after the
/// last byte.
fn parse_in_random_chunks(g: &mut Gen, wire: &[u8]) -> Result<Parsed<Request>, ParseError> {
    let mut parser = RequestParser::new();
    let mut rest = wire;
    while !rest.is_empty() {
        let take = g.usize(1..=rest.len());
        parser.feed(&rest[..take]);
        rest = &rest[take..];
        if !rest.is_empty() {
            // Mid-message polls must never panic either.
            let _ = parser.parse();
        }
    }
    parser.parse()
}

/// A well-formed POST parses identically no matter how the bytes are
/// split across reads, with randomly-cased header names and a random
/// binary body.
#[test]
fn split_boundaries_never_change_the_parse() {
    run("split_boundaries_never_change_the_parse", 96, |g| {
        let body = g.bytes(512);
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST /gossip HTTP/1.1\r\n");
        wire.extend_from_slice(
            format!("{}: {}\r\n", random_case(g, "content-length"), body.len()).as_bytes(),
        );
        wire.extend_from_slice(
            format!("{}: \"urn:svc:Notify\"\r\n", random_case(g, "soapaction")).as_bytes(),
        );
        wire.extend_from_slice(b"\r\n");
        wire.extend_from_slice(&body);

        match parse_in_random_chunks(g, &wire).map_err(|e| e.to_string())? {
            Parsed::Complete(request) => {
                prop_assert_eq!(request.method.as_str(), "POST");
                prop_assert_eq!(request.body, body);
                prop_assert_eq!(request.soap_action(), Some("urn:svc:Notify"));
            }
            Parsed::Partial => prop_assert!(false, "full wire message must parse completely"),
        }
        Ok(())
    });
}

/// Bodies of arbitrary size round-trip exactly (no truncation, no
/// over-read), and the parser consumes exactly the message's bytes.
#[test]
fn random_body_sizes_roundtrip_exactly() {
    run("random_body_sizes_roundtrip_exactly", 96, |g| {
        let size = g.usize(0..=4096);
        let body: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let wire = Request::post("/gossip", body.clone()).to_bytes();
        let mut parser = RequestParser::new();
        parser.feed(&wire);
        match parser.parse().map_err(|e| e.to_string())? {
            Parsed::Complete(request) => prop_assert_eq!(request.body, body),
            Parsed::Partial => prop_assert!(false, "complete message must parse"),
        }
        prop_assert_eq!(parser.buffered(), 0);
        Ok(())
    });
}

/// Arbitrary garbage request lines produce a typed error — never a panic,
/// never a bogus `Complete`.
#[test]
fn malformed_request_lines_error_instead_of_panicking() {
    run("malformed_request_lines_error_instead_of_panicking", 128, |g| {
        // Random ASCII with injected spaces: virtually never a valid
        // "METHOD SP target SP HTTP/1.x" triple.
        let mut line = g.ascii_string(60);
        if g.bool(0.5) {
            line.push(' ');
            line.push_str(&g.ascii_string(10));
        }
        let wire = format!("{line}\r\n\r\n");
        let mut parser = RequestParser::new();
        parser.feed(wire.as_bytes());
        match parser.parse() {
            Ok(Parsed::Complete(request)) => {
                // The only way to "succeed" is to actually be well-formed.
                prop_assert!(
                    line.split(' ').count() == 3
                        && (line.ends_with("HTTP/1.1") || line.ends_with("HTTP/1.0")),
                    "bogus line parsed as a request: {line:?}"
                );
                prop_assert!(!request.method.is_empty());
            }
            Ok(Parsed::Partial) => prop_assert!(false, "terminated head cannot be partial"),
            Err(_) => {}
        }
        Ok(())
    });
}

/// Totally random bytes — fed in random chunks — never panic either
/// parser and never yield a `Complete` without a valid head.
#[test]
fn random_bytes_never_panic_the_parsers() {
    run("random_bytes_never_panic_the_parsers", 128, |g| {
        let noise = g.bytes(2048);
        let mut request_parser = RequestParser::new();
        let mut response_parser = ResponseParser::new();
        let mut rest = noise.as_slice();
        while !rest.is_empty() {
            let take = g.usize(1..=rest.len());
            request_parser.feed(&rest[..take]);
            response_parser.feed(&rest[..take]);
            rest = &rest[take..];
            let _ = request_parser.parse();
            let _ = response_parser.parse();
        }
        Ok(())
    });
}

/// Keep-alive semantics hold under random header-name casing and random
/// HTTP versions.
#[test]
fn keep_alive_is_case_insensitive() {
    run("keep_alive_is_case_insensitive", 64, |g| {
        let version = *g.pick(&["HTTP/1.1", "HTTP/1.0"]);
        let value = *g.pick(&["close", "keep-alive", "Close", "Keep-Alive"]);
        let wire = format!(
            "POST / {version}\r\n{}: {value}\r\nContent-Length: 0\r\n\r\n",
            random_case(g, "connection"),
        );
        let mut parser = RequestParser::new();
        parser.feed(wire.as_bytes());
        let Parsed::Complete(request) = parser.parse().map_err(|e| e.to_string())? else {
            prop_assert!(false, "complete message must parse");
            return Ok(());
        };
        let expected = if value.eq_ignore_ascii_case("close") {
            false
        } else {
            version == "HTTP/1.1" || value.eq_ignore_ascii_case("keep-alive")
        };
        prop_assert_eq!(request.keep_alive(), expected);
        Ok(())
    });
}
