//! Resilience integration tests: the paper's §2 claim that gossip is
//! "highly resilient to network and process faults", exercised against
//! the pure engine and the baselines under identical fault injection.

use wsg_baselines::{BrokerNode, TreeNode};
use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{LatencyModel, NodeId, SimDuration, SimTime};

fn gossip_net(
    n: usize,
    params: GossipParams,
    config: SimConfig,
) -> SimNet<GossipEngine<u32>> {
    let mut net = SimNet::new(config);
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::new(GossipConfig::new(GossipStyle::EagerPush, params.clone()), peers)
    });
    net.start();
    net
}

fn gossip_coverage(net: &SimNet<GossipEngine<u32>>, n: usize) -> f64 {
    (0..n)
        .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
        .count() as f64
        / n as f64
}

#[test]
fn gossip_shrugs_off_30_percent_crashes() {
    let n = 100;
    let crash = 30;
    let mut net = gossip_net(n, GossipParams::atomic_for(n), SimConfig::default().seed(1));
    // Crash 30 random-ish nodes (deterministic choice).
    for i in 0..crash {
        net.crash(NodeId(3 * i + 1));
    }
    net.invoke(NodeId(0), |e, ctx| {
        e.publish(1, ctx);
    });
    net.run_to_quiescence();
    let alive: Vec<usize> = (0..n).filter(|i| !net.is_crashed(NodeId(*i))).collect();
    let reached = alive
        .iter()
        .filter(|i| !net.node(NodeId(**i)).delivered().is_empty())
        .count();
    // Static peer views still contain the crashed 30%, so a fraction of
    // each fanout is wasted; near-complete coverage of survivors is the
    // paper's claim, not per-message atomicity.
    assert!(
        reached as f64 >= alive.len() as f64 * 0.95,
        "only {reached}/{} survivors reached",
        alive.len()
    );
}

#[test]
fn gossip_beats_tree_under_crashes() {
    let n = 64;
    let seed = 2;
    let crashed: Vec<NodeId> = vec![NodeId(1), NodeId(2)]; // interior tree nodes

    let mut tree = SimNet::new(SimConfig::default().seed(seed));
    tree.add_nodes(n, |id| TreeNode::<u32>::new(id, n, 2));
    tree.start();
    for id in &crashed {
        tree.crash(*id);
    }
    tree.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
    tree.run_to_quiescence();
    let tree_reached = (0..n)
        .filter(|i| !tree.node(NodeId(*i)).delivered().is_empty())
        .count();

    let mut gossip = gossip_net(n, GossipParams::atomic_for(n), SimConfig::default().seed(seed));
    for id in &crashed {
        gossip.crash(*id);
    }
    gossip.invoke(NodeId(0), |e, ctx| {
        e.publish(1, ctx);
    });
    gossip.run_to_quiescence();
    let gossip_reached = (0..n)
        .filter(|i| !gossip.node(NodeId(*i)).delivered().is_empty())
        .count();

    // The binary tree loses both children of the root -> almost everyone.
    assert!(tree_reached <= 2, "tree reached {tree_reached}");
    assert_eq!(gossip_reached, n - crashed.len(), "gossip reached all survivors");
}

#[test]
fn gossip_delivery_degrades_gracefully_with_loss() {
    let n = 80;
    let mut last_coverage = 1.1;
    for loss in [0.0, 0.2, 0.4] {
        let mut net = gossip_net(
            n,
            GossipParams::new(4, 10),
            SimConfig::default().seed(3).drop_probability(loss),
        );
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_to_quiescence();
        let coverage = gossip_coverage(&net, n);
        assert!(
            coverage <= last_coverage + 0.05,
            "coverage should not increase with loss"
        );
        if loss == 0.0 {
            // f=4 ~ ln(80): high expected coverage, below the atomicity
            // threshold — exactly the regime E2 sweeps.
            assert!(coverage > 0.95, "loss-free coverage {coverage}");
        }
        last_coverage = coverage;
    }
}

#[test]
fn push_pull_heals_a_partition() {
    let n = 30;
    let mut net = SimNet::new(
        SimConfig::default().seed(4).latency(LatencyModel::constant_millis(2)),
    );
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::<u32>::new(
            GossipConfig::new(GossipStyle::PushPull, GossipParams::new(3, 6))
                .interval(SimDuration::from_millis(50)),
            peers,
        )
    });
    net.start();
    let minority: Vec<NodeId> = (20..30).map(NodeId).collect();
    net.isolate(&minority);
    net.invoke(NodeId(0), |e, ctx| {
        e.publish(1, ctx);
    });
    net.run_until(SimTime::from_secs(2));
    let reached_minority = (20..30)
        .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
        .count();
    assert_eq!(reached_minority, 0, "partition holds");
    net.heal();
    net.run_until(SimTime::from_secs(8));
    let reached_minority = (20..30)
        .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
        .count();
    assert_eq!(reached_minority, 10, "pull repair crosses the healed cut");
}

#[test]
fn broker_is_a_single_point_of_failure_gossip_is_not() {
    let n = 40;
    // Broker variant: broker crashes mid-run.
    let mut broker_net = SimNet::new(SimConfig::default().seed(5));
    let subscribers: Vec<NodeId> = (1..n).map(NodeId).collect();
    broker_net.add_nodes(n, |id| {
        if id.index() == 0 {
            BrokerNode::<u32>::broker(subscribers.clone(), SimDuration::from_millis(50))
        } else {
            BrokerNode::subscriber(NodeId(0))
        }
    });
    broker_net.start();
    broker_net.crash(NodeId(0));
    broker_net.send_external(NodeId(1), NodeId(0), wsg_baselines::BrokerMsg::Publish(1));
    broker_net.run_until(SimTime::from_secs(2));
    let broker_reached = (1..n)
        .filter(|i| !broker_net.node(NodeId(*i)).delivered().is_empty())
        .count();
    assert_eq!(broker_reached, 0);

    // Gossip variant: ANY single node (even the origin, post-publish) can die.
    let mut gossip = gossip_net(n, GossipParams::atomic_for(n), SimConfig::default().seed(5));
    gossip.invoke(NodeId(0), |e, ctx| {
        e.publish(1, ctx);
    });
    gossip.crash(NodeId(0));
    gossip.run_to_quiescence();
    let reached = (1..n)
        .filter(|i| !gossip.node(NodeId(*i)).delivered().is_empty())
        .count();
    assert_eq!(reached, n - 1, "origin crash after publish is harmless");
}
