//! End-to-end middleware tests across realistic deployments: many nodes,
//! several topics, every coordination protocol, byte accounting.

use ws_gossip::scenario::{self, INITIATOR};
use ws_gossip::{Role, WsGossipNode};
use wsg_coord::{GossipPolicy, GossipProtocol};
use wsg_gossip::GossipParams;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;
use wsg_xml::Element;

fn saturating_network(n_subscribers: usize, seed: u64) -> SimNet<WsGossipNode> {
    // Saturating fanout => deterministic flood => exact assertions hold.
    let mut net = SimNet::new(SimConfig::default().seed(seed));
    net.add_nodes(2 + n_subscribers, |id| match id.index() {
        0 => WsGossipNode::coordinator(id).with_policy(GossipPolicy::new(GossipParams::new(
            n_subscribers + 2,
            8,
        ))),
        1 => WsGossipNode::initiator(id, NodeId(0)),
        i if i < 2 + n_subscribers / 2 => WsGossipNode::disseminator(id, NodeId(0)),
        _ => WsGossipNode::consumer(id, NodeId(0)),
    });
    net.set_size_fn(Box::new(|xml: &String| xml.len()));
    net.start();
    net
}

#[test]
fn thirty_node_dissemination_completes() {
    let mut net = saturating_network(30, 1);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    scenario::notify(&mut net, "t", Element::text_node("op", "x"));
    net.run_to_quiescence();
    assert_eq!(scenario::coverage(&net, 1), 1.0);
}

#[test]
fn topics_are_isolated_interactions() {
    let mut net = saturating_network(10, 2);
    scenario::subscribe_all(&mut net, "alpha");
    scenario::subscribe_all(&mut net, "beta");
    net.run_to_quiescence();
    scenario::activate(&mut net, "alpha");
    scenario::activate(&mut net, "beta");
    net.run_to_quiescence();
    scenario::notify(&mut net, "alpha", Element::text_node("op", "a"));
    scenario::notify(&mut net, "beta", Element::text_node("op", "b"));
    net.run_to_quiescence();

    let ctx_alpha = net.node(INITIATOR).context_for("alpha").unwrap().identifier().to_string();
    let ctx_beta = net.node(INITIATOR).context_for("beta").unwrap().identifier().to_string();
    assert_ne!(ctx_alpha, ctx_beta);

    for id in net.node_ids() {
        let node = net.node(id);
        if matches!(node.role(), Role::Disseminator | Role::Consumer) {
            let topics: std::collections::HashSet<String> =
                node.distinct_ops().iter().map(|op| op.topic.clone()).collect();
            assert!(topics.contains("alpha") && topics.contains("beta"), "{id}: {topics:?}");
        }
    }
}

#[test]
fn every_gossip_protocol_type_activates() {
    for protocol in [
        GossipProtocol::Push,
        GossipProtocol::LazyPush,
        GossipProtocol::Pull,
        GossipProtocol::PushPull,
        GossipProtocol::AntiEntropy,
    ] {
        let mut net = saturating_network(6, 3);
        scenario::subscribe_all(&mut net, "t");
        net.run_to_quiescence();
        scenario::activate_with(&mut net, protocol, "t");
        net.run_to_quiescence();
        let ctx = net.node(INITIATOR).context_for("t");
        assert!(ctx.is_some(), "{protocol:?} failed to activate");
        assert_eq!(ctx.unwrap().protocol().unwrap(), protocol);
    }
}

#[test]
fn notifications_survive_moderate_loss() {
    // Real gossip parameters + retransmission-free push: with loss the
    // epidemic redundancy is what keeps coverage high.
    let mut net = SimNet::new(SimConfig::default().seed(4).drop_probability(0.05));
    let subscribers = 28;
    net.add_nodes(2 + subscribers, |id| match id.index() {
        0 => WsGossipNode::coordinator(id)
            .with_policy(GossipPolicy::new(GossipParams::new(8, 10))),
        1 => WsGossipNode::initiator(id, NodeId(0)),
        i if i < 2 + subscribers - 4 => WsGossipNode::disseminator(id, NodeId(0)),
        _ => WsGossipNode::consumer(id, NodeId(0)),
    });
    net.start();
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    scenario::notify(&mut net, "t", Element::text_node("op", "x"));
    net.run_to_quiescence();
    assert!(
        scenario::coverage(&net, 1) >= 0.9,
        "coverage {} too low under 5% loss",
        scenario::coverage(&net, 1)
    );
}

#[test]
fn late_subscriber_gets_later_messages() {
    let mut net = saturating_network(8, 5);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    scenario::notify(&mut net, "t", Element::text_node("op", "first"));
    net.run_to_quiescence();

    // A new consumer appears and subscribes.
    let newcomer = net.add_node(WsGossipNode::consumer(NodeId(10), NodeId(0)));
    net.invoke(newcomer, |node, ctx| node.subscribe("t", ctx));
    net.run_to_quiescence();

    scenario::notify(&mut net, "t", Element::text_node("op", "second"));
    net.run_to_quiescence();

    let ops = net.node(newcomer).distinct_ops();
    // It missed "first" (subscribed late) but...
    assert_eq!(ops.len(), 1, "got exactly the post-subscription message");
    assert_eq!(ops[0].payload.text(), "second");
}

#[test]
fn soap_bytes_flow_on_every_hop() {
    let mut net = saturating_network(6, 6);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    let before = net.stats().bytes_sent;
    scenario::notify(&mut net, "t", Element::text_node("op", "x".repeat(500)));
    net.run_to_quiescence();
    let delta = net.stats().bytes_sent - before;
    // Each forwarded copy carries the 500-byte payload plus SOAP framing.
    assert!(delta > 3_000, "only {delta} bytes for a fanned-out 500B payload");
    // And no parse errors anywhere: every byte on the wire was valid SOAP.
    for id in net.node_ids() {
        assert_eq!(net.node(id).stats().parse_errors, 0);
    }
}

#[test]
fn initiator_crash_after_publish_does_not_stop_dissemination() {
    let mut net = saturating_network(12, 7);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    scenario::notify(&mut net, "t", Element::text_node("op", "x"));
    // The copies are in flight; the initiator dies immediately after.
    net.crash(INITIATOR);
    net.run_to_quiescence();
    assert_eq!(
        scenario::coverage(&net, 1),
        1.0,
        "epidemic must complete without its origin"
    );
}

#[test]
fn unsubscribed_node_stops_receiving() {
    let mut net = saturating_network(8, 8);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    scenario::notify(&mut net, "t", Element::text_node("op", "before"));
    net.run_to_quiescence();

    // The last consumer opts out.
    let leaver = NodeId(9);
    assert_eq!(net.node(leaver).role(), Role::Consumer);
    net.invoke(leaver, |node, ctx| node.unsubscribe("t", ctx));
    net.run_to_quiescence();

    scenario::notify(&mut net, "t", Element::text_node("op", "after"));
    net.run_to_quiescence();

    let payloads: Vec<String> = net
        .node(leaver)
        .distinct_ops()
        .iter()
        .map(|op| op.payload.text())
        .collect();
    assert_eq!(payloads, ["before".to_string()], "got {payloads:?}");
    // Everyone else still gets both.
    for id in net.node_ids() {
        let node = net.node(id);
        if id != leaver && matches!(node.role(), Role::Disseminator | Role::Consumer) {
            assert_eq!(node.distinct_ops().len(), 2, "{id}");
        }
    }
}

#[test]
fn self_driving_deployment_runs_without_external_invokes() {
    use ws_gossip::WsGossipNode as Node;
    use wsg_net::SimDuration;
    let coordinator = NodeId(0);
    let ticks: Vec<Element> =
        (0..3).map(|i| Element::text_node("tick", i.to_string())).collect();
    let mut net = SimNet::new(SimConfig::default().seed(10));
    net.add_nodes(7, |id| match id.index() {
        0 => Node::coordinator(id)
            .with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        1 => Node::initiator(id, coordinator).with_publish_schedule(
            "t",
            ticks.clone(),
            SimDuration::from_millis(100),
        ),
        i if i < 5 => Node::disseminator(id, coordinator).with_auto_subscribe("t"),
        _ => Node::consumer(id, coordinator).with_auto_subscribe("t"),
    });
    net.start(); // everything from here is timer-driven
    net.run_to_quiescence();
    assert_eq!(scenario::coverage(&net, 3), 1.0, "all 3 scheduled ticks everywhere");
}

#[test]
fn fifo_delivery_orders_per_origin() {
    use ws_gossip::WsGossipNode as Node;
    // Wide latency spread so copies of later seqs can overtake earlier ones.
    let mut net = SimNet::new(
        SimConfig::default()
            .seed(11)
            .latency(wsg_net::LatencyModel::uniform_millis(1, 50)),
    );
    net.add_nodes(10, |id| match id.index() {
        0 => Node::coordinator(id).with_policy(GossipPolicy::new(GossipParams::new(10, 6))),
        1 => Node::initiator(id, NodeId(0)),
        i if i < 6 => Node::disseminator(id, NodeId(0)).with_fifo_delivery(),
        _ => Node::consumer(id, NodeId(0)).with_fifo_delivery(),
    });
    net.start();
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    for i in 0..10 {
        scenario::notify(&mut net, "t", Element::text_node("op", i.to_string()));
    }
    net.run_to_quiescence();
    for id in net.node_ids() {
        let node = net.node(id);
        if !matches!(node.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        let seqs: Vec<u64> = node.ops().iter().map(|op| op.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "{id} delivered out of order: {seqs:?}");
        assert_eq!(seqs.len(), 10, "{id} missed messages");
    }
}

#[test]
fn lapsed_subscription_lease_ages_out_a_crashed_subscriber() {
    use ws_gossip::WsGossipNode as Node;
    use wsg_net::{SimDuration, SimTime};
    let ttl = SimDuration::from_millis(500);
    let mut net = SimNet::new(SimConfig::default().seed(12));
    net.add_nodes(6, |id| match id.index() {
        0 => Node::coordinator(id).with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        1 => Node::initiator(id, NodeId(0)),
        i if i < 5 => Node::disseminator(id, NodeId(0)).with_subscription_ttl(ttl),
        _ => Node::consumer(id, NodeId(0)).with_subscription_ttl(ttl),
    });
    net.start();
    scenario::subscribe_all(&mut net, "t");
    net.run_until(SimTime::from_millis(100));
    assert_eq!(net.node(NodeId(0)).subscriber_count("t", net.now()), 4);

    // One subscriber dies: it stops renewing.
    net.crash(NodeId(5));
    net.run_until(SimTime::from_secs(3));
    assert_eq!(
        net.node(NodeId(0)).subscriber_count("t", net.now()),
        3,
        "lapsed lease must age out"
    );
    // The survivors kept renewing through 6 half-lives.
    scenario::activate(&mut net, "t");
    net.run_until(SimTime::from_secs(4));
    scenario::notify(&mut net, "t", Element::text_node("op", "x"));
    net.run_until(SimTime::from_secs(5));
    for i in 2..5 {
        assert!(
            !net.node(NodeId(i)).distinct_ops().is_empty(),
            "renewing subscriber {i} must still receive"
        );
    }
}

#[test]
fn two_initiators_disseminate_independently() {
    use ws_gossip::WsGossipNode as Node;
    // Node 1 and node 2 are both initiators with their own topics.
    let mut net = SimNet::new(SimConfig::default().seed(13));
    net.add_nodes(11, |id| match id.index() {
        0 => Node::coordinator(id).with_policy(GossipPolicy::new(GossipParams::new(12, 6))),
        1 | 2 => Node::initiator(id, NodeId(0)),
        i if i < 7 => Node::disseminator(id, NodeId(0)),
        _ => Node::consumer(id, NodeId(0)),
    });
    net.start();
    scenario::subscribe_all(&mut net, "stocks");
    scenario::subscribe_all(&mut net, "weather");
    net.run_to_quiescence();
    net.invoke(NodeId(1), |n, ctx| n.activate(GossipProtocol::Push, "stocks", ctx));
    net.invoke(NodeId(2), |n, ctx| n.activate(GossipProtocol::Push, "weather", ctx));
    net.run_to_quiescence();
    net.invoke(NodeId(1), |n, ctx| n.notify("stocks", Element::text_node("op", "s1"), ctx));
    net.invoke(NodeId(2), |n, ctx| n.notify("weather", Element::text_node("op", "w1"), ctx));
    net.invoke(NodeId(1), |n, ctx| n.notify("stocks", Element::text_node("op", "s2"), ctx));
    net.run_to_quiescence();

    // Distinct contexts were created for the two interactions.
    let ctx_a = net.node(NodeId(1)).context_for("stocks").unwrap().identifier().to_string();
    let ctx_b = net.node(NodeId(2)).context_for("weather").unwrap().identifier().to_string();
    assert_ne!(ctx_a, ctx_b);

    for id in net.node_ids() {
        let node = net.node(id);
        if !matches!(node.role(), Role::Disseminator | Role::Consumer) {
            continue;
        }
        let ops = node.distinct_ops();
        assert_eq!(ops.len(), 3, "{id} got {}", ops.len());
        let origins: std::collections::HashSet<&str> =
            ops.iter().map(|op| op.origin.as_str()).collect();
        assert_eq!(origins.len(), 2, "ops from both initiators");
    }
    // Per-origin seq numbering is independent.
    let any = net.node(NodeId(3));
    let stock_seqs: Vec<u64> = any
        .distinct_ops()
        .iter()
        .filter(|op| op.topic == "stocks")
        .map(|op| op.seq)
        .collect();
    assert_eq!(stock_seqs.len(), 2);
}

#[test]
fn wildcard_subscription_spans_topics() {
    use ws_gossip::WsGossipNode as Node;
    let mut net = SimNet::new(SimConfig::default().seed(14));
    net.add_nodes(7, |id| match id.index() {
        0 => Node::coordinator(id).with_policy(GossipPolicy::new(GossipParams::new(8, 6))),
        1 => Node::initiator(id, NodeId(0)),
        _ => Node::consumer(id, NodeId(0)),
    });
    net.start();
    // n2 wants everything under market/, n3 only NYSE, n4 everything,
    // n5 a single-level wildcard, n6 an unrelated subtree.
    let subs: &[(usize, &str)] = &[
        (2, "market/**"),
        (3, "market/nyse"),
        (4, "**"),
        (5, "market/*"),
        (6, "weather/**"),
    ];
    for (node, filter) in subs {
        let filter = filter.to_string();
        net.invoke(NodeId(*node), move |n, ctx| n.subscribe(&filter, ctx));
    }
    net.run_to_quiescence();

    for topic in ["market/nyse", "market/lse"] {
        net.invoke(NodeId(1), move |n, ctx| {
            n.activate(GossipProtocol::Push, topic, ctx)
        });
    }
    net.run_to_quiescence();
    net.invoke(NodeId(1), |n, ctx| {
        n.notify("market/nyse", Element::text_node("op", "nyse-tick"), ctx)
    });
    net.invoke(NodeId(1), |n, ctx| {
        n.notify("market/lse", Element::text_node("op", "lse-tick"), ctx)
    });
    net.run_to_quiescence();

    let got = |i: usize| -> Vec<String> {
        let mut topics: Vec<String> = net
            .node(NodeId(i))
            .distinct_ops()
            .iter()
            .map(|op| op.topic.clone())
            .collect();
        topics.sort();
        topics
    };
    assert_eq!(got(2), ["market/lse", "market/nyse"], "market/** sees both");
    assert_eq!(got(3), ["market/nyse"], "exact filter sees one");
    assert_eq!(got(4), ["market/lse", "market/nyse"], "** sees both");
    assert_eq!(got(5), ["market/lse", "market/nyse"], "market/* sees both");
    assert!(got(6).is_empty(), "weather/** sees neither");
}
