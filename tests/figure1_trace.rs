//! Reproduction of Figure 1: the exact message flow of a dissemination
//! using the gossip service — activation, registration, subscription, the
//! single `op` from the initiator, interception and re-routing.

use ws_gossip::scenario::{self, Figure1Shape, COORDINATOR, INITIATOR};
use ws_gossip::Role;
use wsg_net::sim::SimConfig;
use wsg_net::NodeId;
use wsg_xml::Element;

fn figure1() -> (wsg_net::sim::SimNet<ws_gossip::WsGossipNode>, Vec<String>) {
    // Figure 1 shows: Coordinator, Initiator (App0b), two Disseminators
    // (App1, App2), one Consumer (App3).
    let mut net = scenario::build_figure1_network(
        SimConfig::default().seed(2008),
        Figure1Shape { disseminators: 2, consumers: 1 },
    );
    let trace = scenario::install_tracer(&mut net);
    scenario::subscribe_all(&mut net, "quotes");
    net.run_to_quiescence();
    scenario::activate(&mut net, "quotes");
    net.run_to_quiescence();
    scenario::notify(&mut net, "quotes", Element::text_node("op", "payload"));
    net.run_to_quiescence();
    let lines = trace.lock().unwrap().clone();
    (net, lines)
}

#[test]
fn all_figure1_message_kinds_appear_in_order() {
    let (_, lines) = figure1();
    let text = lines.join("\n");
    // The protocol phases of Figure 1, in causal order.
    let phases = [
        "Subscribe",
        "CreateCoordinationContext",
        "CreateCoordinationContextResponse",
        "Notify[quotes seq=0",
        "Register",
        "RegisterResponse",
    ];
    let mut cursor = 0;
    for phase in phases {
        let found = text[cursor..].find(phase).unwrap_or_else(|| {
            panic!("phase '{phase}' missing after byte {cursor} in trace:\n{text}")
        });
        cursor += found;
    }
}

#[test]
fn subscription_precedes_activation_effects() {
    let (net, _) = figure1();
    let coordinator = net.node(COORDINATOR);
    assert_eq!(coordinator.subscriber_count("quotes", net.now()), 3);
}

#[test]
fn every_role_behaves_as_the_paper_describes() {
    let (net, _) = figure1();

    // Initiator: changed app code — activated and issued one notification.
    let initiator = net.node(INITIATOR);
    assert!(initiator.context_for("quotes").is_some());
    let init_layer = initiator.layer_stats().expect("initiator has gossip layer");
    assert_eq!(init_layer.intercepted, 1, "one outgoing op intercepted");
    assert!(init_layer.forwards_sent >= 1);

    // Disseminators: oblivious app, gossip handler did the work.
    for id in [NodeId(2), NodeId(3)] {
        let node = net.node(id);
        assert_eq!(node.role(), Role::Disseminator);
        assert_eq!(node.distinct_ops().len(), 1, "{id} delivered the op");
    }
    // At least one disseminator had to register (unknown interaction).
    let registrations: u64 = [NodeId(2), NodeId(3)]
        .iter()
        .map(|id| net.node(*id).layer_stats().unwrap().registers_sent)
        .sum();
    assert!(registrations >= 1);

    // Consumer: completely unchanged, still got the op.
    let consumer = net.node(NodeId(4));
    assert_eq!(consumer.role(), Role::Consumer);
    assert!(consumer.layer_stats().is_none());
    assert_eq!(consumer.distinct_ops().len(), 1);
}

#[test]
fn trace_shows_rounds_incrementing() {
    let (_, lines) = figure1();
    let rounds: Vec<u32> = lines
        .iter()
        .filter(|l| l.contains("Notify[quotes"))
        .filter_map(|l| {
            let idx = l.find("r=")?;
            l[idx + 2..].split(']').next()?.parse().ok()
        })
        .collect();
    assert!(rounds.contains(&1), "round 1 copies exist: {rounds:?}");
    assert!(rounds.iter().all(|r| *r >= 1), "wire copies start at round 1");
}

#[test]
fn coordinator_knows_participants_and_subscribers() {
    let (net, _) = figure1();
    let coordinator = net.node(COORDINATOR);
    let context_id = net
        .node(INITIATOR)
        .context_for("quotes")
        .unwrap()
        .identifier()
        .to_string();
    // Initiator + any disseminators that registered.
    assert!(coordinator.participant_count(&context_id) >= 2);
}
