//! Property-based tests for the `urn:ws-gossip:batch` wire wrapper on
//! the in-tree `wsg_net::check` harness: random envelope runs must
//! round-trip through `write_batch` → parse → `unbundle` with count,
//! order, per-message targets, headers and bodies intact — and the
//! unbundler must answer malformed wrappers with a typed error, never a
//! panic (the server turns it into a 400).

use wsg_net::check::{run, Gen};
use wsg_net::{prop_assert, prop_assert_eq};

use wsg_soap::batch::{is_batch, parse_wire, unbundle, write_batch, BatchItem, Unbundled};
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

/// A random one-way envelope: random action suffix, random payload text
/// (including XML-hostile characters, which must come back escaped and
/// re-unescaped intact).
fn random_envelope(g: &mut Gen) -> Envelope {
    let action = format!("urn:prop:{}", g.ascii_string(8));
    let mut payload = g.ascii_string(24);
    if g.bool(0.3) {
        payload.push_str("<&>\"'");
    }
    Envelope::request(
        MessageHeaders::request("http://prop/gossip", &action),
        Element::text_node("tick", payload),
    )
}

/// Random envelope runs round-trip exactly: same count, same order, same
/// targets, and each unbundled message re-parses to the original envelope.
#[test]
fn batches_roundtrip_count_order_targets_and_content() {
    run("batches_roundtrip_count_order_targets_and_content", 64, |g| {
        let count = g.usize(1..=8);
        let envelopes: Vec<Envelope> = (0..count).map(|_| random_envelope(g)).collect();
        let xmls: Vec<String> = envelopes.iter().map(|e| e.to_xml()).collect();
        let targets: Vec<Option<String>> = (0..count)
            .map(|_| if g.bool(0.4) { Some(format!("/{}", g.ascii_string(6))) } else { None })
            .collect();

        let items: Vec<BatchItem<'_>> = xmls
            .iter()
            .zip(&targets)
            .map(|(xml, target)| BatchItem { target: target.as_deref(), xml })
            .collect();
        let mut wire = String::new();
        write_batch(&items, &mut wire);

        let root = Element::parse(&wire).map_err(|e| e.to_string())?;
        prop_assert!(is_batch(&root), "written batch must be recognised as one");
        let messages = unbundle(&root).map_err(|e| e.to_string())?;
        prop_assert_eq!(messages.len(), count);
        for ((message, envelope), target) in messages.iter().zip(&envelopes).zip(&targets) {
            prop_assert_eq!(&message.target, target);
            prop_assert_eq!(
                message.envelope.addressing().action(),
                envelope.addressing().action()
            );
            prop_assert_eq!(
                message.envelope.body().map(|b| b.text()),
                envelope.body().map(|b| b.text())
            );
            // The reconstructed raw text must itself be a complete,
            // standalone envelope — it is what lands in a node's inbox.
            let reparsed = Envelope::parse(&message.raw).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                reparsed.body().map(|b| b.text()),
                envelope.body().map(|b| b.text())
            );
        }

        // The streaming unwrapper (the server's receive path) must agree
        // with the tree walk message for message, and its `raw` must be
        // the sender's own bytes, not a re-serialisation.
        let streamed = match parse_wire(&wire).map_err(|e| e.to_string())? {
            Unbundled::Batch(streamed) => streamed,
            Unbundled::Single(_) => {
                return Err("batch wire classified as a single document".into())
            }
        };
        prop_assert_eq!(streamed.len(), messages.len());
        for ((s, t), xml) in streamed.iter().zip(&messages).zip(&xmls) {
            prop_assert_eq!(&s.envelope, &t.envelope);
            prop_assert_eq!(&s.target, &t.target);
            // Streamed raw is byte-identical to the xml that was sent.
            prop_assert_eq!(&s.raw, xml);
        }
        Ok(())
    });
}

/// Structural corruption of a valid batch — truncation, byte flips,
/// spliced-in garbage — must never panic: either the XML parser rejects
/// it or `unbundle` returns a typed error (or, rarely, the mutation was
/// harmless and it still parses).
#[test]
fn corrupted_batches_error_instead_of_panicking() {
    run("corrupted_batches_error_instead_of_panicking", 96, |g| {
        let envelope = random_envelope(g).to_xml();
        let mut wire = String::new();
        write_batch(
            &[
                BatchItem { target: Some("/membership"), xml: &envelope },
                BatchItem { target: None, xml: &envelope },
            ],
            &mut wire,
        );

        let corrupted = match g.usize(0..=2) {
            0 => wire[..g.usize(1..=wire.len())].to_string(),
            1 => {
                let at = g.usize(0..=wire.len() - 1);
                let mut bytes = wire.into_bytes();
                bytes[at] = b'<' + (g.usize(0..=60) as u8);
                String::from_utf8_lossy(&bytes).into_owned()
            }
            _ => {
                let at = g.usize(0..=wire.len() - 1);
                format!("{}{}{}", &wire[..at], g.ascii_string(12), &wire[at..])
            }
        };
        if let Ok(root) = Element::parse(&corrupted) {
            let _ = is_batch(&root);
            let _ = unbundle(&root);
        }
        let _ = parse_wire(&corrupted);
        Ok(())
    });
}

/// Arbitrary well-formed XML that is *not* a batch: `is_batch` says no,
/// and `unbundle` refuses with an error instead of inventing messages.
#[test]
fn non_batch_documents_are_rejected() {
    run("non_batch_documents_are_rejected", 64, |g| {
        let name = {
            // XML names must start with a letter; `ascii_string` may not.
            let mut n = String::from("n");
            n.push_str(&g.ascii_string(6).replace(|c: char| !c.is_ascii_alphanumeric(), "x"));
            n
        };
        let doc = Element::text_node(&name, g.ascii_string(16));
        let root = Element::parse(&doc.to_xml_string()).map_err(|e| e.to_string())?;
        prop_assert!(!is_batch(&root), "a plain {name} element is not a batch");
        prop_assert!(unbundle(&root).is_err());
        prop_assert!(
            matches!(parse_wire(&doc.to_xml_string()), Ok(Unbundled::Single(_))),
            "a non-batch document streams through as a single root"
        );
        Ok(())
    });
}
