//! Property-based tests on cross-crate protocol invariants.

use proptest::prelude::*;

use wsg_coord::{CoordinationContext, GossipGrant, GossipPolicy, GossipProtocol};
use wsg_gossip::{analysis, Digest, GossipConfig, GossipEngine, GossipParams, GossipStyle, MsgId};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

fn arb_params() -> impl Strategy<Value = GossipParams> {
    (1usize..12, 1u32..12).prop_map(|(f, r)| GossipParams::new(f, r))
}

fn arb_protocol() -> impl Strategy<Value = GossipProtocol> {
    prop_oneof![
        Just(GossipProtocol::Push),
        Just(GossipProtocol::LazyPush),
        Just(GossipProtocol::Pull),
        Just(GossipProtocol::PushPull),
        Just(GossipProtocol::AntiEntropy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any coordination context round-trips through wire XML.
    #[test]
    fn context_wire_roundtrip(
        protocol in arb_protocol(),
        params in arb_params(),
        ctx_num in 0u64..10_000,
        expires in proptest::option::of(1u64..10_000_000),
    ) {
        let mut context = CoordinationContext::new(
            format!("urn:ws-gossip:ctx:{ctx_num}"),
            protocol,
            "http://node0/registration",
            GossipPolicy::new(params),
        );
        if let Some(expires) = expires {
            context = context.with_expires(expires);
        }
        let xml = context.to_header().to_xml_string();
        let parsed = CoordinationContext::from_header(&Element::parse(&xml).unwrap()).unwrap();
        prop_assert_eq!(parsed, context);
    }

    /// Grants round-trip through wire XML with arbitrary peer lists.
    #[test]
    fn grant_wire_roundtrip(
        fanout in 1usize..50,
        rounds in 1u32..50,
        peers in proptest::collection::vec(0usize..1000, 0..20),
    ) {
        let grant = GossipGrant {
            fanout,
            rounds,
            peers: peers.iter().map(|p| format!("http://node{p}/gossip")).collect(),
        };
        let xml = grant.to_register_response().to_xml_string();
        let parsed = GossipGrant::from_parent(&Element::parse(&xml).unwrap()).unwrap();
        prop_assert_eq!(parsed, grant);
    }

    /// SOAP envelopes with arbitrary payload text round-trip.
    #[test]
    fn envelope_payload_roundtrip(text in "[ -~]{0,200}") {
        let env = Envelope::request(
            MessageHeaders::request("http://node1/gossip", "urn:op"),
            Element::new("op").with_text(text.clone()),
        );
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(parsed.body().unwrap().text(), text);
    }

    /// Digest::missing_from is a true set difference for arbitrary sets.
    #[test]
    fn digest_difference_exact(
        mine in proptest::collection::hash_set((0usize..6, 0u64..30), 0..40),
        theirs in proptest::collection::hash_set((0usize..6, 0u64..30), 0..40),
    ) {
        let mut a = Digest::new();
        for &(origin, seq) in &mine {
            a.insert(MsgId::new(NodeId(origin), seq));
        }
        let mut b = Digest::new();
        for &(origin, seq) in &theirs {
            b.insert(MsgId::new(NodeId(origin), seq));
        }
        let missing: std::collections::HashSet<(usize, u64)> = a
            .missing_from(&b)
            .into_iter()
            .map(|id| (id.origin().index(), id.seq()))
            .collect();
        let expected: std::collections::HashSet<(usize, u64)> =
            mine.difference(&theirs).copied().collect();
        prop_assert_eq!(missing, expected);
    }

    /// The epidemic never delivers the same message twice to the app and
    /// never exceeds the round budget, for any parameters and loss rate.
    #[test]
    fn engine_invariants_hold(
        params in arb_params(),
        n in 4usize..40,
        loss in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(loss));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                peers,
            )
        });
        net.start();
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(7, ctx);
        });
        net.run_to_quiescence();
        for i in 0..n {
            let delivered = net.node(NodeId(i)).delivered();
            prop_assert!(delivered.len() <= 1, "double delivery at {i}");
            for d in delivered {
                prop_assert!(d.round <= params.rounds());
            }
        }
        // The origin always has it.
        prop_assert_eq!(net.node(NodeId(0)).delivered().len(), 1);
    }

    /// Mean-field coverage prediction brackets the simulated coverage for
    /// loss-free eager push (within a generous tolerance band).
    #[test]
    fn analysis_brackets_simulation(seed in 0u64..50) {
        let n = 128;
        let params = GossipParams::new(3, 4);
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                peers,
            )
        });
        net.start();
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(1, ctx);
        });
        net.run_to_quiescence();
        let reached = (0..n)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count() as f64 / n as f64;
        let predicted = analysis::expected_coverage(n, 3, 4);
        prop_assert!((reached - predicted).abs() < 0.35,
            "simulated {reached:.2} vs predicted {predicted:.2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Membership view merging is commutative and idempotent: any two
    /// orders of applying two snapshots converge to the same view.
    #[test]
    fn membership_merge_is_commutative_and_idempotent(
        snapshot_a in proptest::collection::vec((0usize..8, 0u64..100), 0..24),
        snapshot_b in proptest::collection::vec((0usize..8, 0u64..100), 0..24),
    ) {
        use wsg_membership::MembershipView;
        use wsg_net::SimTime;
        let entries_a: Vec<(NodeId, u64)> =
            snapshot_a.iter().map(|&(n, h)| (NodeId(n), h)).collect();
        let entries_b: Vec<(NodeId, u64)> =
            snapshot_b.iter().map(|&(n, h)| (NodeId(n), h)).collect();
        let at = SimTime::from_millis(1);

        let mut ab = MembershipView::new();
        ab.merge(&entries_a, at);
        ab.merge(&entries_b, at);

        let mut ba = MembershipView::new();
        ba.merge(&entries_b, at);
        ba.merge(&entries_a, at);

        prop_assert_eq!(ab.snapshot(), ba.snapshot());

        // Idempotence: re-applying changes nothing.
        let before = ab.snapshot();
        ab.merge(&entries_a, SimTime::from_millis(2));
        ab.merge(&entries_b, SimTime::from_millis(2));
        prop_assert_eq!(ab.snapshot(), before);
    }

    /// Simulator causality: every delivery happens strictly after its
    /// send, times never run backwards, and crashed nodes receive nothing.
    #[test]
    fn simulator_respects_causality(
        seed in 0u64..500,
        n in 2usize..16,
        drop in 0.0f64..0.4,
    ) {
        use std::sync::{Arc, Mutex};
        use wsg_gossip::{GossipConfig, GossipStyle};
        use wsg_net::{TraceEvent, TraceKind};

        let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(drop));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(2, 5)),
                peers,
            )
        });
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
        let sink = events.clone();
        net.set_tracer(Box::new(move |ev| sink.lock().unwrap().push(ev.clone())));
        let crashed = NodeId(n - 1);
        net.crash(crashed);
        net.start();
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_to_quiescence();

        let events = events.lock().unwrap();
        let mut last = wsg_net::SimTime::ZERO;
        for ev in events.iter() {
            prop_assert!(ev.time >= last, "time ran backwards");
            last = ev.time;
            if ev.kind == TraceKind::Deliver {
                prop_assert_ne!(ev.to, crashed, "delivery to a crashed node");
            }
        }
        // Every deliver is strictly later than some send between the same pair.
        for deliver in events.iter().filter(|e| e.kind == TraceKind::Deliver) {
            let has_cause = events.iter().any(|send| {
                send.kind == TraceKind::Send
                    && send.from == deliver.from
                    && send.to == deliver.to
                    && send.time < deliver.time
            });
            prop_assert!(has_cause, "delivery without an earlier send");
        }
    }

    /// Same seed, same run: the simulator is deterministic for arbitrary
    /// parameters.
    #[test]
    fn simulator_is_deterministic(seed in 0u64..200, n in 2usize..20) {
        use wsg_gossip::{GossipConfig, GossipStyle};
        let run = || {
            let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(0.1));
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u32>::new(
                    GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(3, 6)),
                    peers,
                )
            });
            net.start();
            net.invoke(NodeId(0), |e, ctx| {
                e.publish(9, ctx);
            });
            net.run_to_quiescence();
            (net.stats().clone(), net.now())
        };
        prop_assert_eq!(run(), run());
    }

    /// Push-sum conserves the value hull: estimates never leave
    /// [min(values), max(values)] and converge towards the true mean.
    #[test]
    fn push_sum_estimates_stay_in_hull(
        values in proptest::collection::vec(0.0f64..1000.0, 2..24),
        seed in 0u64..100,
    ) {
        use wsg_gossip::PushSum;
        use wsg_net::{SimDuration, SimTime};
        let n = values.len();
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        for (i, &v) in values.iter().enumerate() {
            let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
            net.add_node(PushSum::new(v, peers, SimDuration::from_millis(50)));
        }
        net.start();
        net.run_until(SimTime::from_secs(8));
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / n as f64;
        for id in net.node_ids() {
            let est = net.node(id).estimate();
            prop_assert!(est >= lo - 1e-6 && est <= hi + 1e-6, "estimate {est} outside hull");
            prop_assert!((est - mean).abs() < (hi - lo).max(1.0) * 0.05 + 1e-6,
                "estimate {est} far from mean {mean}");
        }
    }
}
