//! Property-based tests on cross-crate protocol invariants, running on
//! the in-tree `wsg_net::check` harness (randomised cases, shrink by
//! halving, failing-seed replay via `WSG_PROP_SEED`).

use wsg_net::check::{run, Gen};
use wsg_net::{prop_assert, prop_assert_eq};

use wsg_coord::{CoordinationContext, GossipGrant, GossipPolicy, GossipProtocol};
use wsg_gossip::{analysis, Digest, GossipConfig, GossipEngine, GossipParams, GossipStyle, MsgId};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

fn gen_params(g: &mut Gen) -> GossipParams {
    GossipParams::new(g.usize(1..=11), g.u32(1..=11))
}

fn gen_protocol(g: &mut Gen) -> GossipProtocol {
    *g.pick(&[
        GossipProtocol::Push,
        GossipProtocol::LazyPush,
        GossipProtocol::Pull,
        GossipProtocol::PushPull,
        GossipProtocol::AntiEntropy,
    ])
}

/// Any coordination context round-trips through wire XML.
#[test]
fn context_wire_roundtrip() {
    run("context_wire_roundtrip", 64, |g| {
        let protocol = gen_protocol(g);
        let params = gen_params(g);
        let ctx_num = g.u64(0..=9_999);
        let mut context = CoordinationContext::new(
            format!("urn:ws-gossip:ctx:{ctx_num}"),
            protocol,
            "http://node0/registration",
            GossipPolicy::new(params),
        );
        if g.bool(0.5) {
            context = context.with_expires(g.u64(1..=9_999_999));
        }
        let xml = context.to_header().to_xml_string();
        let parsed = CoordinationContext::from_header(&Element::parse(&xml).unwrap()).unwrap();
        prop_assert_eq!(parsed, context);
        Ok(())
    });
}

/// Grants round-trip through wire XML with arbitrary peer lists.
#[test]
fn grant_wire_roundtrip() {
    run("grant_wire_roundtrip", 64, |g| {
        let grant = GossipGrant {
            fanout: g.usize(1..=49),
            rounds: g.u32(1..=49),
            peers: g.vec_of(20, |g| format!("http://node{}/gossip", g.usize(0..=999))),
        };
        let xml = grant.to_register_response().to_xml_string();
        let parsed = GossipGrant::from_parent(&Element::parse(&xml).unwrap()).unwrap();
        prop_assert_eq!(parsed, grant);
        Ok(())
    });
}

/// SOAP envelopes with arbitrary payload text round-trip.
#[test]
fn envelope_payload_roundtrip() {
    run("envelope_payload_roundtrip", 64, |g| {
        let text = g.ascii_string(200);
        let env = Envelope::request(
            MessageHeaders::request("http://node1/gossip", "urn:op"),
            Element::new("op").with_text(text.clone()),
        );
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(parsed.body().unwrap().text(), text);
        Ok(())
    });
}

/// Digest::missing_from is a true set difference for arbitrary sets.
#[test]
fn digest_difference_exact() {
    run("digest_difference_exact", 64, |g| {
        let gen_set = |g: &mut Gen| -> std::collections::HashSet<(usize, u64)> {
            g.vec_of(40, |g| (g.usize(0..=5), g.u64(0..=29))).into_iter().collect()
        };
        let mine = gen_set(g);
        let theirs = gen_set(g);
        let mut a = Digest::new();
        for &(origin, seq) in &mine {
            a.insert(MsgId::new(NodeId(origin), seq));
        }
        let mut b = Digest::new();
        for &(origin, seq) in &theirs {
            b.insert(MsgId::new(NodeId(origin), seq));
        }
        let missing: std::collections::HashSet<(usize, u64)> = a
            .missing_from(&b)
            .into_iter()
            .map(|id| (id.origin().index(), id.seq()))
            .collect();
        let expected: std::collections::HashSet<(usize, u64)> =
            mine.difference(&theirs).copied().collect();
        prop_assert_eq!(missing, expected);
        Ok(())
    });
}

/// The epidemic never delivers the same message twice to the app and
/// never exceeds the round budget, for any parameters and loss rate.
#[test]
fn engine_invariants_hold() {
    run("engine_invariants_hold", 64, |g| {
        let params = gen_params(g);
        let n = g.usize(4..=39);
        let loss = g.f64(0.0..0.5);
        let seed = g.u64(0..=999);
        let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(loss));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                peers,
            )
        });
        net.start();
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(7, ctx);
        });
        net.run_to_quiescence();
        for i in 0..n {
            let delivered = net.node(NodeId(i)).delivered();
            prop_assert!(delivered.len() <= 1, "double delivery at {i}");
            for d in delivered {
                prop_assert!(d.round <= params.rounds());
            }
        }
        // The origin always has it.
        prop_assert_eq!(net.node(NodeId(0)).delivered().len(), 1);
        Ok(())
    });
}

/// Mean-field coverage prediction brackets the simulated coverage for
/// loss-free eager push (within a generous tolerance band).
#[test]
fn analysis_brackets_simulation() {
    run("analysis_brackets_simulation", 64, |g| {
        let seed = g.u64(0..=49);
        let n = 128;
        let params = GossipParams::new(3, 4);
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                peers,
            )
        });
        net.start();
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(1, ctx);
        });
        net.run_to_quiescence();
        let reached = (0..n)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count() as f64
            / n as f64;
        let predicted = analysis::expected_coverage(n, 3, 4);
        prop_assert!(
            (reached - predicted).abs() < 0.35,
            "simulated {reached:.2} vs predicted {predicted:.2}"
        );
        Ok(())
    });
}

/// Membership view merging is commutative and idempotent: any two
/// orders of applying two snapshots converge to the same view.
#[test]
fn membership_merge_is_commutative_and_idempotent() {
    run("membership_merge_commutative_idempotent", 48, |g| {
        use wsg_membership::MembershipView;
        use wsg_net::SimTime;
        let gen_entries = |g: &mut Gen| -> Vec<(NodeId, u64)> {
            g.vec_of(24, |g| (NodeId(g.usize(0..=7)), g.u64(0..=99)))
        };
        let entries_a = gen_entries(g);
        let entries_b = gen_entries(g);
        let at = SimTime::from_millis(1);

        let mut ab = MembershipView::new();
        ab.merge(&entries_a, at);
        ab.merge(&entries_b, at);

        let mut ba = MembershipView::new();
        ba.merge(&entries_b, at);
        ba.merge(&entries_a, at);

        prop_assert_eq!(ab.snapshot(), ba.snapshot());

        // Idempotence: re-applying changes nothing.
        let before = ab.snapshot();
        ab.merge(&entries_a, SimTime::from_millis(2));
        ab.merge(&entries_b, SimTime::from_millis(2));
        prop_assert_eq!(ab.snapshot(), before);
        Ok(())
    });
}

/// Simulator causality: every delivery happens strictly after its
/// send, times never run backwards, and crashed nodes receive nothing.
#[test]
fn simulator_respects_causality() {
    run("simulator_respects_causality", 48, |g| {
        use std::sync::{Arc, Mutex};
        use wsg_net::{TraceEvent, TraceKind};

        let seed = g.u64(0..=499);
        let n = g.usize(2..=15);
        let drop = g.f64(0.0..0.4);
        let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(drop));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u32>::new(
                GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(2, 5)),
                peers,
            )
        });
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
        let sink = events.clone();
        net.set_tracer(Box::new(move |ev| sink.lock().unwrap().push(ev.clone())));
        let crashed = NodeId(n - 1);
        net.crash(crashed);
        net.start();
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_to_quiescence();

        let events = events.lock().unwrap();
        let mut last = wsg_net::SimTime::ZERO;
        for ev in events.iter() {
            prop_assert!(ev.time >= last, "time ran backwards");
            last = ev.time;
            if ev.kind == TraceKind::Deliver {
                prop_assert!(ev.to != crashed, "delivery to a crashed node");
            }
        }
        // Every deliver is strictly later than some send between the same pair.
        for deliver in events.iter().filter(|e| e.kind == TraceKind::Deliver) {
            let has_cause = events.iter().any(|send| {
                send.kind == TraceKind::Send
                    && send.from == deliver.from
                    && send.to == deliver.to
                    && send.time < deliver.time
            });
            prop_assert!(has_cause, "delivery without an earlier send");
        }
        Ok(())
    });
}

/// Same seed, same run: the simulator is deterministic for arbitrary
/// parameters.
#[test]
fn simulator_is_deterministic() {
    run("simulator_is_deterministic", 48, |g| {
        let seed = g.u64(0..=199);
        let n = g.usize(2..=19);
        let run_once = || {
            let mut net = SimNet::new(SimConfig::default().seed(seed).drop_probability(0.1));
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u32>::new(
                    GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(3, 6)),
                    peers,
                )
            });
            net.start();
            net.invoke(NodeId(0), |e, ctx| {
                e.publish(9, ctx);
            });
            net.run_to_quiescence();
            (net.stats().clone(), net.now())
        };
        prop_assert_eq!(run_once(), run_once());
        Ok(())
    });
}

/// Push-sum conserves the value hull: estimates never leave
/// [min(values), max(values)] and converge towards the true mean.
#[test]
fn push_sum_estimates_stay_in_hull() {
    run("push_sum_estimates_stay_in_hull", 48, |g| {
        use wsg_gossip::PushSum;
        use wsg_net::{SimDuration, SimTime};
        let n = g.usize(2..=23);
        let values: Vec<f64> = (0..n).map(|_| g.f64(0.0..1000.0)).collect();
        let seed = g.u64(0..=99);
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        for (i, &v) in values.iter().enumerate() {
            let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
            net.add_node(PushSum::new(v, peers, SimDuration::from_millis(50)));
        }
        net.start();
        net.run_until(SimTime::from_secs(8));
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / n as f64;
        for id in net.node_ids() {
            let est = net.node(id).estimate();
            prop_assert!(est >= lo - 1e-6 && est <= hi + 1e-6, "estimate {est} outside hull");
            prop_assert!(
                (est - mean).abs() < (hi - lo).max(1.0) * 0.05 + 1e-6,
                "estimate {est} far from mean {mean}"
            );
        }
        Ok(())
    });
}
