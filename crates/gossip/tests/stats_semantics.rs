//! Counter-semantics regression tests for [`wsg_gossip::EngineStats`].
//!
//! The exported `wsg_gossip_*` metrics are only trustworthy if the
//! underlying counters obey their documented semantics:
//!
//! * every redundant payload receipt increments `duplicates_received`
//!   exactly once (and first sightings never do);
//! * a pull exchange with nothing to offer sends no response at all —
//!   neither `pull_responses_sent` nor `payloads_sent` move;
//! * the lazy-push retry path re-requests only while payloads are
//!   actually missing (one `IWant` per first-sighted advertisement on a
//!   lossless network; strictly more under loss, and only then).
//!
//! Most tests pin a conservation law on a lossless network: every
//! payload put on the wire is received exactly once, and every receipt
//! is either a first sighting (a delivery that was not the local
//! publish) or a counted duplicate:
//!
//! ```text
//! sum(payloads_sent) == sum(delivered - published) + sum(duplicates_received)
//! ```

use wsg_gossip::{
    DeliveredMessage, EngineStats, GossipConfig, GossipEngine, GossipParams, GossipStyle, MsgId,
};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{LatencyModel, NodeId, SimDuration, SimTime};

type Net = SimNet<GossipEngine<u64>>;

fn build(n: usize, config: GossipConfig, sim: SimConfig) -> Net {
    let mut net = SimNet::new(sim);
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::new(config.clone(), peers)
    });
    net.start();
    net
}

fn publish(net: &mut Net, node: NodeId, value: u64) -> MsgId {
    let mut out = None;
    net.invoke(node, |engine, ctx| {
        out = Some(engine.publish(value, ctx));
    });
    out.expect("publish ran")
}

fn totals(net: &Net, n: usize) -> (EngineStats, u64) {
    let mut merged = EngineStats::default();
    let mut delivered = 0u64;
    for i in 0..n {
        let engine = net.node(NodeId(i));
        merged.merge(engine.stats());
        delivered += engine.delivered().len() as u64;
    }
    (merged, delivered)
}

/// `payloads_sent == (delivered - published) + duplicates_received` on a
/// lossless network: every wire payload is accounted as exactly one
/// first sighting or exactly one duplicate, never both, never neither.
fn assert_conservation(stats: &EngineStats, delivered: u64, context: &str) {
    assert_eq!(
        stats.payloads_sent,
        (delivered - stats.published) + stats.duplicates_received,
        "payload conservation violated for {context}: {stats:?}, delivered={delivered}"
    );
}

#[test]
fn eager_push_counts_each_duplicate_receipt_exactly_once() {
    // Full mesh of 3, fanout 2, rounds 2: peer selection always picks
    // "everyone else", so the traffic pattern is exact. Constant latency
    // makes both round-1 copies the first sightings (random latency
    // could let a round-2 forward outrun an original, changing whose
    // budget is spent). One publish at node 0 sends 2 copies; both
    // receivers forward to both other nodes (4 more copies). 6 payloads,
    // 2 first remote sightings, 4 duplicates.
    let config = GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(2, 2));
    let sim = SimConfig::default().seed(7).latency(LatencyModel::constant_millis(5));
    let mut net = build(3, config, sim);
    publish(&mut net, NodeId(0), 42);
    net.run_to_quiescence();

    let (stats, delivered) = totals(&net, 3);
    assert_eq!(delivered, 3, "each node delivers the message exactly once");
    assert_eq!(stats.published, 1);
    assert_eq!(stats.payloads_sent, 6);
    assert_eq!(stats.duplicates_received, 4);
    assert_conservation(&stats, delivered, "eager push full mesh");
}

#[test]
fn push_styles_conserve_payload_accounting_at_quiescence() {
    for style in [GossipStyle::EagerPush, GossipStyle::LazyPush] {
        let config = GossipConfig::new(style, GossipParams::new(3, 6));
        let mut net = build(8, config, SimConfig::default().seed(11));
        publish(&mut net, NodeId(0), 1);
        publish(&mut net, NodeId(3), 2);
        net.run_to_quiescence();

        let (stats, delivered) = totals(&net, 8);
        assert_eq!(stats.published, 2);
        assert!(delivered > 2, "epidemic spread beyond the publishers ({style})");
        assert_conservation(&stats, delivered, &style.to_string());
    }
}

#[test]
fn periodic_styles_conserve_payload_accounting_modulo_in_flight() {
    for style in [GossipStyle::Pull, GossipStyle::PushPull, GossipStyle::AntiEntropy] {
        let config = GossipConfig::new(style, GossipParams::new(3, 6));
        let mut net = build(6, config, SimConfig::default().seed(13));
        publish(&mut net, NodeId(0), 9);
        net.run_until(SimTime::ZERO + SimDuration::from_millis(2000));

        let (stats, delivered) = totals(&net, 6);
        assert_eq!(delivered, 6, "2 s of ticks saturate 6 nodes ({style})");
        // The periodic tick never stops, so the deadline can strand sent
        // payloads in flight: sends may exceed accounted receipts, never
        // the other way around.
        assert!(
            stats.payloads_sent >= (delivered - stats.published) + stats.duplicates_received,
            "more receipts than sends for {style}: {stats:?}, delivered={delivered}"
        );
    }
}

#[test]
fn pull_peers_with_nothing_to_offer_send_no_response() {
    // Nothing is ever published: every digest matches, so every
    // PullRequest must be answered with silence, not an empty response.
    let config = GossipConfig::new(GossipStyle::Pull, GossipParams::new(2, 4));
    let mut net = build(4, config, SimConfig::default().seed(3));
    net.run_until(SimTime::ZERO + SimDuration::from_millis(1500));

    let (stats, delivered) = totals(&net, 4);
    assert!(stats.pull_requests_sent > 0, "ticks fired: {stats:?}");
    assert_eq!(stats.pull_responses_sent, 0, "no content, no responses");
    assert_eq!(stats.payloads_sent, 0);
    assert_eq!(delivered, 0);

    // Once one node has content, responses start flowing — and every
    // response carries at least one payload.
    publish(&mut net, NodeId(0), 5);
    net.run_until(SimTime::ZERO + SimDuration::from_millis(3000));
    let (stats, _) = totals(&net, 4);
    assert!(stats.pull_responses_sent > 0);
    assert!(stats.payloads_sent >= stats.pull_responses_sent);
}

#[test]
fn lossless_lazy_push_sends_one_iwant_per_node_per_message() {
    // Full mesh, fanout = n-1: every node advertises to everyone, so most
    // nodes see several IHaves for the same id. Only the first sighting
    // may trigger an IWant; later advertisers are merely remembered, and
    // the retry timer finds nothing pending on a lossless network.
    let n = 5;
    let config = GossipConfig::new(GossipStyle::LazyPush, GossipParams::new(n - 1, 4));
    let mut net = build(n, config, SimConfig::default().seed(21));
    publish(&mut net, NodeId(0), 77);
    net.run_to_quiescence();

    for i in 0..n {
        let engine = net.node(NodeId(i));
        let expected = u64::from(i != 0); // the publisher never wants its own payload
        assert_eq!(
            engine.stats().iwant_sent,
            expected,
            "node {i} re-requested a payload that was never lost: {:?}",
            engine.stats()
        );
    }
}

#[test]
fn lazy_push_retries_fire_only_under_loss_and_recover_coverage() {
    let params = GossipParams::new(3, 6);
    let lossy = || SimConfig::default().seed(17).drop_probability(0.4);
    let delivered_count = |net: &Net, n: usize| {
        (0..n).filter(|i| !net.node(NodeId(*i)).delivered().is_empty()).count()
    };

    // Same seed, same loss pattern — the only difference is the retry
    // fallback. Retries must issue strictly more IWants and deliver to
    // at least as many nodes.
    let mut with_retry = build(10, GossipConfig::new(GossipStyle::LazyPush, params.clone()), lossy());
    publish(&mut with_retry, NodeId(0), 4);
    with_retry.run_to_quiescence();

    let mut without_retry = build(
        10,
        GossipConfig::new(GossipStyle::LazyPush, params).without_retry(),
        lossy(),
    );
    publish(&mut without_retry, NodeId(0), 4);
    without_retry.run_to_quiescence();

    let (retry_stats, _) = totals(&with_retry, 10);
    let (plain_stats, _) = totals(&without_retry, 10);
    assert!(
        retry_stats.iwant_sent > plain_stats.iwant_sent,
        "loss must make the retry path re-request: retry={retry_stats:?} plain={plain_stats:?}"
    );
    assert!(delivered_count(&with_retry, 10) >= delivered_count(&without_retry, 10));
}

#[test]
fn delivery_rounds_histogram_records_every_delivery_once() {
    let config = GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(3, 6));
    let mut net = build(8, config, SimConfig::default().seed(5));
    publish(&mut net, NodeId(0), 8);
    net.run_to_quiescence();

    for i in 0..8 {
        let engine = net.node(NodeId(i));
        let hist = &engine.stats().delivery_rounds;
        assert_eq!(
            hist.len(),
            engine.delivered().len() as u64,
            "one histogram observation per delivery at node {i}"
        );
        for DeliveredMessage { round, .. } in engine.delivered() {
            assert!(u64::from(*round) <= hist.max());
        }
    }
    // The publisher delivers locally at round 0.
    assert_eq!(net.node(NodeId(0)).stats().delivery_rounds.min(), 0);
}
