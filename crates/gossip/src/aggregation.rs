//! Gossip-based aggregation (push-sum).
//!
//! The paper's conclusion (§4) positions WS-Gossip as "suitable for
//! multiple application scenarios", and the authors' follow-up work adds
//! an *aggregation* gossip service beside push/pull dissemination. This
//! module implements the canonical protocol for it: **push-sum**
//! (Kempe, Dobra & Gehrke, FOCS'03).
//!
//! Every node holds a `(sum, weight)` pair, initialised to `(value, 1)`.
//! Each tick it keeps half of both and sends the other half to one random
//! peer; received shares are added in. The local estimate `sum/weight`
//! converges exponentially fast to the global average at every node, and
//! the invariants are crisp: total sum and total weight are conserved by
//! every exchange (mass conservation).

use wsg_net::{Context, NodeId, Protocol, RngExt, SimDuration, TimerTag};

/// Timer tag for the periodic aggregation tick.
pub const AGGREGATE_TICK: TimerTag = TimerTag(0xA66);

/// Wire message: a (sum, weight) share.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumShare {
    /// Sum share.
    pub sum: f64,
    /// Weight share.
    pub weight: f64,
}

/// A push-sum aggregation node.
///
/// ```
/// use wsg_gossip::aggregation::PushSum;
/// use wsg_net::sim::{SimNet, SimConfig};
/// use wsg_net::{NodeId, SimTime, SimDuration};
///
/// let n = 16;
/// let mut net = SimNet::new(SimConfig::default().seed(5));
/// net.add_nodes(n, |id| {
///     let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
///     PushSum::new(id.index() as f64, peers, SimDuration::from_millis(50))
/// });
/// net.start();
/// net.run_until(SimTime::from_secs(5));
/// let expected = (0..n).sum::<usize>() as f64 / n as f64;
/// for id in net.node_ids() {
///     assert!((net.node(id).estimate() - expected).abs() < 0.01);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PushSum {
    sum: f64,
    weight: f64,
    peers: Vec<NodeId>,
    interval: SimDuration,
    exchanges: u64,
}

impl PushSum {
    /// A node contributing `value` to the average, gossiping with `peers`
    /// every `interval`.
    pub fn new(value: f64, peers: Vec<NodeId>, interval: SimDuration) -> Self {
        PushSum { sum: value, weight: 1.0, peers, interval, exchanges: 0 }
    }

    /// The current estimate of the global average.
    pub fn estimate(&self) -> f64 {
        if self.weight <= f64::MIN_POSITIVE {
            0.0
        } else {
            self.sum / self.weight
        }
    }

    /// Current (sum, weight) mass held locally — conserved globally.
    pub fn mass(&self) -> (f64, f64) {
        (self.sum, self.weight)
    }

    /// Number of shares sent.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Update the local input value (e.g. a fresh sensor reading): adjust
    /// the held sum so the global aggregate tracks the new inputs.
    pub fn update_value(&mut self, delta: f64) {
        self.sum += delta;
    }

    /// Replace the peer view (membership-driven deployments).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    fn arm(&self, ctx: &mut dyn Context<PushSumShare>) {
        let base = self.interval.as_micros();
        let jitter = base / 4;
        let delay =
            SimDuration::from_micros(ctx.rng().gen_range(base - jitter..=base + jitter));
        ctx.set_timer(delay, AGGREGATE_TICK);
    }
}

impl Protocol for PushSum {
    type Message = PushSumShare;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        self.arm(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, _ctx: &mut dyn Context<Self::Message>) {
        self.sum += msg.sum;
        self.weight += msg.weight;
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag != AGGREGATE_TICK {
            return;
        }
        if let Some(&peer) = ctx.rng().choose(&self.peers) {
            // Keep half, push half.
            self.sum /= 2.0;
            self.weight /= 2.0;
            self.exchanges += 1;
            ctx.send(peer, PushSumShare { sum: self.sum, weight: self.weight });
        }
        self.arm(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::SimTime;

    fn build(values: &[f64], seed: u64) -> SimNet<PushSum> {
        let n = values.len();
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        for (i, &v) in values.iter().enumerate() {
            let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
            net.add_node(PushSum::new(v, peers, SimDuration::from_millis(50)));
        }
        net.start();
        net
    }

    #[test]
    fn converges_to_the_average_everywhere() {
        let values: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let expected = values.iter().sum::<f64>() / values.len() as f64;
        let mut net = build(&values, 1);
        net.run_until(SimTime::from_secs(10));
        for id in net.node_ids() {
            let estimate = net.node(id).estimate();
            assert!(
                (estimate - expected).abs() / expected < 1e-6,
                "{id}: {estimate} vs {expected}"
            );
        }
    }

    /// Mass conservation: at any instant, (held sums) + (in-flight sums)
    /// equals the initial total. We check at quiescence points where
    /// nothing is in flight.
    #[test]
    fn mass_is_conserved() {
        let values = [3.0, 5.0, 7.0, 11.0, 13.0];
        let total: f64 = values.iter().sum();
        let mut net = build(&values, 2);
        // run_until leaves messages in flight, so step to moments where
        // the queue only holds timers... simplest: check at a long horizon
        // with ticks frozen by examining sums + pending is hard; instead
        // exploit determinism: after every full quiesce of message events,
        // total held mass must equal the initial total.
        net.run_until(SimTime::from_secs(3));
        // Drain in-flight deliveries without letting new ticks fire by
        // advancing a hair beyond the last delivery.
        net.run_until(net.now() + wsg_net::SimDuration::from_micros(1));
        let held: f64 = net.node_ids().iter().map(|id| net.node(*id).mass().0).sum();
        // In-flight shares exist (ticks keep firing), so held <= total;
        // the deficit must be non-negative and bounded by what one tick
        // round can put in flight (each node sends at most half its mass).
        assert!(held <= total + 1e-9, "mass created from nothing: {held} > {total}");
        assert!(held >= total * 0.4, "more than max possible mass in flight: {held}");
    }

    #[test]
    fn weight_conservation_keeps_estimates_sane() {
        let values = [100.0, 0.0, 0.0, 0.0];
        let mut net = build(&values, 3);
        net.run_until(SimTime::from_secs(10));
        for id in net.node_ids() {
            let estimate = net.node(id).estimate();
            assert!((0.0..=100.0).contains(&estimate), "estimate {estimate} out of hull");
            assert!((estimate - 25.0).abs() < 0.01, "estimate {estimate}");
        }
    }

    #[test]
    fn update_value_shifts_the_aggregate() {
        let values = [1.0, 1.0, 1.0, 1.0];
        let mut net = build(&values, 4);
        net.run_until(SimTime::from_secs(3));
        // One sensor jumps by +8: the average should move to 3.0.
        net.node_mut(NodeId(0)).update_value(8.0);
        net.run_until(SimTime::from_secs(15));
        for id in net.node_ids() {
            assert!((net.node(id).estimate() - 3.0).abs() < 0.01);
        }
    }

    #[test]
    fn lonely_node_estimates_its_own_value() {
        let mut net = build(&[42.0], 5);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.node(NodeId(0)).estimate(), 42.0);
    }

    #[test]
    fn convergence_is_exponential_ish() {
        // Max deviation after t seconds shrinks by a large factor each
        // doubling of time.
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let expected = values.iter().sum::<f64>() / 64.0;
        let deviation_at = |secs: u64| -> f64 {
            let mut net = build(&values, 6);
            net.run_until(SimTime::from_secs(secs));
            net.node_ids()
                .iter()
                .map(|id| (net.node(*id).estimate() - expected).abs())
                .fold(0.0, f64::max)
        };
        let early = deviation_at(2);
        let late = deviation_at(8);
        assert!(late < early / 10.0, "early {early}, late {late}");
    }
}
