//! # wsg-gossip — the epidemic dissemination engine
//!
//! Implements the protocol family the WS-Gossip paper builds its
//! coordination framework on (§2), "encompassing different gossip styles"
//! (§4):
//!
//! * **eager push** — forward the payload to `fanout` random peers on first
//!   receipt, up to `rounds` hops (the paper's WS-PushGossip);
//! * **lazy push** — advertise message ids (`IHAVE`), send payloads only on
//!   request (`IWANT`), trading latency for redundancy;
//! * **pull** — periodically ask random peers what they have seen that we
//!   have not;
//! * **push-pull** — eager push for speed plus periodic pull to close gaps;
//! * **anti-entropy** — periodic digest reconciliation converging replicas
//!   even after arbitrary loss.
//!
//! [`GossipEngine`] is a [`wsg_net::Protocol`]: it runs unchanged on the
//! deterministic simulator and the thread runtime. [`analysis`] provides
//! the Eugster et al. mean-field configuration maths the paper cites for
//! choosing `fanout` and `rounds`.
//!
//! ## Example
//!
//! ```
//! use wsg_gossip::{GossipEngine, GossipConfig, GossipStyle, GossipParams};
//! use wsg_net::{sim::{SimNet, SimConfig}, NodeId};
//!
//! let n = 32;
//! let params = GossipParams::atomic_for(n);
//! let mut net = SimNet::new(SimConfig::default().seed(1));
//! net.add_nodes(n, |id| {
//!     let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
//!     GossipEngine::<String>::new(GossipConfig::new(GossipStyle::EagerPush, params.clone()), peers)
//! });
//! net.start();
//! net.invoke(NodeId(0), |engine, ctx| {
//!     engine.publish("hello".to_string(), ctx);
//! });
//! net.run_to_quiescence();
//! let reached = (0..n).filter(|i| !net.node(NodeId(*i)).delivered().is_empty()).count();
//! assert_eq!(reached, n);
//! ```

pub mod aggregation;
pub mod analysis;
pub mod buffer;
pub mod engine;
pub mod order;
pub mod params;

pub use aggregation::{PushSum, PushSumShare};
pub use buffer::{Digest, MessageBuffer, MsgId};
pub use engine::{DeliveredMessage, EngineStats, GossipConfig, GossipEngine, GossipMessage};
pub use order::FifoBuffer;
pub use params::{ForwardDiscipline, GossipParams, GossipStyle};
