//! Per-origin FIFO delivery ordering.
//!
//! Gossip delivers in arrival order, which across concurrent paths is not
//! publication order. Middleware consumers of a market feed (the paper's
//! motivating scenario) usually need *per-origin FIFO*: tick 7 from an
//! origin must not be observed before tick 6. [`FifoBuffer`] provides the
//! standard solution — hold out-of-order messages until the gap fills.

use std::collections::BTreeMap;

use wsg_net::NodeId;

use crate::buffer::MsgId;

/// Reorders deliveries into per-origin sequence order.
///
/// ```
/// use wsg_gossip::order::FifoBuffer;
/// use wsg_gossip::MsgId;
/// use wsg_net::NodeId;
///
/// let mut fifo = FifoBuffer::new();
/// let origin = NodeId(1);
/// assert!(fifo.accept(MsgId::new(origin, 1), "b").is_empty()); // held: gap at 0
/// let released = fifo.accept(MsgId::new(origin, 0), "a");
/// assert_eq!(released, vec![(MsgId::new(origin, 0), "a"), (MsgId::new(origin, 1), "b")]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoBuffer<T> {
    // origin -> next expected seq
    next: BTreeMap<NodeId, u64>,
    // origin -> held out-of-order messages
    held: BTreeMap<NodeId, BTreeMap<u64, T>>,
}

impl<T> FifoBuffer<T> {
    /// An empty buffer (every origin starts at seq 0).
    pub fn new() -> Self {
        FifoBuffer { next: BTreeMap::new(), held: BTreeMap::new() }
    }

    /// Offer a message; returns everything now releasable in order.
    /// Duplicates and already-released seqs return nothing.
    pub fn accept(&mut self, id: MsgId, payload: T) -> Vec<(MsgId, T)> {
        let origin = id.origin();
        let next = self.next.entry(origin).or_insert(0);
        if id.seq() < *next {
            return Vec::new(); // stale duplicate
        }
        let held = self.held.entry(origin).or_default();
        if held.contains_key(&id.seq()) {
            return Vec::new(); // duplicate of a held message
        }
        held.insert(id.seq(), payload);
        // Release the contiguous prefix.
        let mut released = Vec::new();
        while let Some(payload) = held.remove(next) {
            released.push((MsgId::new(origin, *next), payload));
            *next += 1;
        }
        released
    }

    /// Number of messages currently held back (all origins).
    pub fn held_count(&self) -> usize {
        self.held.values().map(BTreeMap::len).sum()
    }

    /// Next expected sequence number for `origin`.
    pub fn next_seq(&self, origin: NodeId) -> u64 {
        self.next.get(&origin).copied().unwrap_or(0)
    }

    /// Skip ahead for `origin` (e.g. after deciding a gap is permanent —
    /// a paid message loss). Releases whatever becomes contiguous.
    pub fn skip_to(&mut self, origin: NodeId, seq: u64) -> Vec<(MsgId, T)> {
        let next = self.next.entry(origin).or_insert(0);
        if seq <= *next {
            return Vec::new();
        }
        let held = self.held.entry(origin).or_default();
        // Drop anything below the new floor.
        *held = held.split_off(&seq);
        *next = seq;
        let mut released = Vec::new();
        while let Some(payload) = held.remove(next) {
            released.push((MsgId::new(origin, *next), payload));
            *next += 1;
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(origin: usize, seq: u64) -> MsgId {
        MsgId::new(NodeId(origin), seq)
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut fifo = FifoBuffer::new();
        for seq in 0..5 {
            let out = fifo.accept(id(0, seq), seq);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0.seq(), seq);
        }
        assert_eq!(fifo.held_count(), 0);
    }

    #[test]
    fn reordering_is_corrected() {
        let mut fifo = FifoBuffer::new();
        assert!(fifo.accept(id(0, 2), "c").is_empty());
        assert!(fifo.accept(id(0, 1), "b").is_empty());
        assert_eq!(fifo.held_count(), 2);
        let out = fifo.accept(id(0, 0), "a");
        let seqs: Vec<u64> = out.iter().map(|(i, _)| i.seq()).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert_eq!(fifo.held_count(), 0);
    }

    #[test]
    fn origins_are_independent() {
        let mut fifo = FifoBuffer::new();
        assert_eq!(fifo.accept(id(0, 0), "a0").len(), 1);
        assert!(fifo.accept(id(1, 1), "b1").is_empty(), "origin 1 still at 0");
        assert_eq!(fifo.accept(id(1, 0), "b0").len(), 2);
    }

    #[test]
    fn duplicates_ignored() {
        let mut fifo = FifoBuffer::new();
        assert_eq!(fifo.accept(id(0, 0), "a").len(), 1);
        assert!(fifo.accept(id(0, 0), "a").is_empty(), "released duplicate");
        assert!(fifo.accept(id(0, 2), "c").is_empty());
        assert!(fifo.accept(id(0, 2), "c").is_empty(), "held duplicate");
    }

    #[test]
    fn skip_to_unblocks_after_permanent_loss() {
        let mut fifo = FifoBuffer::new();
        assert!(fifo.accept(id(0, 5), "f").is_empty());
        assert!(fifo.accept(id(0, 6), "g").is_empty());
        // seq 0..=4 declared lost:
        let out = fifo.skip_to(NodeId(0), 5);
        let seqs: Vec<u64> = out.iter().map(|(i, _)| i.seq()).collect();
        assert_eq!(seqs, [5, 6]);
        assert_eq!(fifo.next_seq(NodeId(0)), 7);
    }

    #[test]
    fn skip_backwards_is_a_no_op() {
        let mut fifo = FifoBuffer::new();
        fifo.accept(id(0, 0), "a");
        assert!(fifo.skip_to(NodeId(0), 0).is_empty());
        assert_eq!(fifo.next_seq(NodeId(0)), 1);
    }
}
