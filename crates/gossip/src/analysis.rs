//! Analytic models for configuring `f` and `r`.
//!
//! The paper (§2) states that "parameters f and r can be configured
//! \[Eugster et al. 2004\] such that any desired average number of receivers
//! successfully get the message. Better yet, parameters can be set such
//! that the message is atomically delivered to receivers with high
//! probability." This module implements that configuration maths:
//!
//! * a **mean-field epidemic recurrence** predicting the expected fraction
//!   of nodes infected after each round (used by the coordinator to pick
//!   parameters and by experiment E2 as the analytic reference curve);
//! * the **atomicity estimate** from random-graph connectivity: with each
//!   node forwarding to `f = ln n + c` uniform targets, delivery is atomic
//!   with probability ≈ `exp(-exp(-c))`.

/// Expected fraction of nodes that have received the message after `rounds`
/// rounds of infect-and-die gossip with the given `fanout`, in a system of
/// `n` nodes, assuming a loss-free network.
///
/// Mean-field model: in each round, only nodes newly infected in the
/// previous round forward, each picking `fanout` targets uniformly at
/// random from the other `n - 1` nodes. A susceptible node escapes one
/// forwarder with probability `1 - fanout/(n-1)`.
///
/// ```
/// let coverage = wsg_gossip::analysis::expected_coverage(1000, 4, 10);
/// assert!(coverage > 0.95);
/// ```
pub fn expected_coverage(n: usize, fanout: usize, rounds: u32) -> f64 {
    expected_coverage_lossy(n, fanout, rounds, 0.0)
}

/// Like [`expected_coverage`], with each individual forward independently
/// lost with probability `loss`.
pub fn expected_coverage_lossy(n: usize, fanout: usize, rounds: u32, loss: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
    if n == 1 {
        return 1.0;
    }
    let n_f = n as f64;
    // Effective per-target infection attempts: a forward reaches its target
    // with probability (1 - loss).
    let effective_fanout = fanout as f64 * (1.0 - loss);
    let mut infected = 1.0_f64; // the initiator
    let mut fresh = 1.0_f64; // infected last round (the active forwarders)
    for _ in 0..rounds {
        if fresh < 1e-12 || infected >= n_f - 1e-9 {
            break;
        }
        let susceptible = n_f - infected;
        // Probability that one susceptible node is missed by every forward
        // of every fresh forwarder this round.
        let p_escape_one = 1.0 - effective_fanout / (n_f - 1.0);
        let p_escape = if p_escape_one <= 0.0 {
            0.0
        } else {
            p_escape_one.powf(fresh)
        };
        let newly = susceptible * (1.0 - p_escape);
        infected += newly;
        fresh = newly;
    }
    (infected / n_f).min(1.0)
}

/// Expected coverage for **infect-forever** gossip: every infected node
/// forwards `fanout` copies *each round* (not only the round it was
/// infected), so the forwarder pool is the whole infected set. Converges
/// to full coverage for any `fanout >= 1` given enough rounds — the
/// trade-off is ~`r·f·n` messages instead of `f·n`.
pub fn expected_coverage_forever(n: usize, fanout: usize, rounds: u32) -> f64 {
    assert!(n > 0, "n must be positive");
    if n == 1 {
        return 1.0;
    }
    let n_f = n as f64;
    let mut infected = 1.0_f64;
    for _ in 0..rounds {
        if infected >= n_f - 1e-9 {
            break;
        }
        let susceptible = n_f - infected;
        let p_escape_one = 1.0 - fanout as f64 / (n_f - 1.0);
        let p_escape = if p_escape_one <= 0.0 { 0.0 } else { p_escape_one.powf(infected) };
        infected += susceptible * (1.0 - p_escape);
    }
    (infected / n_f).min(1.0)
}

/// Probability that push gossip with per-node `fanout` infects the whole
/// system, from the Erdős–Rényi-style connectivity threshold used by
/// Eugster et al.: with `f = ln n + c`, `P(atomic) → exp(-exp(-c))`.
///
/// ```
/// let p = wsg_gossip::analysis::atomicity_probability(1000, 10);
/// assert!(p > 0.9);
/// ```
pub fn atomicity_probability(n: usize, fanout: usize) -> f64 {
    assert!(n > 1, "need at least two nodes");
    let c = fanout as f64 - (n as f64).ln();
    (-(-c).exp()).exp()
}

/// The smallest fanout achieving atomic delivery with probability at least
/// `target` in a system of `n` nodes.
///
/// # Panics
///
/// Panics unless `0 < target < 1`.
///
/// ```
/// let f = wsg_gossip::analysis::fanout_for_atomicity(1000, 0.99);
/// assert!((10..=14).contains(&f));
/// ```
pub fn fanout_for_atomicity(n: usize, target: f64) -> usize {
    assert!(n > 1, "need at least two nodes");
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    // Invert exp(-exp(-c)) >= target  =>  c >= -ln(-ln target).
    let c = -(-target.ln()).ln();
    ((n as f64).ln() + c).ceil().max(1.0) as usize
}

/// Expected number of rounds for the epidemic to cover (almost) the whole
/// system — the classic `O(log n)` dissemination-latency result. Computed
/// by iterating the mean-field recurrence until coverage reaches
/// `threshold` (e.g. 0.999) **or stops improving** (infect-and-die
/// epidemics saturate below 1.0 for small fanouts; the saturation round is
/// the meaningful latency then), with a hard cap to guarantee termination.
pub fn rounds_to_coverage(n: usize, fanout: usize, threshold: f64) -> u32 {
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
    let cap = 10 * (n as f64).log2().ceil().max(1.0) as u32 + 20;
    let mut previous = 0.0;
    for r in 1..=cap {
        let coverage = expected_coverage(n, fanout, r);
        if coverage >= threshold || coverage - previous < 1e-9 {
            return r;
        }
        previous = coverage;
    }
    cap
}

/// Expected total number of payload transmissions for infect-and-die push
/// gossip: every node that becomes infected forwards `fanout` copies
/// (except forwards suppressed by the round cap — ignored here, upper
/// bound), so ≈ `coverage · n · fanout`.
pub fn expected_messages(n: usize, fanout: usize, rounds: u32) -> f64 {
    expected_coverage(n, fanout, rounds) * n as f64 * fanout as f64
}

/// Redundancy ratio: payload transmissions per *useful* delivery. A
/// message to an already-infected node is redundant; ratio 1.0 would be a
/// perfect spanning tree.
pub fn expected_redundancy(n: usize, fanout: usize, rounds: u32) -> f64 {
    let coverage = expected_coverage(n, fanout, rounds);
    let deliveries = (coverage * n as f64 - 1.0).max(1.0);
    expected_messages(n, fanout, rounds) / deliveries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_monotone_in_fanout_and_rounds() {
        let n = 500;
        assert!(expected_coverage(n, 2, 6) < expected_coverage(n, 4, 6));
        assert!(expected_coverage(n, 3, 3) < expected_coverage(n, 3, 9));
    }

    #[test]
    fn coverage_bounds() {
        for &(n, f, r) in &[(10, 1, 1), (100, 3, 5), (1000, 8, 20)] {
            let c = expected_coverage(n, f, r);
            assert!((0.0..=1.0).contains(&c), "coverage {c} out of bounds");
            assert!(c >= 1.0 / n as f64, "initiator always counts");
        }
    }

    #[test]
    fn zero_rounds_means_only_initiator() {
        let c = expected_coverage(100, 3, 0);
        assert!((c - 0.01).abs() < 1e-9);
    }

    #[test]
    fn single_node_trivially_covered() {
        assert_eq!(expected_coverage(1, 3, 5), 1.0);
    }

    #[test]
    fn saturating_fanout_covers_in_one_round() {
        // fanout >= n-1 infects everyone immediately.
        let c = expected_coverage(10, 9, 1);
        assert!(c > 0.999, "coverage {c}");
    }

    #[test]
    fn loss_reduces_coverage() {
        let clean = expected_coverage_lossy(1000, 4, 8, 0.0);
        let lossy = expected_coverage_lossy(1000, 4, 8, 0.4);
        assert!(lossy < clean);
    }

    #[test]
    fn atomicity_increases_with_fanout() {
        let n = 1000;
        let p_low = atomicity_probability(n, 5);
        let p_high = atomicity_probability(n, 12);
        assert!(p_high > p_low);
        assert!(p_high > 0.95);
    }

    #[test]
    fn fanout_for_atomicity_inverts_probability() {
        for &n in &[50, 500, 5000] {
            for &target in &[0.9, 0.99, 0.999] {
                let f = fanout_for_atomicity(n, target);
                assert!(
                    atomicity_probability(n, f) >= target,
                    "n={n} target={target} f={f}"
                );
                // And f-1 should not be enough (tightness), allowing the
                // ceil slack of one.
                if f > 2 {
                    assert!(atomicity_probability(n, f - 2) < target);
                }
            }
        }
    }

    #[test]
    fn rounds_grow_logarithmically() {
        let r_small = rounds_to_coverage(100, 4, 0.999);
        let r_big = rounds_to_coverage(100_000, 4, 0.999);
        assert!(r_big > r_small);
        // log-ish growth: 1000x nodes should cost far fewer than 1000x rounds.
        assert!(r_big < r_small * 6, "r_small={r_small} r_big={r_big}");
    }

    #[test]
    fn infect_forever_dominates_infect_and_die() {
        for &(n, f, r) in &[(100, 2, 8), (1000, 3, 10)] {
            let die = expected_coverage(n, f, r);
            let forever = expected_coverage_forever(n, f, r);
            assert!(forever >= die - 1e-12, "n={n} f={f} r={r}: {forever} < {die}");
        }
        // With enough rounds, infect-forever reaches everyone even at f=1.
        assert!(expected_coverage_forever(1000, 1, 60) > 0.999);
    }

    #[test]
    fn redundancy_grows_with_fanout() {
        let lean = expected_redundancy(1000, 3, 20);
        let fat = expected_redundancy(1000, 10, 20);
        assert!(fat > lean);
        assert!(lean >= 1.0);
    }
}
