//! The gossip protocol state machine.

use std::collections::BTreeMap;

use wsg_net::{Context, Histogram, NodeId, Protocol, RngExt, SimDuration, SimTime, TimerTag};

use crate::buffer::{Digest, MessageBuffer, MsgId};
use crate::params::{ForwardDiscipline, GossipParams, GossipStyle, DEFAULT_GOSSIP_INTERVAL};

/// Timer tag used for the periodic gossip tick.
pub const TICK: TimerTag = TimerTag(0xA11CE);

/// Timer tag used to retry outstanding lazy-push payload requests.
pub const RETRY: TimerTag = TimerTag(0x3E782);

/// Timer tag driving the infect-forever per-round re-forwarding.
pub const FOREVER: TimerTag = TimerTag(0xF03E);

/// Configuration of one [`GossipEngine`].
#[derive(Debug, Clone)]
pub struct GossipConfig {
    style: GossipStyle,
    params: GossipParams,
    interval: SimDuration,
    buffer_capacity: usize,
    retry_enabled: bool,
    jitter_enabled: bool,
    discipline: ForwardDiscipline,
}

impl GossipConfig {
    /// A configuration with default interval (100 ms) and buffer (1024
    /// payloads).
    pub fn new(style: GossipStyle, params: GossipParams) -> Self {
        GossipConfig {
            style,
            params,
            interval: DEFAULT_GOSSIP_INTERVAL,
            buffer_capacity: 1024,
            retry_enabled: true,
            jitter_enabled: true,
            discipline: ForwardDiscipline::InfectAndDie,
        }
    }

    /// Builder: set the periodic gossip interval (pull-flavoured styles).
    pub fn interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Builder: set the payload buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn buffer_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        self.buffer_capacity = capacity;
        self
    }

    /// Builder: disable the lazy-push retry fallback (ablation A1: without
    /// it, a lost `IWANT`/payload stalls the message at that node forever).
    pub fn without_retry(mut self) -> Self {
        self.retry_enabled = false;
        self
    }

    /// Builder: disable periodic-tick jitter (ablation A2: synchronized
    /// ticks create load bursts; jitter spreads them).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_enabled = false;
        self
    }

    /// Builder: set the forwarding discipline (default: infect-and-die).
    pub fn discipline(mut self, discipline: ForwardDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// The gossip style.
    pub fn style(&self) -> GossipStyle {
        self.style
    }

    /// The `f`/`r` parameters.
    pub fn params(&self) -> &GossipParams {
        &self.params
    }
}

/// Wire messages exchanged by gossip engines.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMessage<T> {
    /// A full payload, pushed eagerly or in answer to an `IWant`.
    Push {
        /// Message identity.
        id: MsgId,
        /// Hop count: 0 at the initiator, incremented per forward.
        round: u32,
        /// Application payload.
        payload: T,
    },
    /// Lazy-push advertisement of message ids (with their hop counts).
    IHave {
        /// Advertised (id, round) pairs.
        ids: Vec<(MsgId, u32)>,
    },
    /// Request for the payloads of advertised ids.
    IWant {
        /// Requested ids.
        ids: Vec<MsgId>,
    },
    /// Periodic pull: "here is everything I have seen — send me the rest".
    PullRequest {
        /// The requester's digest.
        digest: Digest,
    },
    /// Messages the requester was missing.
    PullResponse {
        /// `(id, round, payload)` triples.
        messages: Vec<(MsgId, u32, T)>,
    },
}

/// A message delivered to the application layer, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredMessage<T> {
    /// Message identity.
    pub id: MsgId,
    /// Hop count at delivery (0 = delivered at the initiator).
    pub round: u32,
    /// Virtual time of delivery.
    pub at: SimTime,
    /// The payload.
    pub payload: T,
}

/// Counters for protocol-overhead analysis (experiment E7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages published locally.
    pub published: u64,
    /// Full payloads sent (eager pushes + IWant answers + pull responses).
    pub payloads_sent: u64,
    /// IHave advertisements sent.
    pub ihave_sent: u64,
    /// IWant requests sent.
    pub iwant_sent: u64,
    /// Pull requests sent.
    pub pull_requests_sent: u64,
    /// Pull responses sent (possibly empty ones are not sent/counted).
    pub pull_responses_sent: u64,
    /// Payload receipts that were duplicates of something already seen.
    pub duplicates_received: u64,
    /// Hop counts at delivery (round stamped on each first receipt) —
    /// the per-style latency distribution in rounds. Purely a function
    /// of the deterministic run, so recording it cannot perturb replay.
    pub delivery_rounds: Histogram,
}

impl EngineStats {
    /// Merge another engine's counters into this one (for aggregating a
    /// whole network's overhead before exporting it).
    pub fn merge(&mut self, other: &EngineStats) {
        self.published += other.published;
        self.payloads_sent += other.payloads_sent;
        self.ihave_sent += other.ihave_sent;
        self.iwant_sent += other.iwant_sent;
        self.pull_requests_sent += other.pull_requests_sent;
        self.pull_responses_sent += other.pull_responses_sent;
        self.duplicates_received += other.duplicates_received;
        self.delivery_rounds.merge(&other.delivery_rounds);
    }

    /// Export a snapshot into `registry` under the `wsg_gossip_*`
    /// families, labeled with the gossip `style` (use
    /// [`GossipStyle::label`]). Counters are `set`, not added: calling
    /// again with a newer snapshot of the same monotone source keeps
    /// the exposition monotone.
    pub fn export(&self, registry: &wsg_obs::Registry, style: &str) {
        let counters: [(&str, &str, u64); 7] = [
            ("wsg_gossip_published_total", "Messages published locally.", self.published),
            (
                "wsg_gossip_payloads_sent_total",
                "Full payloads sent (eager pushes, IWant answers, pull responses).",
                self.payloads_sent,
            ),
            ("wsg_gossip_ihave_sent_total", "IHave advertisements sent.", self.ihave_sent),
            ("wsg_gossip_iwant_sent_total", "IWant requests sent.", self.iwant_sent),
            ("wsg_gossip_pull_requests_sent_total", "Pull requests sent.", self.pull_requests_sent),
            (
                "wsg_gossip_pull_responses_sent_total",
                "Non-empty pull responses sent.",
                self.pull_responses_sent,
            ),
            (
                "wsg_gossip_duplicates_received_total",
                "Payload receipts already seen.",
                self.duplicates_received,
            ),
        ];
        for (name, help, value) in counters {
            registry.register_counter_family(name, help, &["style"]).with(&[style]).set(value);
        }
        registry
            .register_histogram_family(
                "wsg_gossip_delivery_rounds",
                "Hop count at first delivery, per gossip style.",
                &["style"],
            )
            .with(&[style])
            .set_snapshot(&self.delivery_rounds);
    }
}

/// The engine: implements every [`GossipStyle`] behind one
/// [`wsg_net::Protocol`] implementation.
///
/// Applications publish via [`GossipEngine::publish`] (requires a live
/// [`Context`], e.g. through `SimNet::invoke`) and read what epidemics
/// delivered via [`GossipEngine::delivered`].
#[derive(Debug, Clone)]
pub struct GossipEngine<T> {
    config: GossipConfig,
    peers: Vec<NodeId>,
    buffer: MessageBuffer<T>,
    delivered: Vec<DeliveredMessage<T>>,
    next_seq: u64,
    // Lazy push: ids requested but not yet received — known advertisers
    // plus how many retry attempts have been spent.
    pending: BTreeMap<MsgId, (Vec<NodeId>, u32)>,
    // Infect-forever: per-message re-forwarding schedule —
    // (remaining forwards, hop count to stamp on the next copies).
    forever_schedule: BTreeMap<MsgId, (u32, u32)>,
    forever_armed: bool,
    retry_armed: bool,
    stats: EngineStats,
}

impl<T: Clone> GossipEngine<T> {
    /// An engine gossiping with the given static peer view (the node's own
    /// id must not be in `peers`). Dynamic membership layers on top via
    /// [`GossipEngine::set_peers`].
    pub fn new(config: GossipConfig, peers: Vec<NodeId>) -> Self {
        let buffer = MessageBuffer::new(config.buffer_capacity);
        GossipEngine {
            config,
            peers,
            buffer,
            delivered: Vec::new(),
            next_seq: 0,
            pending: BTreeMap::new(),
            forever_schedule: BTreeMap::new(),
            forever_armed: false,
            retry_armed: false,
            stats: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Messages delivered to the application so far, in delivery order.
    pub fn delivered(&self) -> &[DeliveredMessage<T>] {
        &self.delivered
    }

    /// Drain delivered messages (the application has consumed them).
    pub fn take_delivered(&mut self) -> Vec<DeliveredMessage<T>> {
        std::mem::take(&mut self.delivered)
    }

    /// Protocol counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Replace the peer view (driven by a membership service).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// Current peer view.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Publish a new message from this node; returns its identity. The
    /// message is delivered locally and disseminated per the configured
    /// style.
    pub fn publish(
        &mut self,
        payload: T,
        ctx: &mut dyn Context<GossipMessage<T>>,
    ) -> MsgId {
        let id = MsgId::new(ctx.self_id(), self.next_seq);
        self.next_seq += 1;
        self.stats.published += 1;
        self.accept(id, 0, payload, ctx);
        id
    }

    /// Pick up to `fanout` distinct random peers.
    fn select_peers(&self, ctx: &mut dyn Context<GossipMessage<T>>) -> Vec<NodeId> {
        let fanout = self.config.params.fanout().min(self.peers.len());
        let mut pool = self.peers.clone();
        ctx.rng().shuffle(&mut pool);
        pool.truncate(fanout);
        pool
    }

    /// First-sighting handling: record, deliver, propagate.
    fn accept(
        &mut self,
        id: MsgId,
        round: u32,
        payload: T,
        ctx: &mut dyn Context<GossipMessage<T>>,
    ) -> bool {
        if !self.buffer.insert(id, round, payload.clone()) {
            self.stats.duplicates_received += 1;
            return false;
        }
        self.pending.remove(&id);
        self.delivered.push(DeliveredMessage { id, round, at: ctx.now(), payload: payload.clone() });
        self.stats.delivery_rounds.record(round as u64);

        if round >= self.config.params.rounds() {
            return true; // round budget exhausted: deliver but do not forward
        }
        match self.config.style {
            GossipStyle::EagerPush | GossipStyle::PushPull => {
                // Infect-forever: keep re-forwarding every interval while
                // the budget lasts (classic round-based epidemics; total
                // traffic bounded by n·f·r).
                if self.config.discipline == ForwardDiscipline::InfectForever {
                    let remaining = self.config.params.rounds() - round;
                    if remaining > 1 {
                        self.forever_schedule.insert(id, (remaining - 1, round + 2));
                        if !self.forever_armed {
                            self.forever_armed = true;
                            ctx.set_timer(self.config.interval, FOREVER);
                        }
                    }
                }
                for peer in self.select_peers(ctx) {
                    self.stats.payloads_sent += 1;
                    ctx.send(peer, GossipMessage::Push { id, round: round + 1, payload: payload.clone() });
                }
            }
            GossipStyle::LazyPush => {
                for peer in self.select_peers(ctx) {
                    self.stats.ihave_sent += 1;
                    ctx.send(peer, GossipMessage::IHave { ids: vec![(id, round)] });
                }
            }
            GossipStyle::Pull | GossipStyle::AntiEntropy => {
                // Propagation happens on the periodic tick.
            }
        }
        true
    }

    fn arm_tick(&self, ctx: &mut dyn Context<GossipMessage<T>>) {
        // ±25% deterministic jitter desynchronises the ticks across nodes.
        let base = self.config.interval.as_micros();
        let jitter = if self.config.jitter_enabled { base / 4 } else { 0 };
        let delay = if jitter > 0 {
            SimDuration::from_micros(ctx.rng().gen_range(base - jitter..=base + jitter))
        } else {
            self.config.interval
        };
        ctx.set_timer(delay, TICK);
    }
}

impl<T: Clone> Protocol for GossipEngine<T> {
    type Message = GossipMessage<T>;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        if self.config.style.is_periodic() {
            self.arm_tick(ctx);
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut dyn Context<Self::Message>,
    ) {
        match msg {
            GossipMessage::Push { id, round, payload } => {
                self.accept(id, round, payload, ctx);
            }
            GossipMessage::IHave { ids } => {
                // Request each unseen id from the *first* advertiser only;
                // every advertiser is remembered so the retry timer can
                // re-request if the payload never arrives.
                let mut wanted = Vec::new();
                for (id, _) in &ids {
                    if self.buffer.seen(id) {
                        continue;
                    }
                    match self.pending.get_mut(id) {
                        Some((advertisers, _)) => {
                            if !advertisers.contains(&from) {
                                advertisers.push(from);
                            }
                        }
                        None => {
                            self.pending.insert(*id, (vec![from], 0));
                            wanted.push(*id);
                        }
                    }
                }
                if !wanted.is_empty() {
                    self.stats.iwant_sent += 1;
                    ctx.send(from, GossipMessage::IWant { ids: wanted });
                    if self.config.retry_enabled && !self.retry_armed {
                        self.retry_armed = true;
                        ctx.set_timer(self.config.interval, RETRY);
                    }
                }
            }
            GossipMessage::IWant { ids } => {
                for id in ids {
                    if let Some((round, payload)) = self.buffer.get(&id) {
                        let payload = payload.clone();
                        self.stats.payloads_sent += 1;
                        ctx.send(from, GossipMessage::Push { id, round: round + 1, payload });
                    }
                }
            }
            GossipMessage::PullRequest { digest } => {
                // Send what they lack (and still retained).
                let missing = self.buffer.digest().missing_from(&digest);
                let messages: Vec<(MsgId, u32, T)> = missing
                    .into_iter()
                    .filter_map(|id| {
                        self.buffer
                            .get(&id)
                            .map(|(round, payload)| (id, round + 1, payload.clone()))
                    })
                    .collect();
                if !messages.is_empty() {
                    self.stats.pull_responses_sent += 1;
                    self.stats.payloads_sent += messages.len() as u64;
                    ctx.send(from, GossipMessage::PullResponse { messages });
                }
                // Anti-entropy reconciles both directions in one exchange:
                // also ask for what *we* lack.
                if self.config.style == GossipStyle::AntiEntropy {
                    let we_lack = digest.missing_from(self.buffer.digest());
                    if !we_lack.is_empty() {
                        self.stats.iwant_sent += 1;
                        ctx.send(from, GossipMessage::IWant { ids: we_lack });
                    }
                }
            }
            GossipMessage::PullResponse { messages } => {
                for (id, round, payload) in messages {
                    self.accept(id, round, payload, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag == FOREVER {
            // Re-forward every scheduled message once, decrementing budgets.
            let mut batch: Vec<(MsgId, u32)> = Vec::new();
            self.forever_schedule.retain(|id, (remaining, next_round)| {
                if *remaining == 0 {
                    return false;
                }
                *remaining -= 1;
                let round = *next_round;
                *next_round += 1;
                batch.push((*id, round));
                *remaining > 0
            });
            for (id, round) in batch {
                if let Some((_, payload)) = self.buffer.get(&id) {
                    let payload = payload.clone();
                    for peer in self.select_peers(ctx) {
                        self.stats.payloads_sent += 1;
                        ctx.send(
                            peer,
                            GossipMessage::Push { id, round, payload: payload.clone() },
                        );
                    }
                }
            }
            if self.forever_schedule.is_empty() {
                self.forever_armed = false;
            } else {
                ctx.set_timer(self.config.interval, FOREVER);
            }
            return;
        }
        if tag == RETRY {
            // Re-request every still-missing payload, cycling through the
            // known advertisers, with a bounded attempt budget per id.
            const MAX_RETRIES: u32 = 8;
            let mut requests: BTreeMap<NodeId, Vec<MsgId>> = BTreeMap::new();
            self.pending.retain(|id, (advertisers, attempts)| {
                *attempts += 1;
                if *attempts > MAX_RETRIES || advertisers.is_empty() {
                    return false; // give up; a periodic style would repair later
                }
                let peer = advertisers[(*attempts as usize - 1) % advertisers.len()];
                requests.entry(peer).or_default().push(*id);
                true
            });
            for (peer, ids) in requests {
                self.stats.iwant_sent += 1;
                ctx.send(peer, GossipMessage::IWant { ids });
            }
            if !self.pending.is_empty() {
                ctx.set_timer(self.config.interval, RETRY);
            } else {
                self.retry_armed = false;
            }
            return;
        }
        if tag != TICK {
            return;
        }
        if self.config.style.is_periodic() {
            let digest = self.buffer.digest().clone();
            for peer in self.select_peers(ctx) {
                self.stats.pull_requests_sent += 1;
                ctx.send(peer, GossipMessage::PullRequest { digest: clone_digest(&digest) });
            }
            self.arm_tick(ctx);
        }
    }
}

fn clone_digest(d: &Digest) -> Digest {
    d.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::LatencyModel;

    type Net = SimNet<GossipEngine<u64>>;

    fn build(n: usize, style: GossipStyle, params: GossipParams, sim: SimConfig) -> Net {
        let mut net = SimNet::new(sim);
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::new(GossipConfig::new(style, params.clone()), peers)
        });
        net.start();
        net
    }

    fn coverage(net: &Net, n: usize) -> f64 {
        (0..n)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count() as f64
            / n as f64
    }

    fn publish(net: &mut Net, node: NodeId, value: u64) -> MsgId {
        let mut out = None;
        net.invoke(node, |engine, ctx| {
            out = Some(engine.publish(value, ctx));
        });
        out.expect("publish ran")
    }

    #[test]
    fn eager_push_reaches_everyone_with_atomic_params() {
        let n = 64;
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::atomic_for(n), SimConfig::default().seed(1));
        publish(&mut net, NodeId(0), 7);
        net.run_to_quiescence();
        assert_eq!(coverage(&net, n), 1.0);
    }

    #[test]
    fn eager_push_respects_round_budget() {
        let n = 64;
        // One round: only the initiator's direct fanout can be reached.
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::new(3, 1), SimConfig::default().seed(2));
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        let reached = (0..n).filter(|i| !net.node(NodeId(*i)).delivered().is_empty()).count();
        assert!(reached <= 1 + 3, "reached {reached}, expected <= 4");
        // All delivered rounds are within the budget.
        for i in 0..n {
            for d in net.node(NodeId(i)).delivered() {
                assert!(d.round <= 1);
            }
        }
    }

    #[test]
    fn lazy_push_disseminates_with_fewer_payloads() {
        let n = 48;
        let params = GossipParams::atomic_for(n);
        let seed = 1;

        let mut eager = build(n, GossipStyle::EagerPush, params.clone(), SimConfig::default().seed(seed));
        publish(&mut eager, NodeId(0), 1);
        eager.run_to_quiescence();

        let mut lazy = build(n, GossipStyle::LazyPush, params, SimConfig::default().seed(seed));
        publish(&mut lazy, NodeId(0), 1);
        lazy.run_to_quiescence();

        assert_eq!(coverage(&lazy, n), 1.0, "lazy push must still cover");
        let eager_payloads: u64 = (0..n).map(|i| eager.node(NodeId(i)).stats().payloads_sent).sum();
        let lazy_payloads: u64 = (0..n).map(|i| lazy.node(NodeId(i)).stats().payloads_sent).sum();
        assert!(
            lazy_payloads < eager_payloads,
            "lazy {lazy_payloads} >= eager {eager_payloads}"
        );
        // Lazy push sends each node at most ~one payload (on request).
        assert!(lazy_payloads <= (n as u64) * 2);
    }

    #[test]
    fn pull_converges_via_periodic_ticks() {
        let n = 24;
        let config = SimConfig::default().seed(3).latency(LatencyModel::constant_millis(2));
        let mut net = SimNet::new(config);
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::new(
                GossipConfig::new(GossipStyle::Pull, GossipParams::new(2, 4))
                    .interval(SimDuration::from_millis(50)),
                peers,
            )
        });
        net.start();
        publish(&mut net, NodeId(0), 9);
        net.run_until(SimTime::from_secs(3));
        assert_eq!(coverage(&net, n), 1.0);
    }

    #[test]
    fn anti_entropy_recovers_after_partition() {
        let n = 16;
        let config = SimConfig::default().seed(4).latency(LatencyModel::constant_millis(1));
        let mut net = SimNet::new(config);
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::new(
                GossipConfig::new(GossipStyle::AntiEntropy, GossipParams::new(2, 4))
                    .interval(SimDuration::from_millis(40)),
                peers,
            )
        });
        net.start();
        // Partition half away, publish on the majority side.
        let isolated: Vec<NodeId> = (n / 2..n).map(NodeId).collect();
        net.isolate(&isolated);
        publish(&mut net, NodeId(0), 1);
        net.run_until(SimTime::from_secs(1));
        assert!(coverage(&net, n) < 1.0, "partition should block full coverage");
        net.heal();
        net.run_until(SimTime::from_secs(4));
        assert_eq!(coverage(&net, n), 1.0, "anti-entropy must converge after heal");
    }

    #[test]
    fn push_pull_closes_gaps_left_by_loss() {
        let n = 32;
        // Heavy loss: plain eager push with slim params will miss nodes;
        // push-pull must still converge thanks to the periodic pull.
        let seed = 1;
        let slim = GossipParams::new(2, 6);
        let lossy = |seed| {
            SimConfig::default()
                .seed(seed)
                .drop_probability(0.35)
                .latency(LatencyModel::constant_millis(1))
        };
        let mut eager = build(n, GossipStyle::EagerPush, slim.clone(), lossy(seed));
        publish(&mut eager, NodeId(0), 1);
        eager.run_until(SimTime::from_secs(5));
        let eager_cov = coverage(&eager, n);

        let mut net = SimNet::new(lossy(seed));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::new(
                GossipConfig::new(GossipStyle::PushPull, slim.clone())
                    .interval(SimDuration::from_millis(60)),
                peers,
            )
        });
        net.start();
        publish(&mut net, NodeId(0), 1);
        net.run_until(SimTime::from_secs(5));
        let pp_cov = coverage(&net, n);
        assert_eq!(pp_cov, 1.0, "push-pull should converge despite loss");
        assert!(pp_cov >= eager_cov);
    }

    #[test]
    fn multiple_publishers_all_messages_everywhere() {
        let n = 32;
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::atomic_for(n), SimConfig::default().seed(6));
        publish(&mut net, NodeId(0), 100);
        publish(&mut net, NodeId(5), 200);
        publish(&mut net, NodeId(9), 300);
        net.run_to_quiescence();
        for i in 0..n {
            let values: std::collections::BTreeSet<u64> =
                net.node(NodeId(i)).delivered().iter().map(|d| d.payload).collect();
            assert_eq!(values.len(), 3, "node {i} got {values:?}");
        }
    }

    #[test]
    fn no_duplicate_deliveries_to_application() {
        let n = 32;
        let mut net = build(
            n,
            GossipStyle::EagerPush,
            GossipParams::new(8, 10),
            SimConfig::default().seed(7).duplicate_probability(0.3),
        );
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        for i in 0..n {
            assert!(net.node(NodeId(i)).delivered().len() <= 1, "node {i} double-delivered");
        }
    }

    #[test]
    fn delivery_round_never_exceeds_budget() {
        let n = 64;
        let params = GossipParams::new(4, 5);
        let mut net = build(n, GossipStyle::EagerPush, params.clone(), SimConfig::default().seed(8));
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        for i in 0..n {
            for d in net.node(NodeId(i)).delivered() {
                assert!(d.round <= params.rounds(), "round {} > budget", d.round);
            }
        }
    }

    #[test]
    fn publish_returns_sequential_ids() {
        let n = 4;
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::default(), SimConfig::default().seed(9));
        let a = publish(&mut net, NodeId(2), 1);
        let b = publish(&mut net, NodeId(2), 2);
        assert_eq!(a, MsgId::new(NodeId(2), 0));
        assert_eq!(b, MsgId::new(NodeId(2), 1));
    }

    #[test]
    fn take_delivered_drains() {
        let n = 4;
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::default(), SimConfig::default().seed(10));
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        let first = net.node_mut(NodeId(1)).take_delivered();
        assert_eq!(first.len(), 1);
        assert!(net.node(NodeId(1)).delivered().is_empty());
    }

    #[test]
    fn infect_forever_out_covers_infect_and_die_at_slim_fanout() {
        use crate::params::ForwardDiscipline;
        let n = 96;
        let slim = GossipParams::new(1, 24); // f=1: infect-and-die stalls
        let run = |discipline: ForwardDiscipline| {
            let mut net = SimNet::new(SimConfig::default().seed(21));
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u64>::new(
                    GossipConfig::new(GossipStyle::EagerPush, slim.clone())
                        .discipline(discipline)
                        .interval(wsg_net::SimDuration::from_millis(50)),
                    peers,
                )
            });
            net.start();
            net.invoke(NodeId(0), |e, ctx| {
                e.publish(1, ctx);
            });
            net.run_until(SimTime::from_secs(5));
            let reached = (0..n)
                .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
                .count();
            let payloads: u64 =
                (0..n).map(|i| net.node(NodeId(i)).stats().payloads_sent).sum();
            (reached, payloads)
        };
        let (die_reached, die_payloads) = run(ForwardDiscipline::InfectAndDie);
        let (forever_reached, forever_payloads) = run(ForwardDiscipline::InfectForever);
        assert!(forever_reached > die_reached * 2, "{forever_reached} vs {die_reached}");
        assert!(forever_reached as f64 > n as f64 * 0.9);
        assert!(forever_payloads > die_payloads, "the price of convergence");
    }

    #[test]
    fn stats_track_publish_and_forwards() {
        let n = 16;
        let mut net = build(n, GossipStyle::EagerPush, GossipParams::new(3, 6), SimConfig::default().seed(12));
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(0)).stats().published, 1);
        let total_payloads: u64 = (0..n).map(|i| net.node(NodeId(i)).stats().payloads_sent).sum();
        assert!(total_payloads >= 3, "initiator alone sends fanout payloads");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::LatencyModel;

    fn publish(net: &mut SimNet<GossipEngine<u64>>, node: NodeId, value: u64) {
        net.invoke(node, move |engine, ctx| {
            engine.publish(value, ctx);
        });
    }

    #[test]
    fn peers_can_change_mid_run() {
        // Start with a broken view (everyone only knows node 0), then fix
        // it: dissemination completes only after set_peers.
        let n = 12;
        let mut net = SimNet::new(SimConfig::default().seed(30));
        net.add_nodes(n, |id| {
            let peers = if id.0 == 0 { vec![] } else { vec![NodeId(0)] };
            GossipEngine::<u64>::new(
                GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(4, 8)),
                peers,
            )
        });
        net.start();
        publish(&mut net, NodeId(0), 1);
        net.run_to_quiescence();
        let reached = (0..n)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count();
        assert_eq!(reached, 1, "node 0 has no peers: nothing spreads");

        // Repair views and publish again.
        for i in 0..n {
            let peers = (0..n).map(NodeId).filter(|p| p.0 != i).collect();
            net.node_mut(NodeId(i)).set_peers(peers);
        }
        publish(&mut net, NodeId(0), 2);
        net.run_to_quiescence();
        let reached = (0..n)
            .filter(|i| net.node(NodeId(*i)).delivered().iter().any(|d| d.payload == 2))
            .count();
        assert_eq!(reached, n);
    }

    #[test]
    fn lazy_push_tolerates_network_duplication() {
        let n = 24;
        let mut net = SimNet::new(
            SimConfig::default()
                .seed(32)
                .duplicate_probability(0.4)
                .latency(LatencyModel::constant_millis(2)),
        );
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u64>::new(
                GossipConfig::new(GossipStyle::LazyPush, GossipParams::atomic_for(n)),
                peers,
            )
        });
        net.start();
        publish(&mut net, NodeId(0), 7);
        net.run_to_quiescence();
        for i in 0..n {
            let delivered = net.node(NodeId(i)).delivered();
            assert_eq!(delivered.len(), 1, "node {i}: {}", delivered.len());
        }
    }

    #[test]
    fn pull_responses_respect_buffer_eviction() {
        // A tiny buffer on the publisher: pulls can only repair what
        // is retained; no panics, no phantom deliveries.
        let n = 4;
        let mut net = SimNet::new(SimConfig::default().seed(33));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u64>::new(
                GossipConfig::new(GossipStyle::Pull, GossipParams::new(2, 4))
                    .interval(SimDuration::from_millis(50))
                    .buffer_capacity(2),
                peers,
            )
        });
        net.start();
        for k in 0..6 {
            publish(&mut net, NodeId(0), k);
        }
        net.run_until(wsg_net::SimTime::from_secs(3));
        for i in 1..n {
            let got = net.node(NodeId(i)).delivered().len();
            assert!(got <= 6, "no phantom messages at {i}");
        }
        // Everyone got *something* via pull (the retained tail).
        for i in 1..n {
            assert!(!net.node(NodeId(i)).delivered().is_empty(), "node {i} got nothing");
        }
    }

    #[test]
    fn engine_with_empty_peer_view_is_inert_but_sound() {
        let mut net = SimNet::new(SimConfig::default().seed(34));
        let id = net.add_node(GossipEngine::<u64>::new(
            GossipConfig::new(GossipStyle::PushPull, GossipParams::default())
                .interval(SimDuration::from_millis(50)),
            Vec::new(),
        ));
        net.start();
        publish(&mut net, id, 5);
        net.run_until(wsg_net::SimTime::from_millis(500));
        assert_eq!(net.node(id).delivered().len(), 1, "self-delivery still happens");
        assert_eq!(net.stats().sent, 0, "nothing to send to");
    }
}
