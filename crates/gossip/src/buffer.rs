//! Message identity, buffering and digests for pull/anti-entropy styles.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wsg_net::NodeId;

/// Globally unique message identity: the originating node plus a
/// per-origin sequence number.
///
/// ```
/// use wsg_gossip::MsgId;
/// use wsg_net::NodeId;
///
/// let id = MsgId::new(NodeId(3), 7);
/// assert_eq!(id.origin(), NodeId(3));
/// assert_eq!(id.seq(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    origin: NodeId,
    seq: u64,
}

impl MsgId {
    /// Identity for the `seq`-th message published by `origin`.
    pub fn new(origin: NodeId, seq: u64) -> Self {
        MsgId { origin, seq }
    }

    /// The publishing node.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// The per-origin sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A compact summary of which messages a node has seen: for each known
/// origin, the set of contiguous sequence numbers received so far is
/// summarised by the highest seq `h` such that all of `0..=h` were seen,
/// plus an explicit set of out-of-order extras.
///
/// Digests are exchanged by pull and anti-entropy styles; a peer computes
/// what the other side is missing with [`Digest::missing_from`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digest {
    // origin -> (contiguous high-water mark + 1, i.e. count, extras)
    entries: BTreeMap<NodeId, (u64, Vec<u64>)>,
}

impl Digest {
    /// An empty digest (nothing seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `id` has been seen.
    pub fn insert(&mut self, id: MsgId) {
        let entry = self.entries.entry(id.origin()).or_insert((0, Vec::new()));
        let (contiguous, extras) = entry;
        if id.seq() < *contiguous || extras.contains(&id.seq()) {
            return; // already recorded
        }
        if id.seq() == *contiguous {
            *contiguous += 1;
            // absorb any extras that are now contiguous
            extras.sort_unstable();
            while let Some(pos) = extras.iter().position(|&s| s == *contiguous) {
                extras.remove(pos);
                *contiguous += 1;
            }
        } else {
            extras.push(id.seq());
        }
    }

    /// Whether `id` is covered by this digest.
    pub fn contains(&self, id: &MsgId) -> bool {
        match self.entries.get(&id.origin()) {
            Some((contiguous, extras)) => id.seq() < *contiguous || extras.contains(&id.seq()),
            None => false,
        }
    }

    /// All ids known to `self` that are *not* covered by `other` — what a
    /// peer holding `self` should send to a peer advertising `other`.
    pub fn missing_from(&self, other: &Digest) -> Vec<MsgId> {
        let mut missing = Vec::new();
        for (&origin, (contiguous, extras)) in &self.entries {
            for seq in 0..*contiguous {
                let id = MsgId::new(origin, seq);
                if !other.contains(&id) {
                    missing.push(id);
                }
            }
            for &seq in extras {
                let id = MsgId::new(origin, seq);
                if !other.contains(&id) {
                    missing.push(id);
                }
            }
        }
        missing
    }

    /// Number of (origin → summary) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of message ids covered.
    pub fn id_count(&self) -> u64 {
        self.entries
            .values()
            .map(|(contiguous, extras)| contiguous + extras.len() as u64)
            .sum()
    }
}

/// Bounded store of message payloads, kept for answering pulls and
/// retransmissions, with FIFO eviction once `capacity` is exceeded.
///
/// Seen-set semantics are permanent (ids are remembered after payload
/// eviction) so the engine never re-delivers an evicted message.
#[derive(Debug, Clone)]
pub struct MessageBuffer<T> {
    capacity: usize,
    payloads: BTreeMap<MsgId, (u32, T)>,
    order: VecDeque<MsgId>,
    seen: BTreeSet<MsgId>,
    digest: Digest,
}

impl<T: Clone> MessageBuffer<T> {
    /// A buffer retaining at most `capacity` payloads.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        MessageBuffer {
            capacity,
            payloads: BTreeMap::new(),
            order: VecDeque::new(),
            seen: BTreeSet::new(),
            digest: Digest::new(),
        }
    }

    /// Record a message. Returns `true` when it was new (first sighting).
    pub fn insert(&mut self, id: MsgId, round: u32, payload: T) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.digest.insert(id);
        self.payloads.insert(id, (round, payload));
        self.order.push_back(id);
        while self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.payloads.remove(&evicted);
            }
        }
        true
    }

    /// Whether the id has ever been seen (payload may be evicted).
    pub fn seen(&self, id: &MsgId) -> bool {
        self.seen.contains(id)
    }

    /// The stored payload and its hop count, if still retained.
    pub fn get(&self, id: &MsgId) -> Option<(u32, &T)> {
        self.payloads.get(id).map(|(round, payload)| (*round, payload))
    }

    /// The digest of everything ever seen.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// Number of payloads currently retained.
    pub fn retained(&self) -> usize {
        self.payloads.len()
    }

    /// Number of distinct ids ever seen.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(origin: usize, seq: u64) -> MsgId {
        MsgId::new(NodeId(origin), seq)
    }

    #[test]
    fn digest_contiguous_and_extras() {
        let mut d = Digest::new();
        d.insert(id(0, 0));
        d.insert(id(0, 1));
        d.insert(id(0, 3)); // gap at 2
        assert!(d.contains(&id(0, 0)));
        assert!(d.contains(&id(0, 3)));
        assert!(!d.contains(&id(0, 2)));
        // filling the gap absorbs the extra
        d.insert(id(0, 2));
        assert!(d.contains(&id(0, 2)));
        assert_eq!(d.id_count(), 4);
    }

    #[test]
    fn digest_duplicate_insert_is_idempotent() {
        let mut d = Digest::new();
        d.insert(id(1, 0));
        d.insert(id(1, 0));
        assert_eq!(d.id_count(), 1);
    }

    #[test]
    fn missing_from_computes_difference() {
        let mut mine = Digest::new();
        for seq in 0..5 {
            mine.insert(id(0, seq));
        }
        mine.insert(id(1, 0));
        let mut theirs = Digest::new();
        theirs.insert(id(0, 0));
        theirs.insert(id(0, 1));
        let mut missing = mine.missing_from(&theirs);
        missing.sort();
        assert_eq!(missing, vec![id(0, 2), id(0, 3), id(0, 4), id(1, 0)]);
        // Symmetric check: theirs has nothing mine lacks.
        assert!(theirs.missing_from(&mine).is_empty());
    }

    #[test]
    fn buffer_dedups() {
        let mut buf = MessageBuffer::new(8);
        assert!(buf.insert(id(0, 0), 0, "a"));
        assert!(!buf.insert(id(0, 0), 1, "a"));
        assert_eq!(buf.seen_count(), 1);
    }

    #[test]
    fn buffer_evicts_fifo_but_remembers_seen() {
        let mut buf = MessageBuffer::new(2);
        buf.insert(id(0, 0), 0, "a");
        buf.insert(id(0, 1), 0, "b");
        buf.insert(id(0, 2), 0, "c");
        assert_eq!(buf.retained(), 2);
        assert!(buf.get(&id(0, 0)).is_none(), "evicted payload gone");
        assert!(buf.seen(&id(0, 0)), "seen survives eviction");
        assert!(!buf.insert(id(0, 0), 0, "a"), "evicted message not re-admitted");
    }

    #[test]
    fn buffer_get_returns_round() {
        let mut buf = MessageBuffer::new(4);
        buf.insert(id(2, 0), 3, "x");
        let (round, payload) = buf.get(&id(2, 0)).unwrap();
        assert_eq!(round, 3);
        assert_eq!(*payload, "x");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MessageBuffer::<()>::new(0);
    }

    #[test]
    fn digest_of_buffer_tracks_inserts() {
        let mut buf = MessageBuffer::new(4);
        buf.insert(id(0, 0), 0, 1u32);
        buf.insert(id(1, 0), 0, 2u32);
        assert_eq!(buf.digest().id_count(), 2);
    }
}
