//! Protocol parameters: the paper's `f` (fanout) and `r` (rounds).

use std::fmt;

use wsg_net::SimDuration;

/// The two key parameters of an epidemic protocol (paper §2):
///
/// * **Fanout (f)** — "number of targets that are locally selected by each
///   process for gossiping";
/// * **Rounds (r)** — "maximum number of times a message is forwarded
///   before being ignored".
///
/// ```
/// use wsg_gossip::GossipParams;
///
/// let params = GossipParams::new(4, 8);
/// assert_eq!(params.fanout(), 4);
/// assert_eq!(params.rounds(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GossipParams {
    fanout: usize,
    rounds: u32,
}

impl GossipParams {
    /// Parameters with the given fanout and round budget.
    ///
    /// # Panics
    ///
    /// Panics when `fanout` is zero (a zero-fanout protocol never
    /// disseminates; reject early rather than silently doing nothing).
    pub fn new(fanout: usize, rounds: u32) -> Self {
        assert!(fanout > 0, "fanout must be at least 1");
        GossipParams { fanout, rounds }
    }

    /// Parameters sized for atomic (all-nodes) delivery w.h.p. in a system
    /// of `n` nodes, following the Eugster et al. configuration result the
    /// paper cites: `f = ln(n) + c` with a comfortable safety constant, and
    /// enough rounds for the epidemic to saturate (`~ log2(n) + c`).
    pub fn atomic_for(n: usize) -> Self {
        let n = n.max(2);
        let fanout = (n as f64).ln().ceil() as usize + 2;
        let rounds = (n as f64).log2().ceil() as u32 + 4;
        GossipParams { fanout: fanout.max(1), rounds: rounds.max(1) }
    }

    /// The fanout `f`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The round budget `r`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

impl Default for GossipParams {
    /// `f = 3`, `r = 8` — a sensible small-system default.
    fn default() -> Self {
        GossipParams { fanout: 3, rounds: 8 }
    }
}

impl fmt::Display for GossipParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f={}, r={}", self.fanout, self.rounds)
    }
}

/// The gossip styles the framework supports (paper §4 promises a framework
/// "encompassing different gossip styles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GossipStyle {
    /// Forward full payloads on first receipt (WS-PushGossip).
    EagerPush,
    /// Advertise ids, ship payloads on demand.
    LazyPush,
    /// Periodically pull unseen messages from random peers.
    Pull,
    /// Eager push combined with periodic pull.
    PushPull,
    /// Periodic digest reconciliation.
    AntiEntropy,
}

impl GossipStyle {
    /// Whether the style needs a periodic timer (pull-flavoured styles).
    pub fn is_periodic(&self) -> bool {
        matches!(self, GossipStyle::Pull | GossipStyle::PushPull | GossipStyle::AntiEntropy)
    }

    /// Whether the style pushes payloads eagerly on first receipt.
    pub fn pushes_eagerly(&self) -> bool {
        matches!(self, GossipStyle::EagerPush | GossipStyle::PushPull)
    }

    /// Stable underscore name, used as the `style` label value in
    /// exported metrics (`wsg_obs` exposition).
    pub fn label(&self) -> &'static str {
        match self {
            GossipStyle::EagerPush => "eager_push",
            GossipStyle::LazyPush => "lazy_push",
            GossipStyle::Pull => "pull",
            GossipStyle::PushPull => "push_pull",
            GossipStyle::AntiEntropy => "anti_entropy",
        }
    }

    /// All styles, for sweeps in the benchmark harness.
    pub fn all() -> [GossipStyle; 5] {
        [
            GossipStyle::EagerPush,
            GossipStyle::LazyPush,
            GossipStyle::Pull,
            GossipStyle::PushPull,
            GossipStyle::AntiEntropy,
        ]
    }
}

impl fmt::Display for GossipStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GossipStyle::EagerPush => "eager-push",
            GossipStyle::LazyPush => "lazy-push",
            GossipStyle::Pull => "pull",
            GossipStyle::PushPull => "push-pull",
            GossipStyle::AntiEntropy => "anti-entropy",
        };
        f.write_str(name)
    }
}

/// What re-triggers forwarding (Eugster et al.'s taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ForwardDiscipline {
    /// Forward only on first receipt (the default): `f` copies per node
    /// total, coverage bounded by the E2 sigmoid.
    #[default]
    InfectAndDie,
    /// Forward on *every* receipt while the round budget lasts: more
    /// traffic, but converges to full coverage for any `f ≥ 1`.
    InfectForever,
}

/// Default interval between periodic gossip exchanges.
pub const DEFAULT_GOSSIP_INTERVAL: SimDuration = SimDuration::from_millis(100);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = GossipParams::new(5, 3);
        assert_eq!(p.fanout(), 5);
        assert_eq!(p.rounds(), 3);
        assert_eq!(p.to_string(), "f=5, r=3");
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn zero_fanout_rejected() {
        let _ = GossipParams::new(0, 3);
    }

    #[test]
    fn atomic_sizing_grows_logarithmically() {
        let small = GossipParams::atomic_for(16);
        let large = GossipParams::atomic_for(4096);
        assert!(large.fanout() > small.fanout());
        assert!(large.rounds() > small.rounds());
        // ln(4096) ~ 8.3 -> fanout 11
        assert_eq!(large.fanout(), 11);
    }

    #[test]
    fn style_classification() {
        assert!(GossipStyle::EagerPush.pushes_eagerly());
        assert!(!GossipStyle::EagerPush.is_periodic());
        assert!(GossipStyle::Pull.is_periodic());
        assert!(GossipStyle::PushPull.is_periodic());
        assert!(GossipStyle::PushPull.pushes_eagerly());
        assert!(GossipStyle::AntiEntropy.is_periodic());
        assert!(!GossipStyle::LazyPush.is_periodic());
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            GossipStyle::all().iter().map(|s| s.to_string()).collect();
        assert_eq!(names.len(), 5);
    }
}
