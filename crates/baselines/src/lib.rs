//! # wsg-baselines — non-gossip dissemination comparators
//!
//! The paper's motivation (§1) contrasts gossip with monolithic,
//! centralized dissemination (e.g. the Swiss Exchange system \[8\]) and
//! with classic reliable multicast \[2\]. These baselines make those
//! comparisons concrete; each implements [`wsg_net::Protocol`] so it runs
//! under the identical fault injection as the gossip engine:
//!
//! * [`broker::BrokerNode`] — a centralized reliable broker: publishers
//!   send to one broker node which unicasts to every subscriber and
//!   retransmits until acknowledged (the ack-based reliable multicast
//!   whose throughput collapses under perturbation — experiment E5);
//! * [`direct::DirectNode`] — best-effort sender-unicasts-to-all (no
//!   retransmission; the cheapest centralized scheme);
//! * [`flooding::FloodNode`] — forward every new message to *all* peers:
//!   maximal reliability, O(n²) traffic;
//! * [`tree::TreeNode`] — static k-ary spanning-tree multicast: optimal
//!   message count, loses whole subtrees to a single crash.

pub mod broker;
pub mod direct;
pub mod flooding;
pub mod tree;

pub use broker::{BrokerMsg, BrokerNode};
pub use direct::{DirectMsg, DirectNode};
pub use flooding::{FloodMsg, FloodNode};
pub use tree::{TreeMsg, TreeNode};

/// A record of one application-level delivery, shared by all baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<T> {
    /// Sequence number assigned by the origin.
    pub seq: u64,
    /// Virtual time of delivery.
    pub at: wsg_net::SimTime,
    /// The payload.
    pub payload: T,
}
