//! Centralized reliable broker with ack + retransmit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wsg_net::{Context, NodeId, Protocol, SimDuration, TimerTag};

use crate::Delivery;

/// Timer tag for the broker's retransmission sweep.
pub const RETRANSMIT_TICK: TimerTag = TimerTag(0xB20C);

/// Wire messages of the broker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerMsg<T> {
    /// Client → broker: publish a payload.
    Publish(T),
    /// Broker → subscriber: deliver (at-least-once until acked).
    Deliver {
        /// Broker-assigned sequence number.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Subscriber → broker: acknowledge a sequence number.
    Ack(u64),
}

/// One node of the centralized-broker system. Node 0 conventionally plays
/// the broker; everyone else is a subscriber.
///
/// The broker keeps every message until all subscribers acknowledged it
/// and retransmits outstanding copies every `retransmit_every` — the
/// classic sender-reliable scheme whose goodput is gated by its slowest
/// receiver (the behaviour experiment E5 reproduces).
#[derive(Debug, Clone)]
pub struct BrokerNode<T> {
    is_broker: bool,
    broker: NodeId,
    subscribers: Vec<NodeId>,
    retransmit_every: SimDuration,
    max_retries: u32,
    // broker state
    window: usize,
    backlog: VecDeque<T>,
    next_seq: u64,
    store: BTreeMap<u64, T>,
    unacked: BTreeMap<u64, BTreeSet<NodeId>>,
    retries: BTreeMap<u64, u32>,
    // subscriber state
    seen: BTreeSet<u64>,
    delivered: Vec<Delivery<T>>,
    // counters
    retransmissions: u64,
    gave_up: u64,
}

impl<T: Clone> BrokerNode<T> {
    /// The broker node, serving the given subscribers.
    pub fn broker(subscribers: Vec<NodeId>, retransmit_every: SimDuration) -> Self {
        BrokerNode {
            is_broker: true,
            broker: NodeId(0),
            subscribers,
            retransmit_every,
            max_retries: 20,
            window: usize::MAX,
            backlog: VecDeque::new(),
            next_seq: 0,
            store: BTreeMap::new(),
            unacked: BTreeMap::new(),
            retries: BTreeMap::new(),
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            retransmissions: 0,
            gave_up: 0,
        }
    }

    /// A subscriber of `broker`.
    pub fn subscriber(broker: NodeId) -> Self {
        BrokerNode {
            is_broker: false,
            broker,
            subscribers: Vec::new(),
            retransmit_every: SimDuration::from_millis(100),
            max_retries: 0,
            window: usize::MAX,
            backlog: VecDeque::new(),
            next_seq: 0,
            store: BTreeMap::new(),
            unacked: BTreeMap::new(),
            retries: BTreeMap::new(),
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            retransmissions: 0,
            gave_up: 0,
        }
    }

    /// Builder: cap on retransmission attempts per (message, subscriber).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Builder: bound the broker's send window — at most `window` messages
    /// may be outstanding (not yet acknowledged by everyone); publishes
    /// beyond the window queue at the broker. This is the classic
    /// sender-side flow control whose goodput is gated by the slowest
    /// receiver (the bimodal-multicast comparison, experiment E5).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = window;
        self
    }

    /// Broker: messages queued behind the send window.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Deliveries at this node (subscribers only).
    pub fn delivered(&self) -> &[Delivery<T>] {
        &self.delivered
    }

    /// Broker: messages still not fully acknowledged.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Broker: total retransmitted copies.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Broker: publish directly at the broker (for harness convenience).
    pub fn publish(&mut self, payload: T, ctx: &mut dyn Context<BrokerMsg<T>>) {
        assert!(self.is_broker, "publish on the broker node");
        self.broadcast(payload, ctx);
    }

    fn broadcast(&mut self, payload: T, ctx: &mut dyn Context<BrokerMsg<T>>) {
        if self.unacked.len() >= self.window {
            self.backlog.push_back(payload);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.store.insert(seq, payload.clone());
        self.unacked.insert(seq, self.subscribers.iter().copied().collect());
        self.retries.insert(seq, 0);
        for subscriber in self.subscribers.clone() {
            ctx.send(subscriber, BrokerMsg::Deliver { seq, payload: payload.clone() });
        }
    }
}

impl<T: Clone> Protocol for BrokerNode<T> {
    type Message = BrokerMsg<T>;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        if self.is_broker {
            ctx.set_timer(self.retransmit_every, RETRANSMIT_TICK);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        match msg {
            BrokerMsg::Publish(payload) => {
                if self.is_broker {
                    self.broadcast(payload, ctx);
                }
            }
            BrokerMsg::Deliver { seq, payload } => {
                // Always (re-)ack; deliver only once.
                ctx.send(self.broker, BrokerMsg::Ack(seq));
                if self.seen.insert(seq) {
                    self.delivered.push(Delivery { seq, at: ctx.now(), payload });
                }
            }
            BrokerMsg::Ack(seq) => {
                if let Some(waiting) = self.unacked.get_mut(&seq) {
                    waiting.remove(&from);
                    if waiting.is_empty() {
                        self.unacked.remove(&seq);
                        self.store.remove(&seq);
                        self.retries.remove(&seq);
                        self.drain_backlog(ctx);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag != RETRANSMIT_TICK || !self.is_broker {
            return;
        }
        let mut abandoned = Vec::new();
        for (&seq, waiting) in &self.unacked {
            let attempts = self.retries.entry(seq).or_insert(0);
            if *attempts >= self.max_retries {
                abandoned.push(seq);
                continue;
            }
            *attempts += 1;
            let Some(payload) = self.store.get(&seq).cloned() else {
                // Payload evicted without an ack record cleanup: treat
                // as abandoned rather than panicking the broker node.
                abandoned.push(seq);
                continue;
            };
            for &subscriber in waiting {
                self.retransmissions += 1;
                ctx.send(subscriber, BrokerMsg::Deliver { seq, payload: payload.clone() });
            }
        }
        for seq in abandoned {
            self.unacked.remove(&seq);
            self.store.remove(&seq);
            self.retries.remove(&seq);
            self.gave_up += 1;
        }
        self.drain_backlog(ctx);
        ctx.set_timer(self.retransmit_every, RETRANSMIT_TICK);
    }
}

impl<T: Clone> BrokerNode<T> {
    fn drain_backlog(&mut self, ctx: &mut dyn Context<BrokerMsg<T>>) {
        while self.unacked.len() < self.window {
            match self.backlog.pop_front() {
                Some(payload) => self.broadcast(payload, ctx),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::{LatencyModel, SimTime};

    fn build(n: usize, config: SimConfig) -> SimNet<BrokerNode<u32>> {
        let mut net = SimNet::new(config);
        let subscribers: Vec<NodeId> = (1..n).map(NodeId).collect();
        net.add_nodes(n, |id| {
            if id.index() == 0 {
                BrokerNode::broker(subscribers.clone(), SimDuration::from_millis(50))
            } else {
                BrokerNode::subscriber(NodeId(0))
            }
        });
        net.start();
        net
    }

    fn publish(net: &mut SimNet<BrokerNode<u32>>, value: u32) {
        net.invoke(NodeId(0), move |broker, ctx| broker.publish(value, ctx));
    }

    #[test]
    fn delivers_to_all_without_faults() {
        let mut net = build(8, SimConfig::default().seed(1));
        publish(&mut net, 7);
        net.run_until(SimTime::from_secs(1));
        for i in 1..8 {
            assert_eq!(net.node(NodeId(i)).delivered().len(), 1);
        }
        assert_eq!(net.node(NodeId(0)).outstanding(), 0);
    }

    #[test]
    fn retransmits_through_loss() {
        let mut net = build(6, SimConfig::default().seed(2).drop_probability(0.3));
        publish(&mut net, 1);
        net.run_until(SimTime::from_secs(10));
        for i in 1..6 {
            assert_eq!(net.node(NodeId(i)).delivered().len(), 1, "subscriber {i}");
        }
        assert!(net.node(NodeId(0)).retransmissions() > 0);
    }

    #[test]
    fn duplicates_not_delivered_twice() {
        let mut net = build(4, SimConfig::default().seed(3).duplicate_probability(0.5));
        publish(&mut net, 1);
        publish(&mut net, 2);
        net.run_until(SimTime::from_secs(2));
        for i in 1..4 {
            assert_eq!(net.node(NodeId(i)).delivered().len(), 2);
        }
    }

    #[test]
    fn broker_crash_halts_dissemination() {
        let mut net = build(6, SimConfig::default().seed(4));
        net.crash(NodeId(0));
        // A client publish goes to the dead broker: nobody hears anything.
        net.send_external(NodeId(1), NodeId(0), BrokerMsg::Publish(9));
        net.run_until(SimTime::from_secs(2));
        for i in 1..6 {
            assert!(net.node(NodeId(i)).delivered().is_empty());
        }
    }

    #[test]
    fn gives_up_on_crashed_subscriber() {
        let mut net = build(4, SimConfig::default().seed(5));
        net.crash(NodeId(3));
        publish(&mut net, 1);
        net.run_until(SimTime::from_secs(30));
        assert_eq!(net.node(NodeId(0)).outstanding(), 0, "abandoned after max retries");
        assert_eq!(net.node(NodeId(0)).gave_up, 1);
        assert!(net.node(NodeId(3)).delivered().is_empty());
    }

    #[test]
    fn slow_subscriber_drives_retransmissions() {
        let config = SimConfig::default().seed(6).latency(LatencyModel::constant_millis(1));
        let mut net = build(5, config);
        // One perturbed subscriber acks very late.
        net.perturb(NodeId(4), SimDuration::from_millis(400));
        publish(&mut net, 1);
        net.run_until(SimTime::from_secs(3));
        assert!(net.node(NodeId(0)).retransmissions() > 0, "slow node forces retries");
        assert_eq!(net.node(NodeId(4)).delivered().len(), 1);
    }
}
