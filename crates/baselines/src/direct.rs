//! Best-effort sender-unicasts-to-all.

use std::collections::BTreeSet;

use wsg_net::{Context, NodeId, Protocol};

use crate::Delivery;

/// Wire message: a payload with origin sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectMsg<T> {
    /// Origin-assigned sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

/// A node of the best-effort direct scheme: the publisher unicasts one
/// copy to every receiver and hopes. One lost copy = one receiver missed —
/// the fragility the paper's motivation ascribes to naive centralized
/// dissemination.
#[derive(Debug, Clone, Default)]
pub struct DirectNode<T> {
    receivers: Vec<NodeId>,
    next_seq: u64,
    seen: BTreeSet<u64>,
    delivered: Vec<Delivery<T>>,
}

impl<T: Clone> DirectNode<T> {
    /// A node that publishes to `receivers` (pass empty for pure receivers).
    pub fn new(receivers: Vec<NodeId>) -> Self {
        DirectNode {
            receivers,
            next_seq: 0,
            seen: BTreeSet::new(),
            delivered: Vec::new(),
        }
    }

    /// Deliveries at this node.
    pub fn delivered(&self) -> &[Delivery<T>] {
        &self.delivered
    }

    /// Publish one payload to every receiver.
    pub fn publish(&mut self, payload: T, ctx: &mut dyn Context<DirectMsg<T>>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        for receiver in self.receivers.clone() {
            ctx.send(receiver, DirectMsg { seq, payload: payload.clone() });
        }
    }
}

impl<T: Clone> Protocol for DirectNode<T> {
    type Message = DirectMsg<T>;

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        if self.seen.insert(msg.seq) {
            self.delivered.push(Delivery { seq: msg.seq, at: ctx.now(), payload: msg.payload });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::SimTime;

    fn build(n: usize, config: SimConfig) -> SimNet<DirectNode<u32>> {
        let mut net = SimNet::new(config);
        net.add_nodes(n, |id| {
            if id.index() == 0 {
                DirectNode::new((1..n).map(NodeId).collect())
            } else {
                DirectNode::new(Vec::new())
            }
        });
        net.start();
        net
    }

    #[test]
    fn clean_network_full_delivery() {
        let mut net = build(10, SimConfig::default().seed(1));
        net.invoke(NodeId(0), |node, ctx| node.publish(5, ctx));
        net.run_until(SimTime::from_secs(1));
        for i in 1..10 {
            assert_eq!(net.node(NodeId(i)).delivered().len(), 1);
        }
    }

    #[test]
    fn loss_directly_reduces_coverage() {
        let mut net = build(200, SimConfig::default().seed(2).drop_probability(0.3));
        net.invoke(NodeId(0), |node, ctx| node.publish(5, ctx));
        net.run_until(SimTime::from_secs(1));
        let reached = (1..200)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count();
        // Expect ~ 70% ± a few percent: no redundancy to mask loss.
        assert!((120..=160).contains(&reached), "reached {reached}");
    }

    #[test]
    fn dedup_on_duplicates() {
        let mut net = build(3, SimConfig::default().seed(3).duplicate_probability(1.0));
        net.invoke(NodeId(0), |node, ctx| node.publish(5, ctx));
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.node(NodeId(1)).delivered().len(), 1);
    }
}
