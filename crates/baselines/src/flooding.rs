//! Flooding: forward every new message to every peer.

use std::collections::BTreeSet;

use wsg_net::{Context, NodeId, Protocol};

use crate::Delivery;

/// Wire message: payload plus identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodMsg<T> {
    /// (origin, seq) identity.
    pub origin: NodeId,
    /// Origin-assigned sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

/// A flooding node: on first receipt, forward to *all* peers. The
/// maximally reliable and maximally wasteful comparator — n·(n−1) copies
/// per message.
#[derive(Debug, Clone)]
pub struct FloodNode<T> {
    peers: Vec<NodeId>,
    next_seq: u64,
    seen: BTreeSet<(NodeId, u64)>,
    delivered: Vec<Delivery<T>>,
    forwards: u64,
}

impl<T: Clone> FloodNode<T> {
    /// A node flooding to `peers`.
    pub fn new(peers: Vec<NodeId>) -> Self {
        FloodNode {
            peers,
            next_seq: 0,
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            forwards: 0,
        }
    }

    /// Deliveries at this node.
    pub fn delivered(&self) -> &[Delivery<T>] {
        &self.delivered
    }

    /// Copies this node forwarded.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Publish a new payload (delivered locally and flooded).
    pub fn publish(&mut self, payload: T, ctx: &mut dyn Context<FloodMsg<T>>) {
        let msg = FloodMsg { origin: ctx.self_id(), seq: self.next_seq, payload };
        self.next_seq += 1;
        self.accept(msg, ctx);
    }

    fn accept(&mut self, msg: FloodMsg<T>, ctx: &mut dyn Context<FloodMsg<T>>) {
        if !self.seen.insert((msg.origin, msg.seq)) {
            return;
        }
        self.delivered.push(Delivery { seq: msg.seq, at: ctx.now(), payload: msg.payload.clone() });
        for peer in self.peers.clone() {
            self.forwards += 1;
            ctx.send(peer, msg.clone());
        }
    }
}

impl<T: Clone> Protocol for FloodNode<T> {
    type Message = FloodMsg<T>;

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        self.accept(msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};

    fn build(n: usize, config: SimConfig) -> SimNet<FloodNode<u32>> {
        let mut net = SimNet::new(config);
        net.add_nodes(n, |id| {
            FloodNode::new((0..n).map(NodeId).filter(|p| *p != id).collect())
        });
        net.start();
        net
    }

    #[test]
    fn reaches_everyone() {
        let mut net = build(12, SimConfig::default().seed(1));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        for id in net.node_ids() {
            assert_eq!(net.node(id).delivered().len(), 1);
        }
    }

    #[test]
    fn quadratic_message_cost() {
        let n = 16;
        let mut net = build(n, SimConfig::default().seed(2));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        let total: u64 = (0..n).map(|i| net.node(NodeId(i)).forwards()).sum();
        assert_eq!(total, (n as u64) * (n as u64 - 1), "every node floods once");
    }

    #[test]
    fn survives_heavy_loss() {
        let mut net = build(24, SimConfig::default().seed(3).drop_probability(0.5));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        let reached = (0..24)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count();
        assert_eq!(reached, 24, "23 independent copies per node defeat 50% loss");
    }
}
