//! Static k-ary spanning-tree multicast.

use std::collections::BTreeSet;

use wsg_net::{Context, NodeId, Protocol};

use crate::Delivery;

/// Wire message: payload plus origin sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeMsg<T> {
    /// Root-assigned sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

/// A node of a static k-ary dissemination tree rooted at node 0: node `i`'s
/// children are `k·i + 1 ..= k·i + k`. Message-optimal (n − 1 copies) and
/// latency O(log_k n), but a single crashed interior node silently loses
/// its entire subtree — the failure mode experiment E4 exposes.
#[derive(Debug, Clone)]
pub struct TreeNode<T> {
    children: Vec<NodeId>,
    next_seq: u64,
    seen: BTreeSet<u64>,
    delivered: Vec<Delivery<T>>,
}

impl<T: Clone> TreeNode<T> {
    /// The node with identity `me` in a `k`-ary tree of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(me: NodeId, n: usize, k: usize) -> Self {
        assert!(k > 0, "tree arity must be positive");
        let children = (1..=k)
            .map(|j| k * me.index() + j)
            .filter(|&c| c < n)
            .map(NodeId)
            .collect();
        TreeNode { children, next_seq: 0, seen: BTreeSet::new(), delivered: Vec::new() }
    }

    /// Deliveries at this node.
    pub fn delivered(&self) -> &[Delivery<T>] {
        &self.delivered
    }

    /// This node's children in the tree.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Publish from this node (meaningful at the root).
    pub fn publish(&mut self, payload: T, ctx: &mut dyn Context<TreeMsg<T>>) {
        let msg = TreeMsg { seq: self.next_seq, payload };
        self.next_seq += 1;
        self.accept(msg, ctx);
    }

    fn accept(&mut self, msg: TreeMsg<T>, ctx: &mut dyn Context<TreeMsg<T>>) {
        if !self.seen.insert(msg.seq) {
            return;
        }
        self.delivered.push(Delivery { seq: msg.seq, at: ctx.now(), payload: msg.payload.clone() });
        for child in self.children.clone() {
            ctx.send(child, msg.clone());
        }
    }
}

impl<T: Clone> Protocol for TreeNode<T> {
    type Message = TreeMsg<T>;

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        self.accept(msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};

    fn build(n: usize, k: usize, config: SimConfig) -> SimNet<TreeNode<u32>> {
        let mut net = SimNet::new(config);
        net.add_nodes(n, |id| TreeNode::new(id, n, k));
        net.start();
        net
    }

    #[test]
    fn covers_all_with_minimal_messages() {
        let n = 31;
        let mut net = build(n, 2, SimConfig::default().seed(1));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        for id in net.node_ids() {
            assert_eq!(net.node(id).delivered().len(), 1);
        }
        assert_eq!(net.stats().sent, (n - 1) as u64, "exactly n-1 copies");
    }

    #[test]
    fn interior_crash_loses_subtree() {
        let n = 15; // binary: node 1's subtree = {1,3,4,7,8,9,10}
        let mut net = build(n, 2, SimConfig::default().seed(2));
        net.crash(NodeId(1));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        let lost: Vec<usize> = (0..n)
            .filter(|&i| net.node(NodeId(i)).delivered().is_empty())
            .collect();
        assert_eq!(lost, vec![1, 3, 4, 7, 8, 9, 10], "whole subtree dark");
    }

    #[test]
    fn arity_shapes_children() {
        let node: TreeNode<u32> = TreeNode::new(NodeId(0), 10, 3);
        assert_eq!(node.children(), &[NodeId(1), NodeId(2), NodeId(3)]);
        let leaf: TreeNode<u32> = TreeNode::new(NodeId(9), 10, 3);
        assert!(leaf.children().is_empty());
    }

    #[test]
    fn single_lost_link_loses_subtree_under_loss() {
        // With loss, coverage decays much faster than per-link loss rate
        // because each lost interior edge kills a subtree.
        let n = 127;
        let mut net = build(n, 2, SimConfig::default().seed(3).drop_probability(0.1));
        net.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        net.run_to_quiescence();
        let reached = (0..n)
            .filter(|&i| !net.node(NodeId(i)).delivered().is_empty())
            .count();
        assert!(reached < n, "10% link loss must lose someone in a 127-node tree");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn zero_arity_rejected() {
        let _: TreeNode<u32> = TreeNode::new(NodeId(0), 4, 0);
    }
}
