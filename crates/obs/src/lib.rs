//! Zero-dependency metrics for the WS-Gossip stack.
//!
//! Three metric kinds, each registrable either plain or as a labeled
//! family:
//!
//! - [`Counter`]: monotone `u64`, lock-free (`Relaxed` atomics) — cheap
//!   enough for hot transport paths.
//! - [`Gauge`]: signed instantaneous value (pool sizes, active contexts).
//! - [`HistogramMetric`]: a [`wsg_net::Histogram`] behind an in-tree
//!   mutex, rendered as a Prometheus *summary* (quantiles + sum/count).
//!
//! A [`Registry`] owns the metrics and renders the whole set as a
//! Prometheus-style text exposition. Rendering is **deterministic**:
//! metric names and family label sets live in `BTreeMap`s, so two
//! registries holding the same values render byte-identical text.
//!
//! Determinism contract: nothing in this crate reads a clock or an RNG.
//! Simulated components keep their plain stats structs and *export*
//! snapshots into a registry after (or outside) the deterministic run;
//! only genuinely wall-clock components (`wsg_http`) update live metric
//! handles inline.
//!
//! ```
//! use wsg_obs::Registry;
//!
//! let registry = Registry::new();
//! let posts = registry.register_counter("wsg_demo_posts_total", "Posts issued.");
//! posts.inc();
//! posts.add(2);
//! let by_style = registry.register_counter_family(
//!     "wsg_demo_sent_total",
//!     "Messages sent by gossip style.",
//!     &["style"],
//! );
//! by_style.with(&["eager_push"]).add(7);
//! let text = registry.render();
//! assert!(text.contains("wsg_demo_posts_total 3\n"));
//! assert!(text.contains("wsg_demo_sent_total{style=\"eager_push\"} 7\n"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use wsg_net::sync::Mutex;
use wsg_net::Histogram;

/// A monotonically increasing counter.
///
/// `set` exists for snapshot exporters that mirror an already-monotone
/// source (e.g. `EngineStats` after a sim run); callers own the
/// monotonicity guarantee in that case.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `n` — for exporters syncing from a monotone source.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite with `n`.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A [`wsg_net::Histogram`] usable behind shared references.
///
/// Rendered as a Prometheus summary: `name{quantile="0.5"}` /
/// `"0.9"` / `"0.99"` lines plus `name_sum` and `name_count`.
#[derive(Debug, Default)]
pub struct HistogramMetric {
    inner: Mutex<Histogram>,
}

impl HistogramMetric {
    /// An empty histogram metric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.inner.lock().record(value);
    }

    /// Replace the contents with a snapshot from an already-collected
    /// histogram (exporters syncing sim-side stats).
    pub fn set_snapshot(&self, histogram: &Histogram) {
        *self.inner.lock() = histogram.clone();
    }

    /// A copy of the current contents.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }
}

/// A labeled family of metrics: one child per label-value tuple,
/// created on first use and kept in label-value order so rendering is
/// deterministic.
#[derive(Debug)]
pub struct Family<M> {
    label_names: Vec<&'static str>,
    children: Mutex<BTreeMap<Vec<String>, Arc<M>>>,
}

impl<M: Default> Family<M> {
    fn new(label_names: &[&'static str]) -> Self {
        Family { label_names: label_names.to_vec(), children: Mutex::new(BTreeMap::new()) }
    }

    /// The child for the given label values, created at zero on first
    /// use.
    ///
    /// # Panics
    /// If `values.len()` differs from the family's label-name count.
    pub fn with(&self, values: &[&str]) -> Arc<M> {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "family expects {} label values, got {}",
            self.label_names.len(),
            values.len()
        );
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.children.lock().entry(key).or_insert_with(|| Arc::new(M::default())).clone()
    }

    /// Number of distinct label-value tuples seen.
    pub fn len(&self) -> usize {
        self.children.lock().len()
    }

    /// Whether no child has been created yet.
    pub fn is_empty(&self) -> bool {
        self.children.lock().is_empty()
    }

    fn snapshot_children(&self) -> Vec<(Vec<String>, Arc<M>)> {
        self.children.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

#[derive(Debug)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<HistogramMetric>),
    CounterFamily(Arc<Family<Counter>>),
    GaugeFamily(Arc<Family<Gauge>>),
    HistogramFamily(Arc<Family<HistogramMetric>>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) | Entry::CounterFamily(_) => "counter",
            Entry::Gauge(_) | Entry::GaugeFamily(_) => "gauge",
            Entry::Histogram(_) | Entry::HistogramFamily(_) => "summary",
        }
    }
}

/// True when `name` matches the metric-name grammar `[a-z][a-z0-9_]*`
/// (enforced at registration time and by `wsg_lint` rule O1 on string
/// literals at call sites).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Holder of a metric set; renders the deterministic text exposition.
///
/// All `register_*` methods are get-or-register: a second call with the
/// same name and kind returns the existing metric, so independent
/// components can share one registry without coordinating registration
/// order. Name collisions across *kinds* and grammar-violating names
/// panic — both are programmer errors caught by any test that touches
/// the path.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, (String, Entry)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register_with(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Entry,
        read: impl Fn(&Entry) -> Option<Entry>,
    ) -> Entry {
        assert!(valid_metric_name(name), "invalid metric name {name:?} (want [a-z][a-z0-9_]*)");
        let mut entries = self.entries.lock();
        if let Some((_, existing)) = entries.get(name) {
            return read(existing).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a {}", existing.kind())
            });
        }
        let entry = make();
        let clone = read(&entry).expect("freshly made entry must match its own kind");
        entries.insert(name.to_string(), (help.to_string(), entry));
        clone
    }

    /// Get or register a plain counter.
    pub fn register_counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let entry = self.register_with(
            name,
            help,
            || Entry::Counter(Arc::new(Counter::new())),
            |e| match e {
                Entry::Counter(c) => Some(Entry::Counter(c.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or register a plain gauge.
    pub fn register_gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let entry = self.register_with(
            name,
            help,
            || Entry::Gauge(Arc::new(Gauge::new())),
            |e| match e {
                Entry::Gauge(g) => Some(Entry::Gauge(g.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or register a plain histogram (rendered as a summary).
    pub fn register_histogram(&self, name: &str, help: &str) -> Arc<HistogramMetric> {
        let entry = self.register_with(
            name,
            help,
            || Entry::Histogram(Arc::new(HistogramMetric::new())),
            |e| match e {
                Entry::Histogram(h) => Some(Entry::Histogram(h.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Get or register a labeled counter family.
    pub fn register_counter_family(
        &self,
        name: &str,
        help: &str,
        labels: &[&'static str],
    ) -> Arc<Family<Counter>> {
        let entry = self.register_with(
            name,
            help,
            || Entry::CounterFamily(Arc::new(Family::new(labels))),
            |e| match e {
                Entry::CounterFamily(f) => Some(Entry::CounterFamily(f.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::CounterFamily(f) => f,
            _ => unreachable!(),
        }
    }

    /// Get or register a labeled gauge family.
    pub fn register_gauge_family(
        &self,
        name: &str,
        help: &str,
        labels: &[&'static str],
    ) -> Arc<Family<Gauge>> {
        let entry = self.register_with(
            name,
            help,
            || Entry::GaugeFamily(Arc::new(Family::new(labels))),
            |e| match e {
                Entry::GaugeFamily(f) => Some(Entry::GaugeFamily(f.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::GaugeFamily(f) => f,
            _ => unreachable!(),
        }
    }

    /// Get or register a labeled histogram family.
    pub fn register_histogram_family(
        &self,
        name: &str,
        help: &str,
        labels: &[&'static str],
    ) -> Arc<Family<HistogramMetric>> {
        let entry = self.register_with(
            name,
            help,
            || Entry::HistogramFamily(Arc::new(Family::new(labels))),
            |e| match e {
                Entry::HistogramFamily(f) => Some(Entry::HistogramFamily(f.clone())),
                _ => None,
            },
        );
        match entry {
            Entry::HistogramFamily(f) => f,
            _ => unreachable!(),
        }
    }

    /// Number of registered metric names.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Render the full exposition: `# HELP`/`# TYPE` headers and one
    /// sample line per value, deterministically ordered (names sorted,
    /// label tuples sorted within a family).
    pub fn render(&self) -> String {
        // Snapshot the entry list first so sample reads happen outside
        // the registry lock (children hold their own state).
        let snapshot: Vec<(String, String, Entry)> = {
            let entries = self.entries.lock();
            entries
                .iter()
                .map(|(name, (help, entry))| {
                    let dup = match entry {
                        Entry::Counter(c) => Entry::Counter(c.clone()),
                        Entry::Gauge(g) => Entry::Gauge(g.clone()),
                        Entry::Histogram(h) => Entry::Histogram(h.clone()),
                        Entry::CounterFamily(f) => Entry::CounterFamily(f.clone()),
                        Entry::GaugeFamily(f) => Entry::GaugeFamily(f.clone()),
                        Entry::HistogramFamily(f) => Entry::HistogramFamily(f.clone()),
                    };
                    (name.clone(), help.clone(), dup)
                })
                .collect()
        };
        let mut out = String::new();
        for (name, help, entry) in &snapshot {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(entry.kind());
            out.push('\n');
            match entry {
                Entry::Counter(c) => sample_u64(&mut out, name, "", c.get()),
                Entry::Gauge(g) => sample_i64(&mut out, name, "", g.get()),
                Entry::Histogram(h) => summary(&mut out, name, "", &h.snapshot()),
                Entry::CounterFamily(f) => {
                    for (values, child) in f.snapshot_children() {
                        let labels = fmt_labels(&f.label_names, &values);
                        sample_u64(&mut out, name, &labels, child.get());
                    }
                }
                Entry::GaugeFamily(f) => {
                    for (values, child) in f.snapshot_children() {
                        let labels = fmt_labels(&f.label_names, &values);
                        sample_i64(&mut out, name, &labels, child.get());
                    }
                }
                Entry::HistogramFamily(f) => {
                    for (values, child) in f.snapshot_children() {
                        let labels = fmt_labels(&f.label_names, &values);
                        summary(&mut out, name, &labels, &child.snapshot());
                    }
                }
            }
        }
        out
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

// "l1=\"v1\",l2=\"v2\"" (no surrounding braces — callers may append
// more labels, e.g. the summary quantile).
fn fmt_labels(names: &[&'static str], values: &[String]) -> String {
    let mut out = String::new();
    for (name, value) in names.iter().zip(values) {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape_label(value));
        out.push('"');
    }
    out
}

fn sample_key(out: &mut String, name: &str, labels: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
}

fn sample_u64(out: &mut String, name: &str, labels: &str, value: u64) {
    sample_key(out, name, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn sample_i64(out: &mut String, name: &str, labels: &str, value: i64) {
    sample_key(out, name, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn summary(out: &mut String, name: &str, labels: &str, histogram: &Histogram) {
    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
        let mut with_q = labels.to_string();
        if !with_q.is_empty() {
            with_q.push(',');
        }
        with_q.push_str("quantile=\"");
        with_q.push_str(tag);
        with_q.push('"');
        sample_u64(out, name, &with_q, histogram.quantile(q));
    }
    sample_u64(out, &format!("{name}_sum"), labels, histogram.sum());
    sample_u64(out, &format!("{name}_count"), labels, histogram.len());
}

/// Parse an exposition back into `(sample_key, value)` pairs, in file
/// order. Comment (`#`) and blank lines are skipped; every other line
/// must be `key value` with a grammar-valid metric name and a numeric
/// value. Used by the CI smoke check and the live example to validate
/// their own `/metrics` scrapes.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = split_sample(line)
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let name = key.split('{').next().unwrap_or(key);
        if !valid_metric_name(name) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value {value:?}", lineno + 1))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

// Split "key value" at the first space outside quoted label values.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (idx, ch) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes => {
                let value = line[idx..].trim_start();
                if value.is_empty() {
                    return None;
                }
                return Some((&line[..idx], value));
            }
            _ => {}
        }
    }
    None
}

/// The keys in `samples` that the exposition convention marks as
/// monotone: base name ending in `_total` or `_count`. The CI smoke
/// check asserts these never decrease between two scrapes.
pub fn monotone_keys(samples: &[(String, f64)]) -> Vec<&str> {
    samples
        .iter()
        .filter(|(key, _)| {
            let name = key.split('{').next().unwrap_or(key);
            name.ends_with("_total") || name.ends_with("_count")
        })
        .map(|(key, _)| key.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_metric_observes_and_snapshots() {
        let h = HistogramMetric::new();
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.max(), 30);

        let mut seeded = Histogram::new();
        seeded.record(7);
        h.set_snapshot(&seeded);
        assert_eq!(h.snapshot().len(), 1);
    }

    #[test]
    fn family_children_are_shared_per_label_tuple() {
        let registry = Registry::new();
        let family =
            registry.register_counter_family("wsg_test_family_total", "Testing.", &["style"]);
        family.with(&["push"]).add(2);
        family.with(&["push"]).inc();
        family.with(&["pull"]).inc();
        assert_eq!(family.with(&["push"]).get(), 3);
        assert_eq!(family.with(&["pull"]).get(), 1);
        assert_eq!(family.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label values")]
    fn family_rejects_wrong_arity() {
        let registry = Registry::new();
        let family = registry.register_counter_family("wsg_test_arity_total", "Testing.", &["a"]);
        family.with(&["x", "y"]);
    }

    #[test]
    fn register_is_get_or_register() {
        let registry = Registry::new();
        let a = registry.register_counter("wsg_test_shared_total", "Testing.");
        let b = registry.register_counter("wsg_test_shared_total", "Testing.");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let registry = Registry::new();
        registry.register_counter("wsg_test_kind", "Testing.");
        registry.register_gauge("wsg_test_kind", "Testing.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().register_counter("Bad-Name", "Testing.");
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("wsg_gossip_payloads_sent_total"));
        assert!(valid_metric_name("a"));
        assert!(valid_metric_name("a0_b1"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("0abc"));
        assert!(!valid_metric_name("_abc"));
        assert!(!valid_metric_name("Abc"));
        assert!(!valid_metric_name("abc-def"));
        assert!(!valid_metric_name("abc.def"));
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let build = || {
            let registry = Registry::new();
            // Register in one order...
            registry.register_counter("wsg_test_zeta_total", "Last alphabetically.").add(1);
            registry.register_gauge("wsg_test_alpha", "First alphabetically.").set(-4);
            let fam = registry.register_counter_family(
                "wsg_test_mid_total",
                "Middle.",
                &["style", "peer"],
            );
            fam.with(&["pull", "n2"]).add(2);
            fam.with(&["eager", "n1"]).add(9);
            registry
        };
        let one = build().render();
        let registry = Registry::new();
        // ...and in the reverse order: identical exposition.
        let fam =
            registry.register_counter_family("wsg_test_mid_total", "Middle.", &["style", "peer"]);
        fam.with(&["eager", "n1"]).add(9);
        fam.with(&["pull", "n2"]).add(2);
        registry.register_gauge("wsg_test_alpha", "First alphabetically.").set(-4);
        registry.register_counter("wsg_test_zeta_total", "Last alphabetically.").add(1);
        let two = registry.render();
        assert_eq!(one, two);

        let alpha = one.find("wsg_test_alpha").unwrap();
        let mid = one.find("wsg_test_mid_total").unwrap();
        let zeta = one.find("wsg_test_zeta_total").unwrap();
        assert!(alpha < mid && mid < zeta, "names must render sorted");
        let eager = one.find("style=\"eager\"").unwrap();
        let pull = one.find("style=\"pull\"").unwrap();
        assert!(eager < pull, "label tuples must render sorted");
        assert!(one.contains("wsg_test_alpha -4\n"));
    }

    #[test]
    fn summaries_render_quantiles_sum_and_count() {
        let registry = Registry::new();
        let h = registry.register_histogram("wsg_test_latency_micros", "Testing.");
        for v in [100u64, 200, 400] {
            h.observe(v);
        }
        let text = registry.render();
        assert!(text.contains("# TYPE wsg_test_latency_micros summary\n"));
        assert!(text.contains("wsg_test_latency_micros{quantile=\"0.5\"}"));
        assert!(text.contains("wsg_test_latency_micros{quantile=\"0.99\"}"));
        assert!(text.contains("wsg_test_latency_micros_sum 700\n"));
        assert!(text.contains("wsg_test_latency_micros_count 3\n"));

        let fam = registry.register_histogram_family(
            "wsg_test_rounds",
            "Testing.",
            &["style"],
        );
        fam.with(&["push"]).observe(3);
        let text = registry.render();
        assert!(text.contains("wsg_test_rounds{style=\"push\",quantile=\"0.5\"}"));
        assert!(text.contains("wsg_test_rounds_count{style=\"push\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        let fam = registry.register_counter_family("wsg_test_escape_total", "Testing.", &["v"]);
        fam.with(&["a\"b\\c\nd"]).inc();
        let text = registry.render();
        assert!(text.contains("v=\"a\\\"b\\\\c\\nd\""), "got: {text}");
        // And it still round-trips through the parser.
        let samples = parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|(k, v)| k.contains("wsg_test_escape_total") && *v == 1.0));
    }

    #[test]
    fn parse_exposition_round_trips_a_render() {
        let registry = Registry::new();
        registry.register_counter("wsg_test_posts_total", "Testing.").add(11);
        registry.register_gauge("wsg_test_pool", "Testing.").set(-2);
        let h = registry.register_histogram("wsg_test_micros", "Testing.");
        h.observe(50);
        let samples = parse_exposition(&registry.render()).unwrap();
        assert!(samples.contains(&("wsg_test_posts_total".to_string(), 11.0)));
        assert!(samples.contains(&("wsg_test_pool".to_string(), -2.0)));
        assert!(samples.iter().any(|(k, _)| k == "wsg_test_micros_count"));
    }

    #[test]
    fn parse_exposition_rejects_garbage() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("BadName 3\n").is_err());
        assert!(parse_exposition("name notanumber\n").is_err());
        assert_eq!(parse_exposition("# just a comment\n\n").unwrap(), vec![]);
    }

    #[test]
    fn monotone_keys_selects_totals_and_counts() {
        let samples = vec![
            ("wsg_a_total".to_string(), 1.0),
            ("wsg_b_count{style=\"x\"}".to_string(), 2.0),
            ("wsg_c_micros{quantile=\"0.5\"}".to_string(), 3.0),
            ("wsg_d_pool".to_string(), 4.0),
        ];
        let keys = monotone_keys(&samples);
        assert_eq!(keys, vec!["wsg_a_total", "wsg_b_count{style=\"x\"}"]);
    }
}
