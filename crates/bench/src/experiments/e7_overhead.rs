//! E7 — message overhead and redundancy (paper §2: reliability comes from
//! "redundancy and randomization"): what the redundancy costs, how it
//! grows with `f`, and how lazy push trades latency for payload copies.

use wsg_gossip::{analysis, GossipParams, GossipStyle};
use wsg_net::sim::SimConfig;
use wsg_net::NodeId;

use super::{gossip_net, summarize};

/// One row of the E7 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Fanout swept.
    pub fanout: usize,
    /// Coverage achieved (eager push).
    pub coverage: f64,
    /// Payload copies sent per node reached — eager push (simulated).
    pub eager_redundancy: f64,
    /// Mean-field predicted redundancy.
    pub predicted_redundancy: f64,
    /// Payload copies per node reached — lazy push (simulated).
    pub lazy_redundancy: f64,
    /// Control messages (IHAVE/IWANT) per node reached — lazy push.
    pub lazy_control: f64,
}

/// Sweep fanout at fixed n and rounds.
///
/// Each fanout contributes two independent cells — the eager and the lazy
/// run — fanned out via [`crate::sweep::map`].
pub fn sweep(n: usize, fanouts: &[usize], rounds: u32, seed: u64) -> Vec<Row> {
    let cells: Vec<(usize, GossipStyle)> = fanouts
        .iter()
        .flat_map(|&f| [(f, GossipStyle::EagerPush), (f, GossipStyle::LazyPush)])
        .collect();
    let outcomes = crate::sweep::map(&cells, |&(fanout, style)| {
        let params = GossipParams::new(fanout, rounds);
        let mut net = gossip_net(n, style, &params, SimConfig::default().seed(seed));
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_to_quiescence();
        let outcome = summarize(&net, n);
        let control: u64 = (0..n)
            .map(|i| {
                let s = net.node(NodeId(i)).stats();
                s.ihave_sent + s.iwant_sent
            })
            .sum();
        (outcome, control)
    });
    fanouts
        .iter()
        .zip(outcomes.chunks(2))
        .map(|(&fanout, pair)| {
            let (eager_out, _) = &pair[0];
            let (lazy_out, lazy_control) = &pair[1];
            let eager_reached = (eager_out.coverage * n as f64).max(1.0);
            let lazy_reached = (lazy_out.coverage * n as f64).max(1.0);
            Row {
                fanout,
                coverage: eager_out.coverage,
                eager_redundancy: eager_out.payloads as f64 / eager_reached,
                predicted_redundancy: analysis::expected_redundancy(n, fanout, rounds),
                lazy_redundancy: lazy_out.payloads as f64 / lazy_reached,
                lazy_control: *lazy_control as f64 / lazy_reached,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_grows_with_fanout_lazy_stays_near_one() {
        let rows = sweep(128, &[2, 4, 8], 12, 3);
        assert!(rows[2].eager_redundancy > rows[0].eager_redundancy);
        // Eager at f=8 sends ~8 copies per infection; lazy ships ~1 payload.
        assert!(rows[2].eager_redundancy > 4.0, "eager {}", rows[2].eager_redundancy);
        assert!(rows[2].lazy_redundancy < 2.5, "lazy {}", rows[2].lazy_redundancy);
        // Lazy pays for it in control traffic instead.
        assert!(rows[2].lazy_control > rows[2].lazy_redundancy);
    }

    #[test]
    fn prediction_tracks_simulation_at_high_coverage() {
        let rows = sweep(128, &[8], 12, 5);
        let row = &rows[0];
        assert!(row.coverage > 0.99);
        let ratio = row.eager_redundancy / row.predicted_redundancy;
        assert!((0.5..2.0).contains(&ratio), "sim {} vs pred {}", row.eager_redundancy, row.predicted_redundancy);
    }
}
