//! E9 — membership churn under load: a live `wsg_cluster` fleet on
//! loopback sockets absorbing crash-stops and late joins while a
//! publication stream is in flight.
//!
//! Where E8 prices the socket transport for a *static* fleet, E9 measures
//! the dynamic-membership machinery built on top of it: how long heartbeat
//! gossip takes to converge a freshly-bootstrapped view, how fast φ
//! accrual plus refused-connection evidence detects unannounced crashes,
//! and whether dissemination keeps reaching every live member while the
//! view shifts underneath it.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use ws_gossip::WsGossipNode;
use wsg_cluster::{ClusterConfig, ClusterRuntime, MembershipPlane};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::NetRuntimeConfig;
use wsg_http::server::HttpServerConfig;
use wsg_net::{NodeId, PeerLiveness, SimDuration};
use wsg_xml::Element;

/// Shape of one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnScenario {
    /// Subscribers deployed at the start (besides coordinator+initiator).
    pub subscribers: usize,
    /// Subscribers crash-stopped mid-stream (taken from the tail).
    pub crashes: usize,
    /// Consumers joining through the seed after the crashes.
    pub joins: usize,
    /// Payloads the initiator publishes.
    pub ticks: usize,
    /// Publish cadence in milliseconds.
    pub publish_interval_ms: u64,
    /// Membership heartbeat interval in milliseconds.
    pub heartbeat_interval_ms: u64,
}

/// What one churn run measured.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOutcome {
    /// Nodes deployed at the start.
    pub fleet: usize,
    /// Milliseconds for every starting member to see the full fleet.
    pub convergence_ms: u64,
    /// Milliseconds for every survivor to call all crashed members dead.
    pub detection_ms: u64,
    /// Milliseconds for the post-churn view to be agreed by all.
    pub agreement_ms: u64,
    /// Original subscribers that survived and delivered the full stream.
    pub complete_survivors: usize,
    /// Original subscribers that survived the crashes.
    pub surviving_subscribers: usize,
    /// Joiners that received the final tick of the stream.
    pub joiners_caught_up: usize,
    /// Joiners deployed.
    pub joiners: usize,
}

fn poll_until(mut cond: impl FnMut() -> bool, what: &str) -> u64 {
    let started = crate::timing::now();
    for _ in 0..1200 {
        if cond() {
            return started.elapsed().as_millis() as u64;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("E9 timed out waiting for {what}");
}

fn live_set(plane: &Arc<MembershipPlane>) -> BTreeSet<NodeId> {
    plane.live_members().into_iter().collect()
}

/// Run one churn scenario over real loopback sockets.
pub fn churn(scenario: ChurnScenario, seed: u64) -> ChurnOutcome {
    let ChurnScenario {
        subscribers,
        crashes,
        joins,
        ticks,
        publish_interval_ms,
        heartbeat_interval_ms,
    } = scenario;
    assert!(crashes < subscribers, "someone must survive");
    let fleet_size = 2 + subscribers;

    let payloads: Vec<Element> = (0..ticks)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();
    // Saturating fanout: any delivery gap indicts the membership plane,
    // not gossip's probabilistic tail.
    let policy = GossipPolicy::new(GossipParams::new(fleet_size + joins, 6));
    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..HttpClientConfig::default()
        },
        server: HttpServerConfig {
            workers: 4,
            read_slice: Duration::from_millis(2),
            ..HttpServerConfig::default()
        },
        ..NetRuntimeConfig::default()
    };

    let mut fleet: ClusterRuntime<WsGossipNode> = ClusterRuntime::new(
        seed,
        config,
        ClusterConfig::for_interval(SimDuration::from_millis(heartbeat_interval_ms)),
    );
    let coordinator = fleet.add_seed(|plane| {
        WsGossipNode::coordinator(NodeId(0)).with_policy(policy.clone()).with_liveness(plane)
    });
    fleet
        .add_node(coordinator, |plane| {
            WsGossipNode::initiator(NodeId(1), coordinator)
                .with_publish_schedule(
                    "quotes",
                    payloads,
                    SimDuration::from_millis(publish_interval_ms),
                )
                .with_liveness(plane)
        })
        .expect("initiator joins");
    for i in 2..fleet_size {
        fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::disseminator(NodeId(i), coordinator)
                    .with_auto_subscribe("quotes")
                    .with_liveness(plane)
            })
            .expect("subscriber joins");
    }

    let everyone: BTreeSet<NodeId> = (0..fleet_size).map(NodeId).collect();
    let convergence_ms = poll_until(
        || everyone.iter().all(|id| live_set(&fleet.plane(*id)) == everyone),
        "initial convergence",
    );

    let crashed: Vec<NodeId> = (fleet_size - crashes..fleet_size).map(NodeId).collect();
    for id in &crashed {
        fleet.crash(*id).expect("crash a live subscriber");
    }
    let survivors: BTreeSet<NodeId> = (0..fleet_size - crashes).map(NodeId).collect();
    let detection_ms = poll_until(
        || {
            survivors
                .iter()
                .all(|id| crashed.iter().all(|dead| !fleet.plane(*id).is_live(*dead)))
        },
        "crash detection",
    );

    let mut joined = Vec::new();
    for i in 0..joins {
        let id = fleet
            .add_node(coordinator, move |plane| {
                WsGossipNode::consumer(NodeId(fleet_size + i), coordinator)
                    .with_auto_subscribe("quotes")
                    .with_liveness(plane)
            })
            .expect("late join");
        joined.push(id);
    }
    let live: BTreeSet<NodeId> = survivors.iter().copied().chain(joined.clone()).collect();
    let agreement_ms = poll_until(
        || live.iter().all(|id| live_set(&fleet.plane(*id)) == live),
        "post-churn agreement",
    );

    // Let the stream run out plus a grace period for the closing rounds.
    std::thread::sleep(Duration::from_millis(publish_interval_ms * ticks as u64 + 1500));
    let finished = fleet.shutdown();

    let endpoint_of = ws_gossip::endpoint::endpoint_of;
    let complete_survivors = (2..fleet_size - crashes)
        .map(NodeId)
        .filter(|id| {
            finished
                .iter()
                .find(|n| n.protocol.endpoint() == endpoint_of(*id))
                .is_some_and(|n| n.protocol.distinct_ops().len() == ticks)
        })
        .count();
    let joiners_caught_up = joined
        .iter()
        .filter(|id| {
            finished
                .iter()
                .find(|n| n.protocol.endpoint() == endpoint_of(**id))
                .is_some_and(|n| {
                    n.protocol.distinct_ops().iter().map(|op| op.seq).max()
                        == Some(ticks as u64 - 1)
                })
        })
        .count();

    ChurnOutcome {
        fleet: fleet_size,
        convergence_ms,
        detection_ms,
        agreement_ms,
        complete_survivors,
        surviving_subscribers: subscribers - crashes,
        joiners_caught_up,
        joiners: joins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_churn_run_completes() {
        let outcome = churn(
            ChurnScenario {
                subscribers: 4,
                crashes: 1,
                joins: 1,
                ticks: 3,
                publish_interval_ms: 200,
                heartbeat_interval_ms: 40,
            },
            11,
        );
        assert_eq!(outcome.fleet, 6);
        assert_eq!(outcome.surviving_subscribers, 3);
        assert_eq!(
            outcome.complete_survivors, outcome.surviving_subscribers,
            "survivors must deliver the full stream: {outcome:?}"
        );
        assert_eq!(outcome.joiners, 1);
    }
}
