//! E4 — resilience (paper §2: "highly resilient to network and process
//! faults"): survivor coverage under crash and loss sweeps, gossip vs the
//! dissemination tree vs best-effort central unicast.

use wsg_baselines::{DirectNode, TreeNode};
use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::faults::FaultSchedule;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, SimDuration, SimTime};

use super::eager_net;

/// One row of an E4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Fault intensity: crash fraction or loss probability.
    pub fault: f64,
    /// Survivor coverage of eager-push gossip.
    pub gossip: f64,
    /// Survivor coverage of the binary dissemination tree.
    pub tree: f64,
    /// Survivor coverage of best-effort direct unicast.
    pub direct: f64,
}

fn crashed_set(n: usize, fraction: f64) -> Vec<NodeId> {
    // Deterministic, well-spread victim set excluding the origin (node 0).
    let victims = ((n as f64) * fraction).round() as usize;
    (0..victims).map(|i| NodeId(1 + (i * 7919) % (n - 1))).collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .take(victims)
        .collect()
}

fn survivor_coverage(reached: &[bool], crashed: &[NodeId], n: usize) -> f64 {
    let crashed: std::collections::HashSet<usize> = crashed.iter().map(|c| c.0).collect();
    let survivors: Vec<usize> = (0..n).filter(|i| !crashed.contains(i)).collect();
    survivors.iter().filter(|i| reached[**i]).count() as f64 / survivors.len() as f64
}

/// Crash sweep: fraction of crashed processes vs survivor coverage.
///
/// `(fraction, seed)` cells run in parallel; the per-fraction reduction
/// sums the three survivor coverages in seed order (bit-identical to the
/// old serial accumulation).
pub fn crash_sweep(n: usize, fractions: &[f64], seeds: u64) -> Vec<Row> {
    let params = GossipParams::atomic_for(n);
    let cells: Vec<(f64, u64)> =
        fractions.iter().flat_map(|&f| (0..seeds).map(move |seed| (f, seed))).collect();
    let coverages = crate::sweep::map(&cells, |&(fraction, seed)| {
        let crashed = crashed_set(n, fraction);
        let config = || SimConfig::default().seed(seed * 31 + 1);

        // gossip
        let mut g = eager_net(n, &params, config());
        for c in &crashed {
            g.crash(*c);
        }
        g.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        g.run_to_quiescence();
        let reached: Vec<bool> =
            (0..n).map(|i| !g.node(NodeId(i)).delivered().is_empty()).collect();
        let gossip = survivor_coverage(&reached, &crashed, n);

        // tree
        let mut t = SimNet::new(config());
        t.add_nodes(n, |id| TreeNode::<u64>::new(id, n, 2));
        t.start();
        for c in &crashed {
            t.crash(*c);
        }
        t.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        t.run_to_quiescence();
        let reached: Vec<bool> =
            (0..n).map(|i| !t.node(NodeId(i)).delivered().is_empty()).collect();
        let tree = survivor_coverage(&reached, &crashed, n);

        // direct
        let mut d = SimNet::new(config());
        d.add_nodes(n, |id| {
            if id.index() == 0 {
                DirectNode::<u64>::new((1..n).map(NodeId).collect())
            } else {
                DirectNode::new(Vec::new())
            }
        });
        d.start();
        for c in &crashed {
            d.crash(*c);
        }
        d.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        d.run_to_quiescence();
        let reached: Vec<bool> =
            (0..n).map(|i| i == 0 || !d.node(NodeId(i)).delivered().is_empty()).collect();
        let direct = survivor_coverage(&reached, &crashed, n);

        (gossip, tree, direct)
    });
    fractions
        .iter()
        .zip(coverages.chunks(seeds as usize))
        .map(|(&fraction, per_seed)| {
            let mut sums = (0.0, 0.0, 0.0);
            for &(gossip, tree, direct) in per_seed {
                sums.0 += gossip;
                sums.1 += tree;
                sums.2 += direct;
            }
            Row {
                fault: fraction,
                gossip: sums.0 / seeds as f64,
                tree: sums.1 / seeds as f64,
                direct: sums.2 / seeds as f64,
            }
        })
        .collect()
}

/// Loss sweep: per-message loss probability vs coverage (no crashes).
pub fn loss_sweep(n: usize, losses: &[f64], seeds: u64) -> Vec<Row> {
    let params = GossipParams::atomic_for(n);
    let cells: Vec<(f64, u64)> =
        losses.iter().flat_map(|&loss| (0..seeds).map(move |seed| (loss, seed))).collect();
    let coverages = crate::sweep::map(&cells, |&(loss, seed)| {
        let config = || SimConfig::default().seed(seed * 77 + 3).drop_probability(loss);

        let g = super::run_once(eager_net(n, &params, config()), n);
        let gossip = g.coverage;

        let mut t = SimNet::new(config());
        t.add_nodes(n, |id| TreeNode::<u64>::new(id, n, 2));
        t.start();
        t.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        t.run_to_quiescence();
        let tree = (0..n).filter(|i| !t.node(NodeId(*i)).delivered().is_empty()).count() as f64
            / n as f64;

        let mut d = SimNet::new(config());
        d.add_nodes(n, |id| {
            if id.index() == 0 {
                DirectNode::<u64>::new((1..n).map(NodeId).collect())
            } else {
                DirectNode::new(Vec::new())
            }
        });
        d.start();
        d.invoke(NodeId(0), |node, ctx| node.publish(1, ctx));
        d.run_to_quiescence();
        let direct_reached =
            1 + (1..n).filter(|i| !d.node(NodeId(*i)).delivered().is_empty()).count();
        let direct = direct_reached as f64 / n as f64;

        (gossip, tree, direct)
    });
    losses
        .iter()
        .zip(coverages.chunks(seeds as usize))
        .map(|(&loss, per_seed)| {
            let mut sums = (0.0, 0.0, 0.0);
            for &(gossip, tree, direct) in per_seed {
                sums.0 += gossip;
                sums.1 += tree;
                sums.2 += direct;
            }
            Row {
                fault: loss,
                gossip: sums.0 / seeds as f64,
                tree: sums.1 / seeds as f64,
                direct: sums.2 / seeds as f64,
            }
        })
        .collect()
}

/// One row of the E4(c) churn comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRow {
    /// Gossip style compared.
    pub style: GossipStyle,
    /// Mean fraction of messages eventually held by each node that was
    /// ever down during the run (did the protocol repair them?).
    pub churned_node_coverage: f64,
    /// Mean fraction held by never-down nodes.
    pub stable_node_coverage: f64,
}

/// E4(c): continuous churn — one node crashes every `period`, down for
/// `downtime`, while `messages` are published. Push-pull repairs nodes
/// that were down at publish time; plain eager push cannot.
pub fn churn_comparison(n: usize, messages: u64, seed: u64) -> Vec<ChurnRow> {
    let styles = [GossipStyle::EagerPush, GossipStyle::PushPull];
    crate::sweep::map(&styles, |&style| {
            let params = GossipParams::atomic_for(n);
            let mut net = SimNet::new(SimConfig::default().seed(seed));
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u64>::new(
                    GossipConfig::new(style, params.clone())
                        .interval(SimDuration::from_millis(100)),
                    peers,
                )
            });
            net.start();
            // Churn pool excludes the publisher.
            let pool: Vec<NodeId> = (1..n).map(NodeId).collect();
            let horizon = SimTime::from_secs(2 + messages / 2);
            let schedule = FaultSchedule::new().churn(
                &pool,
                SimTime::from_millis(200),
                horizon,
                SimDuration::from_millis(400),
                SimDuration::from_secs(2),
                seed * 3 + 1,
            );
            // Interleave publications with the fault script by running in
            // small steps.
            let mut published = 0u64;
            let mut t = SimTime::ZERO;
            while t < horizon {
                t += SimDuration::from_millis(500);
                schedule.run(&mut net, t);
                if published < messages {
                    let value = published;
                    net.invoke(NodeId(0), move |e, ctx| {
                        e.publish(value, ctx);
                    });
                    published += 1;
                }
            }
            // Everyone is eventually up; give pull time to repair.
            for id in net.node_ids() {
                net.recover(id);
            }
            schedule.run(&mut net, horizon + SimDuration::from_secs(20));

            let churned = schedule.victims();
            let mut churned_cov = (0.0, 0usize);
            let mut stable_cov = (0.0, 0usize);
            for i in 1..n {
                let id = NodeId(i);
                let held = net.node(id).delivered().len() as f64 / messages as f64;
                if churned.contains(&id) {
                    churned_cov.0 += held;
                    churned_cov.1 += 1;
                } else {
                    stable_cov.0 += held;
                    stable_cov.1 += 1;
                }
            }
            ChurnRow {
                style,
                churned_node_coverage: churned_cov.0 / churned_cov.1.max(1) as f64,
                stable_node_coverage: stable_cov.0 / stable_cov.1.max(1) as f64,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_dominates_under_crashes() {
        let rows = crash_sweep(64, &[0.0, 0.3], 3);
        let clean = &rows[0];
        assert!(clean.gossip > 0.99 && clean.tree > 0.99 && clean.direct > 0.99);
        let faulty = &rows[1];
        assert!(faulty.gossip > 0.9, "gossip {}", faulty.gossip);
        assert!(faulty.gossip > faulty.tree + 0.1, "tree should collapse");
    }

    #[test]
    fn gossip_dominates_under_loss() {
        let rows = loss_sweep(64, &[0.3], 3);
        let row = &rows[0];
        assert!(row.gossip > row.direct + 0.1, "gossip {} direct {}", row.gossip, row.direct);
        assert!(row.gossip > row.tree, "gossip {} tree {}", row.gossip, row.tree);
    }

    #[test]
    fn churn_pushpull_repairs_eager_does_not() {
        let rows = churn_comparison(48, 8, 3);
        let eager = rows.iter().find(|r| r.style == GossipStyle::EagerPush).unwrap();
        let pushpull = rows.iter().find(|r| r.style == GossipStyle::PushPull).unwrap();
        assert!(
            pushpull.churned_node_coverage > 0.99,
            "push-pull churned coverage {}",
            pushpull.churned_node_coverage
        );
        assert!(
            pushpull.churned_node_coverage > eager.churned_node_coverage + 0.05,
            "push-pull {} vs eager {}",
            pushpull.churned_node_coverage,
            eager.churned_node_coverage
        );
        assert!(eager.stable_node_coverage > 0.95);
    }

    #[test]
    fn crashed_set_is_deterministic_and_excludes_origin() {
        let a = crashed_set(100, 0.3);
        let b = crashed_set(100, 0.3);
        assert_eq!(a, b);
        assert!(!a.contains(&NodeId(0)));
        assert!(a.len() >= 28 && a.len() <= 30);
    }
}
