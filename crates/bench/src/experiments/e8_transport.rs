//! E8 — the price of real sockets: SOAP-over-HTTP round-trip latency by
//! payload size, and a live dissemination run over `wsg_http::NetRuntime`
//! compared against what the channel-backed thread runtime gets for free.
//!
//! This is the transport companion to E5 (throughput in virtual time):
//! instead of simulated costs, every number here is wall-clock time spent
//! moving serialized envelopes through the loopback TCP stack.

use std::sync::Arc;
use std::time::Duration;

use ws_gossip::{Role, WsGossipNode};
use wsg_coord::GossipPolicy;
use wsg_gossip::GossipParams;
use wsg_http::client::{HttpClientConfig, SoapHttpClient};
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig};
use wsg_http::server::{HttpServerConfig, SoapHttpServer, SoapReply};
use wsg_net::{NodeId, SimDuration};
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

use crate::timing::{bench_with_param, Measurement};

/// One payload-size row of the round-trip table.
#[derive(Debug, Clone, Copy)]
pub struct RoundtripRow {
    /// Payload bytes inside the envelope body.
    pub payload_bytes: usize,
    /// Bytes of the serialized envelope actually POSTed.
    pub wire_bytes: usize,
    /// Timing statistics for one POST + 202 round trip.
    pub measurement: Measurement,
}

/// Measure POST round trips against a local accept-only endpoint for each
/// payload size, over a kept-alive pooled connection.
#[allow(clippy::result_large_err)] // the accept-only Service returns Fault by value
pub fn roundtrips(payload_sizes: &[usize]) -> Vec<RoundtripRow> {
    let mut server = SoapHttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_req| Ok(SoapReply::Accepted)),
        HttpServerConfig::default(),
    )
    .expect("bind bench server");
    let client = SoapHttpClient::new(8, HttpClientConfig::default());
    let addr = server.local_addr();

    let rows = payload_sizes
        .iter()
        .map(|&size| {
            let payload = "x".repeat(size);
            let xml = Envelope::request(
                MessageHeaders::request("http://bench/gossip", "urn:bench:Notify"),
                Element::text_node("blob", payload),
            )
            .to_xml();
            let cell_started = crate::timing::now();
            let measurement = bench_with_param("http_roundtrip_bytes", size, || {
                client
                    .post(addr, "/gossip", Some("urn:bench:Notify"), &[], xml.as_bytes())
                    .expect("bench post")
                    .response
                    .status
            });
            crate::sweep::record_cell(cell_started.elapsed().as_nanos() as u64);
            RoundtripRow { payload_bytes: size, wire_bytes: xml.len(), measurement }
        })
        .collect();
    server.shutdown();
    rows
}

/// Outcome of one live dissemination over loopback sockets.
#[derive(Debug, Clone, Copy)]
pub struct DisseminationOutcome {
    /// Total nodes deployed (coordinator + initiator + subscribers).
    pub nodes: usize,
    /// Subscribers that received the complete feed.
    pub complete_subscribers: usize,
    /// Subscribers deployed.
    pub subscribers: usize,
    /// HTTP POSTs that got a success status (batches count once).
    pub posts_ok: u64,
    /// HTTP POSTs abandoned after retries.
    pub posts_failed: u64,
    /// Envelopes delivered (each batched message counts individually).
    pub msgs_ok: u64,
    /// POSTs avoided by coalescing (`msgs_ok - posts_ok`).
    pub posts_saved: u64,
    /// Wall-clock milliseconds the network ran.
    pub elapsed_ms: u64,
}

/// Run a full WS-Gossip deployment (`subscribers` + coordinator +
/// initiator) over real sockets: the initiator publishes `ticks` payloads
/// and the network runs for `run_ms` of wall time. Uses the default
/// per-peer envelope batching cap ([`wsg_http::BatchConfig::default`]).
pub fn dissemination(subscribers: usize, ticks: usize, seed: u64, run_ms: u64) -> DisseminationOutcome {
    let default_cap = wsg_http::BatchConfig::default().max_batch_msgs;
    dissemination_with_cap(subscribers, ticks, seed, run_ms, default_cap)
}

/// [`dissemination`] with an explicit `max_batch_msgs` coalescing cap —
/// `1` disables wire batching entirely (every envelope is its own POST),
/// which is the pre-batching baseline E10 sweeps against.
pub fn dissemination_with_cap(
    subscribers: usize,
    ticks: usize,
    seed: u64,
    run_ms: u64,
    max_batch_msgs: usize,
) -> DisseminationOutcome {
    let coordinator = NodeId(0);
    let payloads: Vec<Element> = (0..ticks)
        .map(|i| Element::text_node("tick", format!("ACME {}", 100 + i)))
        .collect();

    let mut nodes = vec![
        WsGossipNode::coordinator(coordinator)
            .with_policy(GossipPolicy::new(GossipParams::new(subscribers + 2, 6))),
        WsGossipNode::initiator(NodeId(1), coordinator).with_publish_schedule(
            "quotes",
            payloads,
            SimDuration::from_millis(120),
        ),
    ];
    for i in 0..subscribers {
        nodes.push(
            WsGossipNode::disseminator(NodeId(2 + i), coordinator).with_auto_subscribe("quotes"),
        );
    }
    let total_nodes = nodes.len();

    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        batch: wsg_http::BatchConfig { max_batch_msgs, ..wsg_http::BatchConfig::default() },
        ..NetRuntimeConfig::default()
    };

    let started = crate::timing::now();
    let net = NetRuntime::spawn(nodes, seed, config);
    let finished = net.shutdown_after(Duration::from_millis(run_ms));
    let elapsed_ms = started.elapsed().as_millis() as u64;
    crate::sweep::record_cell(started.elapsed().as_nanos() as u64);

    let complete_subscribers = finished
        .iter()
        .filter(|n| {
            matches!(n.protocol.role(), Role::Disseminator | Role::Consumer)
                && n.protocol.distinct_ops().len() == ticks
        })
        .count();
    DisseminationOutcome {
        nodes: total_nodes,
        complete_subscribers,
        subscribers,
        posts_ok: finished.iter().map(|n| n.transport.posts_ok).sum(),
        posts_failed: finished.iter().map(|n| n.transport.posts_failed).sum(),
        msgs_ok: finished.iter().map(|n| n.transport.msgs_ok).sum(),
        posts_saved: finished.iter().map(|n| n.transport.posts_saved).sum(),
        elapsed_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_measure_and_scale_with_payload() {
        std::env::set_var("WSG_BENCH_FAST", "1");
        let rows = roundtrips(&[16, 1024]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.measurement.min_ns > 0.0);
            assert!(row.wire_bytes > row.payload_bytes, "envelope adds framing");
        }
    }

    #[test]
    fn dissemination_completes_on_a_small_deployment() {
        let outcome = dissemination(4, 2, 9, 1800);
        assert_eq!(outcome.nodes, 6);
        assert_eq!(
            outcome.complete_subscribers, outcome.subscribers,
            "all subscribers should finish: {outcome:?}"
        );
        assert!(outcome.posts_ok > 0);
        assert_eq!(outcome.posts_failed, 0);
        assert!(outcome.msgs_ok >= outcome.posts_ok, "batching never inflates POSTs");
        assert_eq!(outcome.posts_saved, outcome.msgs_ok - outcome.posts_ok);
    }

    #[test]
    fn cap_of_one_disables_coalescing() {
        let outcome = dissemination_with_cap(3, 2, 11, 1500, 1);
        assert_eq!(outcome.complete_subscribers, outcome.subscribers, "{outcome:?}");
        assert_eq!(outcome.posts_saved, 0, "cap 1 means one POST per envelope");
        assert_eq!(outcome.msgs_ok, outcome.posts_ok);
    }
}
