//! E6 — coordinator load (paper §3: a single Coordinator "knows the entire
//! list of subscribers"; §1 demands scalability): how the load on the most
//! loaded node grows with system size for (a) the WS-Gossip coordinator,
//! which only handles control traffic, (b) a centralized broker, which
//! handles every payload, and (c) the average gossip node.

use ws_gossip::scenario::{
    self, build_distributed_network, distributed_initiator, DistributedShape, Figure1Shape,
    COORDINATOR,
};
use wsg_baselines::BrokerNode;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, SimDuration};
use wsg_xml::Element;

/// One row of the E6 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Number of subscribers.
    pub n: usize,
    /// Notifications published.
    pub notifications: u64,
    /// Messages received by the WS-Gossip coordinator (control plane).
    pub coordinator_received: u64,
    /// Messages received by the centralized broker (data plane).
    pub broker_received: u64,
    /// Mean messages received per gossip subscriber (data plane).
    pub gossip_mean_received: f64,
}

/// Outcome of one E6 cell: either the WS-Gossip run or the broker run.
enum CellOutcome {
    WsGossip { coordinator_received: u64, gossip_mean_received: f64 },
    Broker { broker_received: u64 },
}

/// Sweep subscriber counts with `notifications` messages each.
///
/// Each `n` contributes two independent cells (the full WS-Gossip network
/// and the centralized broker), fanned out via [`crate::sweep::map`].
pub fn sweep(ns: &[usize], notifications: u64, seed: u64) -> Vec<Row> {
    let cells: Vec<(usize, bool)> =
        ns.iter().flat_map(|&n| [(n, true), (n, false)]).collect();
    let outcomes = crate::sweep::map(&cells, |&(n, wsg)| {
        if wsg {
            let (coordinator_received, gossip_mean_received) =
                ws_gossip_run(n, notifications, seed);
            CellOutcome::WsGossip { coordinator_received, gossip_mean_received }
        } else {
            CellOutcome::Broker { broker_received: broker_run(n, notifications, seed) }
        }
    });
    ns.iter()
        .zip(outcomes.chunks(2))
        .map(|(&n, pair)| {
            let CellOutcome::WsGossip { coordinator_received, gossip_mean_received } = pair[0]
            else {
                unreachable!("even cells are WS-Gossip runs")
            };
            let CellOutcome::Broker { broker_received } = pair[1] else {
                unreachable!("odd cells are broker runs")
            };
            Row {
                n,
                notifications,
                coordinator_received,
                broker_received,
                gossip_mean_received,
            }
        })
        .collect()
}

fn ws_gossip_run(n: usize, notifications: u64, seed: u64) -> (u64, f64) {
    // Half disseminators, half consumers.
    let shape = Figure1Shape { disseminators: n / 2, consumers: n - n / 2 };
    let mut net = scenario::build_figure1_network(SimConfig::default().seed(seed), shape);
    scenario::subscribe_all(&mut net, "t");
    net.run_to_quiescence();
    scenario::activate(&mut net, "t");
    net.run_to_quiescence();
    for k in 0..notifications {
        scenario::notify(&mut net, "t", Element::text_node("op", k.to_string()));
    }
    net.run_to_quiescence();
    let coordinator_received = net.stats().received_per_node[COORDINATOR.index()];
    let subscriber_received: u64 = net.stats().received_per_node[2..].iter().sum();
    (coordinator_received, subscriber_received as f64 / n as f64)
}

fn broker_run(n: usize, notifications: u64, seed: u64) -> u64 {
    let mut net = SimNet::new(SimConfig::default().seed(seed));
    let subscribers: Vec<NodeId> = (1..=n).map(NodeId).collect();
    net.add_nodes(n + 1, |id| {
        if id.index() == 0 {
            BrokerNode::<u64>::broker(subscribers.clone(), SimDuration::from_millis(50))
        } else {
            BrokerNode::subscriber(NodeId(0))
        }
    });
    net.start();
    for k in 0..notifications {
        net.send_external(NodeId(1), NodeId(0), wsg_baselines::BrokerMsg::Publish(k));
    }
    net.run_to_quiescence();
    net.stats().received_per_node[0]
}

/// One row of the distributed-coordinator table.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRow {
    /// Number of coordinator replicas.
    pub coordinators: usize,
    /// Max messages received by any single coordinator replica.
    pub max_coordinator_received: u64,
    /// Mean messages received per coordinator replica.
    pub mean_coordinator_received: f64,
    /// Max *client-facing* messages (subscribe/register/activate) at any
    /// replica — the load that actually splits across replicas.
    pub max_client_received: u64,
    /// Mean replication-sync messages received per replica — the price of
    /// distribution (constant per replica, independent of client count).
    pub mean_sync_received: f64,
    /// Coverage achieved.
    pub coverage: f64,
}

/// Distributed-coordinator sweep (paper §3's final paragraph): the same
/// workload with the subscriber list maintained across k replicas.
pub fn distributed_sweep(
    n: usize,
    ks: &[usize],
    notifications: u64,
    seed: u64,
) -> Vec<DistributedRow> {
    crate::sweep::map(ks, |&k| {
            let shape = DistributedShape {
                coordinators: k,
                disseminators: n / 2,
                consumers: n - n / 2,
            };
            let mut net = build_distributed_network(SimConfig::default().seed(seed), shape);
            scenario::subscribe_all(&mut net, "t");
            net.run_until(wsg_net::SimTime::from_secs(3));
            let initiator = distributed_initiator(shape);
            net.invoke(initiator, |node, ctx| {
                node.activate(wsg_coord::GossipProtocol::Push, "t", ctx)
            });
            net.run_until(wsg_net::SimTime::from_secs(4));
            for m in 0..notifications {
                net.invoke(initiator, move |node, ctx| {
                    node.notify("t", Element::text_node("op", m.to_string()), ctx)
                });
            }
            net.run_until(wsg_net::SimTime::from_secs(8));
            let loads: Vec<u64> = (0..k)
                .map(|c| net.stats().received_per_node[c])
                .collect();
            let syncs: Vec<u64> =
                (0..k).map(|c| net.node(NodeId(c)).stats().sync_received).collect();
            let client: Vec<u64> = loads
                .iter()
                .zip(&syncs)
                .map(|(total, sync)| total - sync)
                .collect();
            DistributedRow {
                coordinators: k,
                max_coordinator_received: loads.iter().copied().max().unwrap_or(0),
                mean_coordinator_received: loads.iter().sum::<u64>() as f64 / k as f64,
                max_client_received: client.iter().copied().max().unwrap_or(0),
                mean_sync_received: syncs.iter().sum::<u64>() as f64 / k as f64,
                coverage: scenario::coverage(&net, 1),
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_load_scales_with_data_coordinator_does_not() {
        let rows = sweep(&[8, 32], 10, 1);
        let (small, large) = (&rows[0], &rows[1]);
        // Broker receives ~ n acks per message (plus publishes).
        assert!(large.broker_received >= 10 * 32, "broker {}", large.broker_received);
        assert!(large.broker_received as f64 >= small.broker_received as f64 * 3.0);
        // The coordinator's control-plane load does NOT multiply with the
        // number of notifications: once registered, no per-message calls.
        assert!(
            large.coordinator_received < large.broker_received,
            "coordinator {} vs broker {}",
            large.coordinator_received,
            large.broker_received
        );
        // Gossip subscribers each carry a bounded share of the data plane.
        assert!(large.gossip_mean_received >= 10.0, "subscribers saw every message");
    }

    #[test]
    fn distributed_replicas_split_subscription_load_and_still_cover() {
        let rows = distributed_sweep(24, &[1, 3], 3, 5);
        assert!(rows[0].coverage >= 0.99, "k=1 coverage {}", rows[0].coverage);
        assert!(rows[1].coverage >= 0.99, "k=3 coverage {}", rows[1].coverage);
        // With 3 replicas the *client-facing* traffic (subscribe, register,
        // activation) splits: the busiest replica serves fewer clients
        // than the single coordinator did. Replication gossip is a
        // separate, per-replica-constant overhead.
        assert!(
            rows[1].max_client_received < rows[0].max_client_received,
            "k=3 busiest client load {} vs k=1 {}",
            rows[1].max_client_received,
            rows[0].max_client_received
        );
        assert!(rows[1].mean_sync_received > 0.0, "replication active");
        assert_eq!(rows[0].mean_sync_received, 0.0, "no sync with a single replica");
    }

    #[test]
    fn coordinator_load_is_per_membership_not_per_message() {
        let few = sweep(&[16], 2, 2)[0].coordinator_received;
        let many = sweep(&[16], 20, 2)[0].coordinator_received;
        // 10x the messages must cost the coordinator far less than 10x.
        assert!(
            many < few * 3,
            "coordinator load should be ~constant in message count: {few} -> {many}"
        );
    }
}
