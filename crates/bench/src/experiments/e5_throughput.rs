//! E5 — stable throughput under perturbation (paper §1, citing Birman et
//! al.'s bimodal multicast): a windowed, ack-based reliable multicast's
//! goodput collapses when even a few receivers slow down, while gossip's
//! throughput to healthy receivers stays flat.

use wsg_baselines::{BrokerMsg, BrokerNode};
use wsg_gossip::GossipParams;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{LatencyModel, NodeId, SimDuration, SimTime};

use super::eager_net;

/// One row of the E5 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Fraction of receivers perturbed (slowed down).
    pub perturbed: f64,
    /// Mean deliveries/second at healthy receivers, windowed broker.
    pub broker_throughput: f64,
    /// Mean deliveries/second at healthy receivers, eager-push gossip.
    pub gossip_throughput: f64,
}

/// Sweep the perturbed fraction. The publisher offers `rate` msg/s for
/// `duration_secs` of virtual time; perturbed receivers process messages
/// `perturb_ms` late (delaying their acks).
pub fn sweep(
    n: usize,
    fractions: &[f64],
    rate: u64,
    duration_secs: u64,
    perturb_ms: u64,
    seed: u64,
) -> Vec<Row> {
    // Each (fraction, protocol) pair is one parallel cell: the broker and
    // gossip runs of a fraction are independent simulations too.
    let mut cells = Vec::new();
    for &fraction in fractions {
        let slow = ((n - 1) as f64 * fraction).round() as usize;
        let slow_set: Vec<NodeId> = (0..slow).map(|i| NodeId(n - 1 - i)).collect();
        cells.push((slow_set.clone(), true));
        cells.push((slow_set, false));
    }
    let throughputs = crate::sweep::map(&cells, |(slow_set, broker)| {
        if *broker {
            broker_run(n, slow_set, rate, duration_secs, perturb_ms, seed)
        } else {
            gossip_run(n, slow_set, rate, duration_secs, perturb_ms, seed)
        }
    });
    fractions
        .iter()
        .zip(throughputs.chunks(2))
        .map(|(&fraction, pair)| Row {
            perturbed: fraction,
            broker_throughput: pair[0],
            gossip_throughput: pair[1],
        })
        .collect()
}

fn healthy_receivers(n: usize, slow: &[NodeId]) -> Vec<NodeId> {
    (1..n)
        .map(NodeId)
        .filter(|id| !slow.contains(id))
        .collect()
}

fn broker_run(
    n: usize,
    slow: &[NodeId],
    rate: u64,
    duration_secs: u64,
    perturb_ms: u64,
    seed: u64,
) -> f64 {
    let config = SimConfig::default()
        .seed(seed)
        .latency(LatencyModel::constant_millis(2));
    let mut net = SimNet::new(config);
    let subscribers: Vec<NodeId> = (1..n).map(NodeId).collect();
    net.add_nodes(n, |id| {
        if id.index() == 0 {
            // Window of 8 outstanding messages: the sender-side flow
            // control every practical reliable multicast needs.
            BrokerNode::<u64>::broker(subscribers.clone(), SimDuration::from_millis(20))
                .with_window(8)
                .with_max_retries(1000)
        } else {
            BrokerNode::subscriber(NodeId(0))
        }
    });
    net.start();
    for id in slow {
        net.perturb(*id, SimDuration::from_millis(perturb_ms));
    }
    let total = rate * duration_secs;
    for k in 0..total {
        let at = SimTime::from_micros(k * 1_000_000 / rate);
        net.run_until(at);
        net.send_external(NodeId(0), NodeId(0), BrokerMsg::Publish(k));
    }
    net.run_until(SimTime::from_secs(duration_secs));
    let healthy = healthy_receivers(n, slow);
    let delivered: usize = healthy
        .iter()
        .map(|id| {
            net.node(*id)
                .delivered()
                .iter()
                .filter(|d| d.at <= SimTime::from_secs(duration_secs))
                .count()
        })
        .sum();
    delivered as f64 / healthy.len() as f64 / duration_secs as f64
}

fn gossip_run(
    n: usize,
    slow: &[NodeId],
    rate: u64,
    duration_secs: u64,
    perturb_ms: u64,
    seed: u64,
) -> f64 {
    let config = SimConfig::default()
        .seed(seed)
        .latency(LatencyModel::constant_millis(2));
    let params = GossipParams::atomic_for(n);
    let mut net = eager_net(n, &params, config);
    for id in slow {
        net.perturb(*id, SimDuration::from_millis(perturb_ms));
    }
    let total = rate * duration_secs;
    for k in 0..total {
        let at = SimTime::from_micros(k * 1_000_000 / rate);
        net.run_until(at);
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(k, ctx);
        });
    }
    net.run_until(SimTime::from_secs(duration_secs));
    let healthy = healthy_receivers(n, slow);
    let delivered: usize = healthy
        .iter()
        .map(|id| {
            net.node(*id)
                .delivered()
                .iter()
                .filter(|d| d.at <= SimTime::from_secs(duration_secs))
                .count()
        })
        .sum();
    delivered as f64 / healthy.len() as f64 / duration_secs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_collapses_gossip_stays_flat() {
        let rows = sweep(24, &[0.0, 0.25], 50, 4, 500, 1);
        let clean = &rows[0];
        let perturbed = &rows[1];
        // Unperturbed: both sustain ~the offered 50 msg/s.
        assert!(clean.broker_throughput > 40.0, "broker {}", clean.broker_throughput);
        assert!(clean.gossip_throughput > 40.0, "gossip {}", clean.gossip_throughput);
        // Perturbed: the windowed broker is gated by slow acks...
        assert!(
            perturbed.broker_throughput < clean.broker_throughput * 0.6,
            "broker should collapse: {} vs {}",
            perturbed.broker_throughput,
            clean.broker_throughput
        );
        // ...gossip to healthy receivers keeps >90% of its goodput.
        assert!(
            perturbed.gossip_throughput > clean.gossip_throughput * 0.9,
            "gossip should stay flat: {} vs {}",
            perturbed.gossip_throughput,
            clean.gossip_throughput
        );
    }
}
