//! Experiment implementations (see DESIGN.md §2 for the paper mapping).

pub mod ablations;
pub mod e2_reliability;
pub mod e3_scalability;
pub mod e4_resilience;
pub mod e5_throughput;
pub mod e6_coordinator;
pub mod e7_overhead;
pub mod e8_transport;
pub mod e9_churn;
pub mod e10_batching;

use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;

/// Outcome of one dissemination run of the pure gossip engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Fraction of nodes that delivered the message.
    pub coverage: f64,
    /// Whether every node delivered it.
    pub atomic: bool,
    /// Highest hop count among deliveries.
    pub max_round: u32,
    /// Virtual completion time (last delivery) in milliseconds.
    pub completion_ms: u64,
    /// Total payload copies sent.
    pub payloads: u64,
    /// Total wire messages of any kind.
    pub messages: u64,
}

/// Build a fully connected eager-push network.
pub fn eager_net(
    n: usize,
    params: &GossipParams,
    config: SimConfig,
) -> SimNet<GossipEngine<u64>> {
    gossip_net(n, GossipStyle::EagerPush, params, config)
}

/// Build a fully connected network of the given style.
pub fn gossip_net(
    n: usize,
    style: GossipStyle,
    params: &GossipParams,
    config: SimConfig,
) -> SimNet<GossipEngine<u64>> {
    let mut net = SimNet::new(config);
    net.add_nodes(n, |id| {
        let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
        GossipEngine::new(GossipConfig::new(style, params.clone()), peers)
    });
    net.start();
    net
}

/// Publish once from node 0 and run to quiescence, collecting the outcome.
pub fn run_once(mut net: SimNet<GossipEngine<u64>>, n: usize) -> RunOutcome {
    net.invoke(NodeId(0), |engine, ctx| {
        engine.publish(1, ctx);
    });
    net.run_to_quiescence();
    summarize(&net, n)
}

/// Collect the outcome of a finished run.
pub fn summarize(net: &SimNet<GossipEngine<u64>>, n: usize) -> RunOutcome {
    let mut reached = 0usize;
    let mut max_round = 0u32;
    let mut completion_ms = 0u64;
    let mut payloads = 0u64;
    for i in 0..n {
        let node = net.node(NodeId(i));
        payloads += node.stats().payloads_sent;
        if let Some(delivery) = node.delivered().first() {
            reached += 1;
            max_round = max_round.max(delivery.round);
            completion_ms = completion_ms.max(delivery.at.as_millis());
        }
    }
    RunOutcome {
        coverage: reached as f64 / n as f64,
        atomic: reached == n,
        max_round,
        completion_ms,
        payloads,
        messages: net.stats().sent,
    }
}

/// Mean over per-seed outcomes of a closure.
pub fn mean_over_seeds(seeds: u64, mut run: impl FnMut(u64) -> f64) -> f64 {
    (0..seeds).map(&mut run).sum::<f64>() / seeds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_once_reports_consistent_outcome() {
        let n = 32;
        let params = GossipParams::atomic_for(n);
        let outcome = run_once(eager_net(n, &params, SimConfig::default().seed(1)), n);
        assert!(outcome.coverage > 0.9);
        assert!(outcome.max_round >= 1);
        assert!(outcome.payloads > 0);
        assert!(outcome.messages >= outcome.payloads);
        assert_eq!(outcome.atomic, outcome.coverage == 1.0);
    }

    #[test]
    fn mean_over_seeds_averages() {
        let mean = mean_over_seeds(4, |s| s as f64);
        assert!((mean - 1.5).abs() < 1e-12);
    }
}
