//! E2 — reliability vs fanout (paper §2, citing Eugster et al.):
//! "parameters f and r can be configured such that any desired average
//! number of receivers successfully get the message … atomically delivered
//! with high probability."
//!
//! Sweeps fanout for fixed round budgets and system sizes; reports the
//! simulated mean coverage and atomicity probability next to the
//! mean-field/random-graph predictions.

use wsg_gossip::{analysis, GossipParams};
use wsg_net::sim::SimConfig;

use super::{eager_net, run_once};

/// One row of the E2 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// System size.
    pub n: usize,
    /// Fanout swept.
    pub fanout: usize,
    /// Round budget.
    pub rounds: u32,
    /// Mean fraction of nodes reached (simulated).
    pub coverage_sim: f64,
    /// Mean-field predicted coverage.
    pub coverage_pred: f64,
    /// Fraction of runs that reached every node (simulated).
    pub atomicity_sim: f64,
    /// Random-graph predicted atomicity probability.
    pub atomicity_pred: f64,
}

/// Run the sweep: for each `n`, fanout 1..=max_fanout, `seeds` runs each.
///
/// Each `(n, fanout, seed)` cell is an independent simulation, fanned out
/// over [`crate::sweep::map`]; the per-config reduction then sums coverage
/// in seed order, so the rows are bit-identical to the old serial loop.
pub fn sweep(ns: &[usize], max_fanout: usize, rounds: u32, seeds: u64) -> Vec<Row> {
    let mut cells = Vec::new();
    for &n in ns {
        for fanout in 1..=max_fanout {
            for seed in 0..seeds {
                cells.push((n, fanout, seed));
            }
        }
    }
    let outcomes = crate::sweep::map(&cells, |&(n, fanout, seed)| {
        let params = GossipParams::new(fanout, rounds);
        let outcome = run_once(
            eager_net(n, &params, SimConfig::default().seed(seed * 1000 + fanout as u64)),
            n,
        );
        (outcome.coverage, outcome.atomic)
    });
    cells
        .chunks(seeds as usize)
        .zip(outcomes.chunks(seeds as usize))
        .map(|(config, per_seed)| {
            let (n, fanout, _) = config[0];
            let mut coverage_sum = 0.0;
            let mut atomic_count = 0u64;
            for &(coverage, atomic) in per_seed {
                coverage_sum += coverage;
                atomic_count += atomic as u64;
            }
            Row {
                n,
                fanout,
                rounds,
                coverage_sim: coverage_sum / seeds as f64,
                coverage_pred: analysis::expected_coverage(n, fanout, rounds),
                atomicity_sim: atomic_count as f64 / seeds as f64,
                atomicity_pred: analysis::atomicity_probability(n, fanout),
            }
        })
        .collect()
}

/// One row of the E2 loss table.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Message loss probability.
    pub loss: f64,
    /// Simulated mean coverage.
    pub coverage_sim: f64,
    /// Mean-field prediction with the lossy recurrence.
    pub coverage_pred: f64,
}

/// Loss sweep at fixed (n, f, r): the lossy mean-field model vs simulation.
pub fn loss_sweep(n: usize, fanout: usize, rounds: u32, losses: &[f64], seeds: u64) -> Vec<LossRow> {
    let params = GossipParams::new(fanout, rounds);
    let cells: Vec<(f64, u64)> =
        losses.iter().flat_map(|&loss| (0..seeds).map(move |seed| (loss, seed))).collect();
    let coverages = crate::sweep::map(&cells, |&(loss, seed)| {
        let config = SimConfig::default().seed(seed * 101 + 7).drop_probability(loss);
        run_once(eager_net(n, &params, config), n).coverage
    });
    losses
        .iter()
        .zip(coverages.chunks(seeds as usize))
        .map(|(&loss, per_seed)| LossRow {
            loss,
            coverage_sim: per_seed.iter().sum::<f64>() / seeds as f64,
            coverage_pred: analysis::expected_coverage_lossy(n, fanout, rounds, loss),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_monotone_and_prediction_close() {
        let rows = sweep(&[64], 6, 10, 8);
        assert_eq!(rows.len(), 6);
        // Coverage grows with fanout.
        assert!(rows[5].coverage_sim >= rows[0].coverage_sim);
        // High-fanout coverage near 1 and near prediction.
        let top = &rows[5];
        assert!(top.coverage_sim > 0.99);
        assert!((top.coverage_sim - top.coverage_pred).abs() < 0.05);
    }

    #[test]
    fn lossy_prediction_tracks_simulation() {
        let rows = loss_sweep(128, 4, 10, &[0.0, 0.3], 8);
        for row in &rows {
            assert!(
                (row.coverage_sim - row.coverage_pred).abs() < 0.08,
                "loss {}: sim {} vs pred {}",
                row.loss,
                row.coverage_sim,
                row.coverage_pred
            );
        }
        assert!(rows[1].coverage_sim < rows[0].coverage_sim);
    }

    #[test]
    fn atomicity_crossover_happens_near_ln_n() {
        let rows = sweep(&[64], 8, 12, 12);
        // ln(64) ~ 4.16: fanout 2 should rarely be atomic, fanout 8
        // should almost always be.
        let low = rows.iter().find(|r| r.fanout == 2).unwrap();
        let high = rows.iter().find(|r| r.fanout == 8).unwrap();
        assert!(low.atomicity_sim < 0.5, "f=2 atomicity {}", low.atomicity_sim);
        assert!(high.atomicity_sim > 0.8, "f=8 atomicity {}", high.atomicity_sim);
    }
}
