//! E3 — scalability (paper §1/§4: "scaling to large number of
//! participants"): dissemination latency in rounds and per-node load as
//! the system grows, gossip vs the centralized sender.
//!
//! Expected shapes: gossip completes in O(log n) rounds with O(f) per-node
//! load; a centralized sender needs O(n) sends from one node.

use wsg_gossip::{analysis, GossipParams};
use wsg_net::sim::SimConfig;
use wsg_net::NodeId;

use super::eager_net;

/// One row of the E3 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// System size.
    pub n: usize,
    /// Mean max hop count at completion (simulated).
    pub rounds_sim: f64,
    /// Mean-field predicted rounds to 99.9% coverage.
    pub rounds_pred: u32,
    /// Mean virtual completion time, milliseconds.
    pub completion_ms: f64,
    /// Median per-node delivery latency, milliseconds.
    pub latency_p50_ms: u64,
    /// 99th-percentile per-node delivery latency, milliseconds.
    pub latency_p99_ms: u64,
    /// Mean messages sent by the busiest gossip node.
    pub gossip_max_node_load: f64,
    /// Messages the centralized sender must send (= n − 1).
    pub central_sender_load: u64,
    /// Mean coverage achieved.
    pub coverage: f64,
}

/// Per-cell measurement carried back from one `(n, seed)` simulation.
struct Cell {
    max_round: u32,
    completion_ms: u64,
    coverage: f64,
    max_sent: u64,
    /// First-delivery latencies of nodes 1..n, in node order.
    latencies: Vec<u64>,
}

/// Sweep system sizes with a fixed fanout.
///
/// Cells are `(n, seed)` pairs run in parallel via [`crate::sweep::map`];
/// per-`n` reduction walks the cells in seed order (and latencies in node
/// order), matching the old serial accumulation exactly.
pub fn sweep(ns: &[usize], fanout: usize, seeds: u64) -> Vec<Row> {
    let cells: Vec<(usize, u64)> =
        ns.iter().flat_map(|&n| (0..seeds).map(move |seed| (n, seed))).collect();
    let measured = crate::sweep::map(&cells, |&(n, seed)| {
        // Generous round budget so latency is measured, not truncated.
        let rounds = (n as f64).log2().ceil() as u32 * 3 + 6;
        let params = GossipParams::new(fanout, rounds);
        let mut net = eager_net(n, &params, SimConfig::default().seed(seed + 7));
        net.invoke(NodeId(0), |engine, ctx| {
            engine.publish(1, ctx);
        });
        net.run_to_quiescence();
        let outcome = super::summarize(&net, n);
        let latencies = (1..n)
            .filter_map(|i| {
                net.node(NodeId(i)).delivered().first().map(|d| d.at.as_millis())
            })
            .collect();
        Cell {
            max_round: outcome.max_round,
            completion_ms: outcome.completion_ms,
            coverage: outcome.coverage,
            max_sent: net.stats().max_sent(),
            latencies,
        }
    });
    ns.iter()
        .zip(measured.chunks(seeds as usize))
        .map(|(&n, per_seed)| {
            let mut rounds_sum = 0.0;
            let mut completion_sum = 0.0;
            let mut load_sum = 0.0;
            let mut coverage_sum = 0.0;
            let mut latencies = wsg_net::Histogram::new();
            for cell in per_seed {
                rounds_sum += cell.max_round as f64;
                completion_sum += cell.completion_ms as f64;
                coverage_sum += cell.coverage;
                load_sum += cell.max_sent as f64;
                for &ms in &cell.latencies {
                    latencies.record(ms);
                }
            }
            Row {
                n,
                rounds_sim: rounds_sum / seeds as f64,
                rounds_pred: analysis::rounds_to_coverage(n, fanout, 0.999),
                completion_ms: completion_sum / seeds as f64,
                latency_p50_ms: latencies.quantile(0.5),
                latency_p99_ms: latencies.quantile(0.99),
                gossip_max_node_load: load_sum / seeds as f64,
                central_sender_load: (n - 1) as u64,
                coverage: coverage_sum / seeds as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_sublinearly() {
        let rows = sweep(&[32, 256], 6, 4);
        assert_eq!(rows.len(), 2);
        let (small, large) = (&rows[0], &rows[1]);
        assert!(large.rounds_sim > small.rounds_sim * 0.8, "rounds should grow");
        // 8x nodes must cost far less than 8x rounds (log growth).
        assert!(large.rounds_sim < small.rounds_sim * 4.0);
        assert!(small.coverage > 0.99 && large.coverage > 0.99);
    }

    #[test]
    fn per_node_load_stays_bounded_while_central_grows() {
        let rows = sweep(&[32, 256], 5, 4);
        let (small, large) = (&rows[0], &rows[1]);
        assert_eq!(large.central_sender_load, 255);
        // Gossip's busiest node sends ~fanout messages regardless of n.
        assert!(large.gossip_max_node_load <= small.gossip_max_node_load * 3.0);
        assert!(large.gossip_max_node_load < large.central_sender_load as f64 / 4.0);
    }
}
