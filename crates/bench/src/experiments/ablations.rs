//! A — ablations of the design choices DESIGN.md calls out.
//!
//! * **A1 — lazy-push retry fallback:** without re-requesting a payload
//!   from fallback advertisers, one lost `IWANT`/`Push` permanently stalls
//!   the message at that node;
//! * **A2 — periodic-tick jitter:** synchronized ticks bunch pull traffic
//!   into bursts (high peak concurrent load); jitter flattens them;
//! * **A3 — payload-buffer capacity:** anti-entropy can only repair from
//!   payloads still buffered — undersized buffers leave permanent gaps.

use wsg_gossip::{GossipConfig, GossipEngine, GossipParams, GossipStyle};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{LatencyModel, NodeId, SimDuration, SimTime};

/// Result of the A1 retry ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryRow {
    /// Message loss probability.
    pub loss: f64,
    /// Coverage with the retry fallback enabled.
    pub with_retry: f64,
    /// Coverage with the retry fallback disabled.
    pub without_retry: f64,
}

/// A1: lazy push under loss, retry on vs off.
pub fn retry_ablation(n: usize, losses: &[f64], seeds: u64) -> Vec<RetryRow> {
    let params = GossipParams::atomic_for(n);
    let run = |loss: f64, retry: bool, seed: u64| -> f64 {
        let base = GossipConfig::new(GossipStyle::LazyPush, params.clone())
            .interval(SimDuration::from_millis(50));
        let config = if retry { base } else { base.without_retry() };
        let mut net = SimNet::new(
            SimConfig::default()
                .seed(seed)
                .drop_probability(loss)
                .latency(LatencyModel::constant_millis(2)),
        );
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u64>::new(config.clone(), peers)
        });
        net.start();
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_until(SimTime::from_secs(10));
        (0..n).filter(|i| !net.node(NodeId(*i)).delivered().is_empty()).count() as f64 / n as f64
    };
    // Cells in serial order: per loss, per seed, retry-on then retry-off.
    let cells: Vec<(f64, u64, bool)> = losses
        .iter()
        .flat_map(|&loss| {
            (0..seeds).flat_map(move |seed| [(loss, seed, true), (loss, seed, false)])
        })
        .collect();
    let coverages =
        crate::sweep::map(&cells, |&(loss, seed, retry)| run(loss, retry, seed * 13 + 1));
    losses
        .iter()
        .zip(coverages.chunks(2 * seeds as usize))
        .map(|(&loss, per_seed)| {
            let mut with = 0.0;
            let mut without = 0.0;
            for pair in per_seed.chunks(2) {
                with += pair[0];
                without += pair[1];
            }
            RetryRow {
                loss,
                with_retry: with / seeds as f64,
                without_retry: without / seeds as f64,
            }
        })
        .collect()
}

/// Result of the A2 jitter ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterRow {
    /// Whether jitter was enabled.
    pub jitter: bool,
    /// Peak number of pull requests landing in any single 10 ms window.
    pub peak_burst: u64,
    /// Total pull requests over the run (load sanity check).
    pub total_pulls: u64,
}

/// A2: pull-style tick synchronisation, jitter on vs off. All nodes start
/// simultaneously, so without jitter their ticks collide forever.
pub fn jitter_ablation(n: usize, seed: u64) -> Vec<JitterRow> {
    crate::sweep::map(&[true, false], |&jitter| {
            let base = GossipConfig::new(GossipStyle::Pull, GossipParams::new(2, 4))
                .interval(SimDuration::from_millis(100));
            let config = if jitter { base } else { base.without_jitter() };
            let mut net = SimNet::new(
                SimConfig::default()
                    .seed(seed)
                    .latency(LatencyModel::constant_millis(1)),
            );
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u64>::new(config.clone(), peers)
            });
            // Track per-10ms-window send bursts via the tracer.
            use std::sync::{Arc, Mutex};
            let windows: Arc<Mutex<std::collections::HashMap<u64, u64>>> = Arc::default();
            let sink = windows.clone();
            net.set_tracer(Box::new(move |ev| {
                if ev.kind == wsg_net::TraceKind::Send {
                    *sink.lock().unwrap().entry(ev.time.as_millis() / 10).or_insert(0) += 1;
                }
            }));
            net.start();
            net.run_until(SimTime::from_secs(3));
            let windows = windows.lock().unwrap();
            JitterRow {
                jitter,
                peak_burst: windows.values().copied().max().unwrap_or(0),
                total_pulls: windows.values().sum(),
            }
    })
}

/// Result of the A3 buffer ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferRow {
    /// Payload buffer capacity.
    pub capacity: usize,
    /// Fraction of published messages the rejoining node recovered.
    pub recovered: f64,
}

/// A3: a node is partitioned away while `messages` are published, then
/// heals; anti-entropy can only repair what peers still buffer.
pub fn buffer_ablation(n: usize, capacities: &[usize], messages: u64, seed: u64) -> Vec<BufferRow> {
    crate::sweep::map(capacities, |&capacity| {
            let config = GossipConfig::new(GossipStyle::AntiEntropy, GossipParams::new(2, 4))
                .interval(SimDuration::from_millis(40))
                .buffer_capacity(capacity);
            let mut net = SimNet::new(
                SimConfig::default()
                    .seed(seed)
                    .latency(LatencyModel::constant_millis(1)),
            );
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u64>::new(config.clone(), peers)
            });
            net.start();
            let victim = NodeId(n - 1);
            net.isolate(&[victim]);
            for m in 0..messages {
                net.invoke(NodeId(0), move |e, ctx| {
                    e.publish(m, ctx);
                });
                net.run_until(net.now() + SimDuration::from_millis(30));
            }
            net.run_until(net.now() + SimDuration::from_secs(1));
            net.heal();
            net.run_until(net.now() + SimDuration::from_secs(20));
            let recovered = net.node(victim).delivered().len() as f64 / messages as f64;
            BufferRow { capacity, recovered }
    })
}

/// Result of the A4 forwarding-discipline ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct DisciplineRow {
    /// Fanout swept.
    pub fanout: usize,
    /// Coverage, infect-and-die.
    pub die_coverage: f64,
    /// Payload copies, infect-and-die.
    pub die_payloads: u64,
    /// Coverage, infect-forever.
    pub forever_coverage: f64,
    /// Payload copies, infect-forever.
    pub forever_payloads: u64,
}

/// A4: infect-and-die vs infect-forever across slim fanouts.
pub fn discipline_ablation(n: usize, fanouts: &[usize], rounds: u32, seed: u64) -> Vec<DisciplineRow> {
    use wsg_gossip::ForwardDiscipline;
    let run = |fanout: usize, discipline: ForwardDiscipline| -> (f64, u64) {
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        net.add_nodes(n, |id| {
            let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
            GossipEngine::<u64>::new(
                GossipConfig::new(GossipStyle::EagerPush, GossipParams::new(fanout, rounds))
                    .discipline(discipline)
                    .interval(SimDuration::from_millis(50)),
                peers,
            )
        });
        net.start();
        net.invoke(NodeId(0), |e, ctx| {
            e.publish(1, ctx);
        });
        net.run_until(SimTime::from_secs(5));
        let reached = (0..n)
            .filter(|i| !net.node(NodeId(*i)).delivered().is_empty())
            .count() as f64
            / n as f64;
        let payloads: u64 = (0..n).map(|i| net.node(NodeId(i)).stats().payloads_sent).sum();
        (reached, payloads)
    };
    let cells: Vec<(usize, ForwardDiscipline)> = fanouts
        .iter()
        .flat_map(|&f| [(f, ForwardDiscipline::InfectAndDie), (f, ForwardDiscipline::InfectForever)])
        .collect();
    let outcomes = crate::sweep::map(&cells, |&(fanout, discipline)| run(fanout, discipline));
    fanouts
        .iter()
        .zip(outcomes.chunks(2))
        .map(|(&fanout, pair)| {
            let (die_coverage, die_payloads) = pair[0];
            let (forever_coverage, forever_payloads) = pair[1];
            DisciplineRow { fanout, die_coverage, die_payloads, forever_coverage, forever_payloads }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_retry_rescues_lossy_lazy_push() {
        let rows = retry_ablation(48, &[0.25], 3);
        let row = &rows[0];
        assert!(
            row.with_retry > row.without_retry + 0.05,
            "retry {} vs no-retry {}",
            row.with_retry,
            row.without_retry
        );
        assert!(row.with_retry > 0.95, "retry coverage {}", row.with_retry);
    }

    #[test]
    fn a2_jitter_flattens_bursts() {
        let rows = jitter_ablation(64, 7);
        let with = rows.iter().find(|r| r.jitter).unwrap();
        let without = rows.iter().find(|r| !r.jitter).unwrap();
        assert!(
            without.peak_burst as f64 > with.peak_burst as f64 * 1.5,
            "synchronized peak {} vs jittered {}",
            without.peak_burst,
            with.peak_burst
        );
    }

    #[test]
    fn a4_forever_converges_where_die_cannot() {
        let rows = discipline_ablation(96, &[1, 2], 24, 9);
        let f1 = &rows[0];
        assert!(f1.forever_coverage > 0.9, "forever {}", f1.forever_coverage);
        assert!(f1.die_coverage < 0.5, "die {}", f1.die_coverage);
        assert!(f1.forever_payloads > f1.die_payloads);
    }

    #[test]
    fn a3_small_buffers_lose_history() {
        let rows = buffer_ablation(12, &[4, 512], 60, 5);
        let small = rows.iter().find(|r| r.capacity == 4).unwrap();
        let large = rows.iter().find(|r| r.capacity == 512).unwrap();
        assert!(large.recovered > 0.95, "large buffer {}", large.recovered);
        assert!(
            small.recovered < large.recovered - 0.3,
            "small {} vs large {}",
            small.recovered,
            large.recovered
        );
    }
}
