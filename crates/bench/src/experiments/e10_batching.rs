//! E10 — the payoff of per-peer envelope batching: message throughput of
//! the live socket transport as a function of the coalescing cap, plus an
//! E8-style dissemination rerun showing the POST-count collapse.
//!
//! The flood scenario is the worst case batching was built for: one node
//! bursts `messages` envelopes at a single peer faster than loopback
//! round trips can drain them. With `max_batch_msgs = 1` every envelope
//! pays its own POST round trip; with a larger cap the sender drains the
//! backlog in wrapper envelopes (`urn:ws-gossip:batch`), so wall-clock
//! per delivered message falls roughly with the mean batch size.

use std::time::Duration;

use wsg_http::client::HttpClientConfig;
use wsg_http::runtime::{NetRuntime, NetRuntimeConfig};
use wsg_http::BatchConfig;
use wsg_net::protocol::{Context, NodeId, Protocol};
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

/// Outcome of one flood run at a fixed coalescing cap.
#[derive(Debug, Clone, Copy)]
pub struct FloodOutcome {
    /// The `max_batch_msgs` cap the sender ran with.
    pub cap: usize,
    /// Envelopes delivered (transport message accounting).
    pub msgs_ok: u64,
    /// HTTP POSTs that carried them.
    pub posts_ok: u64,
    /// POSTs avoided by coalescing.
    pub posts_saved: u64,
    /// Mean envelopes per POST.
    pub mean_batch: f64,
    /// Wall-clock milliseconds until the last envelope was accepted.
    pub elapsed_ms: f64,
    /// Delivered messages per second.
    pub msgs_per_sec: f64,
    /// Whether the sink's protocol saw every envelope.
    pub complete: bool,
}

/// The two-node flood: node 0 bursts envelopes at node 1 on start.
enum FloodRole {
    Source { messages: usize },
    Sink { received: u64 },
}

impl Protocol for FloodRole {
    type Message = String;

    fn on_start(&mut self, ctx: &mut dyn Context<String>) {
        if let FloodRole::Source { messages } = self {
            for n in 0..*messages {
                ctx.send(NodeId(1), flood_envelope(n));
            }
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: String, _ctx: &mut dyn Context<String>) {
        if let FloodRole::Sink { received } = self {
            *received += 1;
        }
    }
}

fn flood_envelope(n: usize) -> String {
    Envelope::request(
        MessageHeaders::request("http://bench/flood", "urn:bench:Flood"),
        Element::text_node("tick", format!("flood {n}")),
    )
    .to_xml()
}

/// Burst `messages` envelopes from one node to another with the sender's
/// coalescing cap pinned to `cap`, and measure wall-clock time until the
/// transport has delivered all of them (scraped live from the sender's
/// `wsg_transport_batch_msgs` histogram, exactly as an operator would).
pub fn flood(messages: usize, cap: usize, seed: u64) -> FloodOutcome {
    let config = NetRuntimeConfig {
        client: HttpClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 1,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            ..HttpClientConfig::default()
        },
        batch: BatchConfig { max_batch_msgs: cap, ..BatchConfig::default() },
        ..NetRuntimeConfig::default()
    };

    let net = NetRuntime::spawn(
        vec![FloodRole::Source { messages }, FloodRole::Sink { received: 0 }],
        seed,
        config,
    );
    let registry = net.registry_of(NodeId(0));
    let started = crate::timing::now();
    let deadline = Duration::from_millis(5_000 + messages as u64 * 20);
    loop {
        let delivered = wsg_obs::parse_exposition(&registry.render())
            .expect("registry renders a parseable exposition")
            .into_iter()
            .find(|(key, _)| key == "wsg_transport_batch_msgs_sum")
            .map(|(_, value)| value)
            .unwrap_or(0.0);
        if delivered >= messages as f64 || started.elapsed() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = started.elapsed();
    crate::sweep::record_cell(elapsed.as_nanos() as u64);

    let nodes = net.shutdown_after(Duration::from_millis(40));
    let transport = nodes[0].transport;
    let received = match &nodes[1].protocol {
        FloodRole::Sink { received } => *received,
        FloodRole::Source { .. } => 0,
    };
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    FloodOutcome {
        cap,
        msgs_ok: transport.msgs_ok,
        posts_ok: transport.posts_ok,
        posts_saved: transport.posts_saved,
        mean_batch: if transport.posts_ok > 0 {
            transport.msgs_ok as f64 / transport.posts_ok as f64
        } else {
            0.0
        },
        elapsed_ms,
        msgs_per_sec: if elapsed_ms > 0.0 {
            transport.msgs_ok as f64 / (elapsed_ms / 1e3)
        } else {
            0.0
        },
        complete: received == messages as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_one_means_one_post_per_envelope() {
        let outcome = flood(20, 1, 7);
        assert!(outcome.complete, "{outcome:?}");
        assert_eq!(outcome.msgs_ok, 20);
        assert_eq!(outcome.posts_ok, 20, "{outcome:?}");
        assert_eq!(outcome.posts_saved, 0);
    }

    #[test]
    fn larger_caps_coalesce_the_backlog() {
        let outcome = flood(64, 8, 9);
        assert!(outcome.complete, "{outcome:?}");
        assert_eq!(outcome.msgs_ok, 64);
        assert!(
            outcome.posts_ok < outcome.msgs_ok,
            "a 64-message burst must coalesce at least once: {outcome:?}"
        );
        assert_eq!(outcome.posts_saved, outcome.msgs_ok - outcome.posts_ok);
        assert!(outcome.mean_batch > 1.0);
    }
}
