//! A work-stealing parallel sweep runner for experiment cells.
//!
//! Every experiment in this crate is a cross product of independent
//! `(config, seed)` cells: each cell builds its own [`wsg_net::sim::SimNet`],
//! runs it to completion and reduces to a small result. The cells share no
//! state, so they can run on every core — but the *output* must stay
//! bit-identical to the old serial loops (the committed result tables and
//! `tests/determinism.rs` depend on it). The runner guarantees that by
//! keying results on the cell index: workers claim cells from a shared
//! atomic counter (self-scheduling, so a slow cell never stalls the queue
//! behind it) and the collected results are re-assembled in cell order
//! before they are returned. Reductions over the ordered results then add
//! floats in exactly the order the serial loop did.
//!
//! Thread count comes from [`std::thread::available_parallelism`] and can
//! be pinned with `WSG_SWEEP_THREADS` (set it to `1` to force the serial
//! path). The result is the same at any thread count.
//!
//! ```
//! let squares = wsg_bench::sweep::map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cells executed since the last [`reset_counters`] — feeds the
/// `cells`/`cells_per_sec` fields of the `--json` bench report.
static CELLS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Wall-clock nanoseconds of each executed cell, in completion order
/// (only used for aggregate statistics, so ordering does not matter).
static CELL_NANOS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Reset the global cell counters (start of a bench binary).
pub fn reset_counters() {
    CELLS_EXECUTED.store(0, Ordering::Relaxed);
    CELL_NANOS.lock().expect("cell timing lock").clear();
}

/// Number of cells executed since the last [`reset_counters`].
pub fn cells_executed() -> u64 {
    CELLS_EXECUTED.load(Ordering::Relaxed)
}

/// Snapshot of per-cell wall-clock durations in nanoseconds.
pub fn cell_nanos() -> Vec<u64> {
    CELL_NANOS.lock().expect("cell timing lock").clone()
}

/// Record one externally-timed cell. Experiments that measure work
/// outside [`map`] (e.g. live-socket runs that cannot be expressed as a
/// `(config, seed)` sweep) use this so their `--json` reports still carry
/// honest `cells`/`cells_per_sec` numbers instead of zeros.
pub fn record_cell(nanos: u64) {
    CELLS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    CELL_NANOS.lock().expect("cell timing lock").push(nanos);
}

/// The worker count: `WSG_SWEEP_THREADS` when set, else the machine's
/// available parallelism.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("WSG_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `run` over every cell on up to [`threads()`] workers, returning
/// results in cell order (bit-identical to the serial `cells.iter().map`).
pub fn map<I, T, F>(cells: &[I], run: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map_with_threads(cells, threads(), run)
}

/// [`map`] with an explicit worker count (exercised directly by the
/// determinism tests; `map` itself derives the count from the machine).
pub fn map_with_threads<I, T, F>(cells: &[I], threads: usize, run: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = cells.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return cells.iter().map(|cell| timed(|| run(cell))).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    // Self-scheduling work queue: each worker claims the
                    // next unclaimed cell, so load balances like work
                    // stealing without per-cell locking.
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    local.push((index, timed(|| run(&cells[index]))));
                }
                collected.lock().expect("sweep result lock").extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("sweep result lock");
    debug_assert_eq!(pairs.len(), n, "every cell produces exactly one result");
    // Deterministic ordering: results keyed by cell index.
    pairs.sort_by_key(|(index, _)| *index);
    pairs.into_iter().map(|(_, result)| result).collect()
}

fn timed<T>(run: impl FnOnce() -> T) -> T {
    let start = crate::timing::now();
    let out = run();
    let nanos = start.elapsed().as_nanos() as u64;
    CELLS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    CELL_NANOS.lock().expect("cell timing lock").push(nanos);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_cell_order() {
        let cells: Vec<usize> = (0..100).collect();
        let out = map_with_threads(&cells, 8, |&i| i * 3);
        assert_eq!(out, cells.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // Float results must come back in the same order regardless of
        // which worker computed them.
        let cells: Vec<u64> = (0..64).collect();
        let f = |&seed: &u64| (seed as f64).sqrt() * 0.1 + seed as f64;
        let serial = map_with_threads(&cells, 1, f);
        let parallel = map_with_threads(&cells, 7, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_cell() {
        let none: Vec<u32> = map_with_threads(&[], 4, |&x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(map_with_threads(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn counts_cells() {
        reset_counters();
        let _ = map_with_threads(&[1u32, 2, 3], 2, |&x| x);
        assert_eq!(cells_executed(), 3);
        assert_eq!(cell_nanos().len(), 3);
    }

    #[test]
    fn threads_env_override_parses() {
        // threads() itself reads the live environment; just assert sanity.
        assert!(threads() >= 1);
    }
}
