//! A lightweight in-tree micro-benchmark timing harness.
//!
//! The `benches/*.rs` binaries (built with `harness = false`) use this
//! instead of an external benchmarking crate so the workspace stays free
//! of registry dependencies. It keeps the essentials of a credible
//! microbenchmark:
//!
//! * **calibration** — the iteration count is scaled until one batch
//!   takes ~10 ms, so per-iteration timings are not dominated by clock
//!   read overhead;
//! * **sampling** — ~20 batches are timed independently and min / median
//!   / mean ns-per-iteration are reported (min is the least noisy
//!   estimator on a shared machine, median guards against outliers);
//! * **black-boxing** — results flow through [`std::hint::black_box`] so
//!   the optimiser cannot delete the measured work.
//!
//! Run with `cargo bench` (each bench target has a plain `main`). Set
//! `WSG_BENCH_FAST=1` to shrink calibration targets for smoke runs (CI
//! uses this to keep bench compilation honest without burning minutes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Heap allocations observed by [`CountingAlloc`] since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-delegating allocator that counts every allocation.
///
/// Registered as the `#[global_allocator]` of this crate (see `lib.rs`),
/// so bench binaries and tests can measure allocations-per-message on the
/// serialization hot path. Deallocations are not counted — the interesting
/// number for the perf trajectory is how many times a code path *asks* the
/// allocator for memory.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counter is a relaxed atomic
// with no allocation of its own, so the GlobalAlloc contract is inherited.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations since process start (monotonic, process-wide).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `f` and return its result plus the number of heap allocations it
/// performed. The counter is process-wide, so concurrent threads inflate
/// the number — callers that need a tight bound should take the minimum
/// over a few trials.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

/// Samples per benchmark.
const SAMPLES: usize = 20;

/// Target wall-clock duration of one calibrated batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);

/// Whether `WSG_BENCH_FAST` smoke mode is on (shrinks calibration targets
/// and experiment parameter grids; recorded in the `--json` bench report).
pub fn fast_mode() -> bool {
    std::env::var("WSG_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest sampled batch.
    pub min_ns: f64,
    /// Median across batches.
    pub median_ns: f64,
    /// Mean across batches.
    pub mean_ns: f64,
    /// Iterations per batch after calibration.
    pub iters_per_sample: u64,
}

impl Measurement {
    fn format_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }
}

/// The sanctioned wall-clock read.
///
/// Rule D2 (`wall-clock`, see `wsg_lint`) confines `Instant::now()` to
/// this module: measurement code elsewhere in the bench harness calls
/// `timing::now()` so every stopwatch in the workspace starts here.
pub fn now() -> Instant {
    Instant::now()
}

/// Time `f`, print a criterion-style report line, and return the stats.
///
/// ```
/// let m = wsg_bench::timing::bench("sum_1k", || (0..1000u64).sum::<u64>());
/// assert!(m.min_ns > 0.0);
/// ```
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Calibrate: double the batch size until one batch takes long enough.
    let target = if fast_mode() { Duration::from_micros(200) } else { BATCH_TARGET };
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 30 {
            break;
        }
        // Jump close to the target, at least doubling.
        let scale = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() as u64;
        iters = (iters * scale.clamp(2, 1024)).min(1 << 30);
    }

    let samples = if fast_mode() { 5 } else { SAMPLES };
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

    let min_ns = per_iter[0];
    let median_ns = per_iter[per_iter.len() / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let m = Measurement { min_ns, median_ns, mean_ns, iters_per_sample: iters };
    println!(
        "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} iters x {} samples)",
        Measurement::format_ns(min_ns),
        Measurement::format_ns(median_ns),
        Measurement::format_ns(mean_ns),
        iters,
        samples,
    );
    m
}

/// [`bench()`] with a parameter baked into the report name, mirroring
/// criterion's `bench_with_input` naming (`group/param`).
pub fn bench_with_param<P: std::fmt::Display, T>(
    group: &str,
    param: P,
    f: impl FnMut() -> T,
) -> Measurement {
    bench(&format!("{group}/{param}"), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_cheap_work() {
        std::env::set_var("WSG_BENCH_FAST", "1");
        let m = bench("test_sum", || (0..100u64).sum::<u64>());
        assert!(m.min_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns * 1.5 + 1.0);
        assert!(m.iters_per_sample >= 1);
    }

    #[test]
    fn format_scales_units() {
        assert!(Measurement::format_ns(12.3).ends_with("ns"));
        assert!(Measurement::format_ns(12_300.0).ends_with("µs"));
        assert!(Measurement::format_ns(12_300_000.0).ends_with("ms"));
        assert!(Measurement::format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
