//! E7 — redundancy and control overhead vs fanout; eager vs lazy push.

use wsg_bench::experiments::e7_overhead;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e7_overhead");
    let (n, fanouts, rounds): (usize, &[usize], u32) = if fast {
        (64, &[2, 4, 8], 10)
    } else {
        (256, &[1, 2, 3, 4, 6, 8, 10], 12)
    };

    println!("E7 — message overhead (n={n}, r={rounds})");
    println!("claim: reliability comes from 'redundancy and randomization'; here is its price\n");
    let rows = e7_overhead::sweep(n, fanouts, rounds, 11);
    let mut table = Table::new(&[
        "f", "coverage", "eager payloads/node", "predicted", "lazy payloads/node", "lazy control/node",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.fanout.to_string(),
            format!("{:.4}", r.coverage),
            format!("{:.2}", r.eager_redundancy),
            format!("{:.2}", r.predicted_redundancy),
            format!("{:.2}", r.lazy_redundancy),
            format!("{:.2}", r.lazy_control),
        ]);
    }
    print!("{}", table.render());
    report.add_table("overhead", &table);
    report.write_if_requested();
}
