//! E2 — delivery ratio and atomicity vs fanout (Eugster et al.
//! configuration result the paper cites in §2).

use wsg_bench::experiments::e2_reliability;
use wsg_bench::Table;

fn main() {
    println!("E2 — reliability vs fanout (eager push, r fixed)");
    println!("claim: f,r configurable for any target coverage; atomic w.h.p. near f = ln n + c\n");
    let rows = e2_reliability::sweep(&[128, 512], 10, 12, 20);
    let mut table = Table::new(&[
        "n", "f", "r", "coverage(sim)", "coverage(pred)", "P(atomic)(sim)", "P(atomic)(pred)",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.n.to_string(),
            r.fanout.to_string(),
            r.rounds.to_string(),
            format!("{:.4}", r.coverage_sim),
            format!("{:.4}", r.coverage_pred),
            format!("{:.2}", r.atomicity_sim),
            format!("{:.2}", r.atomicity_pred),
        ]);
    }
    print!("{}", table.render());
    println!("\nln(128)={:.2}, ln(512)={:.2} — the atomicity knee sits there.", (128f64).ln(), (512f64).ln());

    println!("\n(b) coverage under message loss (n=256, f=5, r=12)");
    let rows = e2_reliability::loss_sweep(256, 5, 12, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 20);
    let mut table = Table::new(&["loss", "coverage(sim)", "coverage(pred, lossy mean-field)"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.1}", r.loss),
            format!("{:.4}", r.coverage_sim),
            format!("{:.4}", r.coverage_pred),
        ]);
    }
    print!("{}", table.render());
    println!("\nloss just rescales the effective fanout: f_eff = f(1-p).");
}
