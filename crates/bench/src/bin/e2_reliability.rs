//! E2 — delivery ratio and atomicity vs fanout (Eugster et al.
//! configuration result the paper cites in §2).

use wsg_bench::experiments::e2_reliability;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e2_reliability");
    let (ns, max_fanout, rounds, seeds): (&[usize], usize, u32, u64) =
        if fast { (&[64], 6, 10, 4) } else { (&[128, 512], 10, 12, 20) };

    println!("E2 — reliability vs fanout (eager push, r fixed)");
    println!("claim: f,r configurable for any target coverage; atomic w.h.p. near f = ln n + c\n");
    let rows = e2_reliability::sweep(ns, max_fanout, rounds, seeds);
    let mut table = Table::new(&[
        "n", "f", "r", "coverage(sim)", "coverage(pred)", "P(atomic)(sim)", "P(atomic)(pred)",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.n.to_string(),
            r.fanout.to_string(),
            r.rounds.to_string(),
            format!("{:.4}", r.coverage_sim),
            format!("{:.4}", r.coverage_pred),
            format!("{:.2}", r.atomicity_sim),
            format!("{:.2}", r.atomicity_pred),
        ]);
    }
    print!("{}", table.render());
    report.add_table("fanout", &table);
    let (lo, hi) = (ns[0] as f64, ns[ns.len() - 1] as f64);
    println!(
        "\nln({})={:.2}, ln({})={:.2} — the atomicity knee sits there.",
        ns[0],
        lo.ln(),
        ns[ns.len() - 1],
        hi.ln()
    );

    let (loss_n, loss_f, loss_r, losses, loss_seeds): (usize, usize, u32, &[f64], u64) = if fast {
        (64, 5, 10, &[0.0, 0.2, 0.4], 4)
    } else {
        (256, 5, 12, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 20)
    };
    println!("\n(b) coverage under message loss (n={loss_n}, f={loss_f}, r={loss_r})");
    let rows = e2_reliability::loss_sweep(loss_n, loss_f, loss_r, losses, loss_seeds);
    let mut table = Table::new(&["loss", "coverage(sim)", "coverage(pred, lossy mean-field)"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.1}", r.loss),
            format!("{:.4}", r.coverage_sim),
            format!("{:.4}", r.coverage_pred),
        ]);
    }
    print!("{}", table.render());
    report.add_table("loss", &table);
    println!("\nloss just rescales the effective fanout: f_eff = f(1-p).");
    report.write_if_requested();
}
