//! E6 — load on the most loaded node: coordinator vs broker vs gossip peers.

use wsg_bench::experiments::e6_coordinator;
use wsg_bench::Table;

fn main() {
    println!("E6 — coordinator load vs system size (20 notifications each)");
    println!("claim: the coordinator handles control traffic only; a broker carries the data plane\n");
    let rows = e6_coordinator::sweep(&[8, 16, 32, 64, 128], 20, 7);
    let mut table = Table::new(&[
        "subscribers", "coordinator recv (control)", "broker recv (data)", "gossip mean recv/node",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.n.to_string(),
            r.coordinator_received.to_string(),
            r.broker_received.to_string(),
            format!("{:.1}", r.gossip_mean_received),
        ]);
    }
    print!("{}", table.render());
    println!("\ncoordinator load is per-membership-change; broker load is per-message x n.");

    println!("\n(b) distributed coordinator (paper §3): n=64 subscribers, 20 notifications");
    let rows = e6_coordinator::distributed_sweep(64, &[1, 2, 4, 8], 20, 9);
    let mut table = Table::new(&[
        "replicas", "busiest client load", "mean sync load", "busiest total", "coverage",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.coordinators.to_string(),
            r.max_client_received.to_string(),
            format!("{:.1}", r.mean_sync_received),
            r.max_coordinator_received.to_string(),
            format!("{:.4}", r.coverage),
        ]);
    }
    print!("{}", table.render());
    println!("\nreplicas split subscribe/register traffic; replication gossip is the flat overhead.");
}
