//! E6 — load on the most loaded node: coordinator vs broker vs gossip peers.

use wsg_bench::experiments::e6_coordinator;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e6_coordinator");
    let (ns, notifications): (&[usize], u64) =
        if fast { (&[8, 32], 5) } else { (&[8, 16, 32, 64, 128], 20) };

    println!("E6 — coordinator load vs system size ({notifications} notifications each)");
    println!("claim: the coordinator handles control traffic only; a broker carries the data plane\n");
    let rows = e6_coordinator::sweep(ns, notifications, 7);
    let mut table = Table::new(&[
        "subscribers", "coordinator recv (control)", "broker recv (data)", "gossip mean recv/node",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.n.to_string(),
            r.coordinator_received.to_string(),
            r.broker_received.to_string(),
            format!("{:.1}", r.gossip_mean_received),
        ]);
    }
    print!("{}", table.render());
    report.add_table("centralized", &table);
    println!("\ncoordinator load is per-membership-change; broker load is per-message x n.");

    let (dist_n, ks, dist_notifications): (usize, &[usize], u64) =
        if fast { (32, &[1, 4], 5) } else { (64, &[1, 2, 4, 8], 20) };
    println!("\n(b) distributed coordinator (paper §3): n={dist_n} subscribers, {dist_notifications} notifications");
    let rows = e6_coordinator::distributed_sweep(dist_n, ks, dist_notifications, 9);
    let mut table = Table::new(&[
        "replicas", "busiest client load", "mean sync load", "busiest total", "coverage",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.coordinators.to_string(),
            r.max_client_received.to_string(),
            format!("{:.1}", r.mean_sync_received),
            r.max_coordinator_received.to_string(),
            format!("{:.4}", r.coverage),
        ]);
    }
    print!("{}", table.render());
    report.add_table("distributed", &table);
    println!("\nreplicas split subscribe/register traffic; replication gossip is the flat overhead.");
    report.write_if_requested();
}
