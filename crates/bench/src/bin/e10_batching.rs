//! E10 — per-peer envelope batching on the live transport: message
//! throughput vs coalescing cap, and the POST-count collapse it buys a
//! full dissemination.

use wsg_bench::experiments::e10_batching::flood;
use wsg_bench::experiments::e8_transport;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e10_batching");
    println!("E10 — per-peer envelope batching on the live transport");
    println!("claim: coalescing a backlog into one POST multiplies message throughput without touching light-load latency\n");

    let messages = if fast { 4000 } else { 10000 };
    let caps: &[usize] = &[1, 2, 4, 8, 16];
    println!("flood: {messages} envelopes at one peer, sweeping max_batch_msgs (best of 2 runs):");
    let mut table = Table::new(&[
        "cap",
        "msgs ok",
        "posts ok",
        "posts saved",
        "mean batch",
        "wall ms",
        "msgs/s",
    ]);
    let mut outcomes = Vec::new();
    for (i, &cap) in caps.iter().enumerate() {
        // Best of two runs: one scheduling hiccup must not decide the
        // throughput row (or the speedup assertion below) in CI.
        let first = flood(messages, cap, 21 + i as u64);
        let second = flood(messages, cap, 121 + i as u64);
        let outcome = if first.msgs_per_sec >= second.msgs_per_sec { first } else { second };
        println!(
            "  cap {:>2}: {} msgs over {} POSTs (mean batch {:.1}) in {:.0} ms -> {:.0} msgs/s",
            cap,
            outcome.msgs_ok,
            outcome.posts_ok,
            outcome.mean_batch,
            outcome.elapsed_ms,
            outcome.msgs_per_sec,
        );
        assert!(outcome.complete, "flood at cap {cap} must deliver everything: {outcome:?}");
        table.row_owned(vec![
            cap.to_string(),
            outcome.msgs_ok.to_string(),
            outcome.posts_ok.to_string(),
            outcome.posts_saved.to_string(),
            format!("{:.1}", outcome.mean_batch),
            format!("{:.0}", outcome.elapsed_ms),
            format!("{:.0}", outcome.msgs_per_sec),
        ]);
        outcomes.push(outcome);
    }
    println!();
    print!("{}", table.render());
    report.add_table("flood", &table);

    let base = outcomes.first().expect("cap sweep is non-empty");
    let top = outcomes.last().expect("cap sweep is non-empty");
    let speedup = top.msgs_per_sec / base.msgs_per_sec;
    println!(
        "\nthroughput at cap {} is {:.1}x cap {} ({:.0} vs {:.0} msgs/s)",
        top.cap, speedup, base.cap, top.msgs_per_sec, base.msgs_per_sec
    );

    let (subscribers, ticks, run_ms) = if fast { (4, 2, 1800) } else { (8, 5, 3500) };
    println!("\ndissemination rerun ({subscribers} subscribers, {ticks} ticks), unbatched vs batched:");
    let mut dt = Table::new(&[
        "cap",
        "complete",
        "posts ok",
        "msgs ok",
        "posts saved",
        "wall ms",
    ]);
    for &cap in &[1usize, 16] {
        let outcome = e8_transport::dissemination_with_cap(subscribers, ticks, 17, run_ms, cap);
        println!(
            "  cap {:>2}: {}/{} complete | {} envelopes over {} POSTs ({} saved)",
            cap,
            outcome.complete_subscribers,
            outcome.subscribers,
            outcome.msgs_ok,
            outcome.posts_ok,
            outcome.posts_saved,
        );
        assert_eq!(
            outcome.complete_subscribers, outcome.subscribers,
            "dissemination must stay complete at cap {cap}"
        );
        dt.row_owned(vec![
            cap.to_string(),
            format!("{}/{}", outcome.complete_subscribers, outcome.subscribers),
            outcome.posts_ok.to_string(),
            outcome.msgs_ok.to_string(),
            outcome.posts_saved.to_string(),
            outcome.elapsed_ms.to_string(),
        ]);
    }
    report.add_table("dissemination", &dt);
    report.write_if_requested();

    assert!(
        speedup >= 2.0,
        "batching must at least double flood throughput (cap {} vs cap {}): {:.2}x",
        top.cap,
        base.cap,
        speedup
    );
}
