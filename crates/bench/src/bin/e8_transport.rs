//! E8 — SOAP-over-HTTP transport cost: loopback round-trip latency by
//! payload size, then a full gossip dissemination over real sockets.

use wsg_bench::experiments::e8_transport;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e8_transport");
    println!("E8 — transport cost on real loopback sockets");
    println!("claim: the middleware's gossip rounds survive contact with an actual TCP stack\n");

    let sizes: &[usize] =
        if fast { &[64, 4096] } else { &[64, 1024, 16 * 1024, 256 * 1024] };
    let rows = e8_transport::roundtrips(sizes);
    let mut table = Table::new(&["payload B", "wire B", "min", "median", "mean"]);
    for r in &rows {
        table.row_owned(vec![
            r.payload_bytes.to_string(),
            r.wire_bytes.to_string(),
            format!("{:.1} µs", r.measurement.min_ns / 1e3),
            format!("{:.1} µs", r.measurement.median_ns / 1e3),
            format!("{:.1} µs", r.measurement.mean_ns / 1e3),
        ]);
    }
    print!("{}", table.render());
    report.add_table("roundtrips", &table);

    let (subscribers, ticks, run_ms) = if fast { (4, 2, 1800) } else { (8, 5, 3500) };
    println!("\nlive dissemination over sockets ({subscribers} subscribers, {ticks} ticks):");
    let outcome = e8_transport::dissemination(subscribers, ticks, 17, run_ms);
    println!(
        "  {}/{} subscribers complete | {} envelopes over {} POSTs ({} saved by batching), {} failed | {} ms wall",
        outcome.complete_subscribers,
        outcome.subscribers,
        outcome.msgs_ok,
        outcome.posts_ok,
        outcome.posts_saved,
        outcome.posts_failed,
        outcome.elapsed_ms,
    );
    let mut dt = Table::new(&[
        "subscribers",
        "complete",
        "posts ok",
        "msgs ok",
        "posts saved",
        "posts failed",
        "wall ms",
    ]);
    dt.row_owned(vec![
        outcome.subscribers.to_string(),
        outcome.complete_subscribers.to_string(),
        outcome.posts_ok.to_string(),
        outcome.msgs_ok.to_string(),
        outcome.posts_saved.to_string(),
        outcome.posts_failed.to_string(),
        outcome.elapsed_ms.to_string(),
    ]);
    report.add_table("dissemination", &dt);
    report.write_if_requested();
    assert_eq!(
        outcome.complete_subscribers, outcome.subscribers,
        "dissemination must complete over the socket transport"
    );
}
