//! E4 — survivor coverage under crashes and message loss.

use wsg_bench::experiments::e4_resilience;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e4_resilience");
    let (n, fractions, seeds): (usize, &[f64], u64) = if fast {
        (64, &[0.0, 0.2, 0.4], 3)
    } else {
        (256, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 10)
    };

    println!("E4 — resilience to process and network faults (n={n})");
    println!("claim: gossip is 'highly resilient to network and process faults'\n");

    println!("(a) crash sweep — survivor coverage");
    let rows = e4_resilience::crash_sweep(n, fractions, seeds);
    let mut table = Table::new(&["crash fraction", "gossip", "tree(k=2)", "direct"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.1}", r.fault),
            format!("{:.4}", r.gossip),
            format!("{:.4}", r.tree),
            format!("{:.4}", r.direct),
        ]);
    }
    print!("{}", table.render());
    report.add_table("crash", &table);

    println!("\n(b) loss sweep — coverage");
    let rows = e4_resilience::loss_sweep(n, fractions, seeds);
    let mut table = Table::new(&["loss probability", "gossip", "tree(k=2)", "direct"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.1}", r.fault),
            format!("{:.4}", r.gossip),
            format!("{:.4}", r.tree),
            format!("{:.4}", r.direct),
        ]);
    }
    print!("{}", table.render());
    report.add_table("loss", &table);

    let (churn_n, churn_msgs) = if fast { (48, 8) } else { (128, 20) };
    println!("\n(c) continuous churn (n={churn_n}, {churn_msgs} messages, crash every 400ms / down 2s)");
    let rows = e4_resilience::churn_comparison(churn_n, churn_msgs, 5);
    let mut table = Table::new(&[
        "style", "churned-node coverage", "stable-node coverage",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.style.to_string(),
            format!("{:.4}", r.churned_node_coverage),
            format!("{:.4}", r.stable_node_coverage),
        ]);
    }
    print!("{}", table.render());
    report.add_table("churn", &table);
    println!("\npush-pull's periodic reconciliation repairs nodes that were down at publish time.");
    report.write_if_requested();
}
