//! A — ablation experiments for the design choices in DESIGN.md §7.

use wsg_bench::experiments::ablations;
use wsg_bench::Table;

fn main() {
    println!("A1 — lazy-push retry fallback (n=64, lazy push under loss)");
    let rows = ablations::retry_ablation(64, &[0.0, 0.1, 0.25, 0.4], 5);
    let mut table = Table::new(&["loss", "coverage with retry", "coverage without"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.2}", r.loss),
            format!("{:.4}", r.with_retry),
            format!("{:.4}", r.without_retry),
        ]);
    }
    print!("{}", table.render());

    println!("\nA2 — periodic-tick jitter (n=64, pull style, 3s)");
    let rows = ablations::jitter_ablation(64, 7);
    let mut table = Table::new(&["jitter", "peak sends / 10ms window", "total sends"]);
    for r in &rows {
        table.row_owned(vec![
            r.jitter.to_string(),
            r.peak_burst.to_string(),
            r.total_pulls.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nA4 — forwarding discipline (n=128, r=16): infect-and-die vs infect-forever");
    let rows = ablations::discipline_ablation(128, &[1, 2, 3, 4, 6], 16, 13);
    let mut table = Table::new(&[
        "f", "die coverage", "die payloads", "forever coverage", "forever payloads",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.fanout.to_string(),
            format!("{:.4}", r.die_coverage),
            r.die_payloads.to_string(),
            format!("{:.4}", r.forever_coverage),
            r.forever_payloads.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nA3 — payload buffer capacity (n=12, node partitioned through 60 messages, then heals)");
    let rows = ablations::buffer_ablation(12, &[4, 16, 64, 256, 1024], 60, 5);
    let mut table = Table::new(&["buffer capacity", "fraction recovered after heal"]);
    for r in &rows {
        table.row_owned(vec![r.capacity.to_string(), format!("{:.3}", r.recovered)]);
    }
    print!("{}", table.render());
}
