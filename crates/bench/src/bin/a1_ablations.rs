//! A — ablation experiments for the design choices in DESIGN.md §7.

use wsg_bench::experiments::ablations;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("a1_ablations");

    let (a1_n, a1_losses, a1_seeds): (usize, &[f64], u64) =
        if fast { (32, &[0.0, 0.25], 2) } else { (64, &[0.0, 0.1, 0.25, 0.4], 5) };
    println!("A1 — lazy-push retry fallback (n={a1_n}, lazy push under loss)");
    let rows = ablations::retry_ablation(a1_n, a1_losses, a1_seeds);
    let mut table = Table::new(&["loss", "coverage with retry", "coverage without"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.2}", r.loss),
            format!("{:.4}", r.with_retry),
            format!("{:.4}", r.without_retry),
        ]);
    }
    print!("{}", table.render());
    report.add_table("retry", &table);

    let a2_n = if fast { 32 } else { 64 };
    println!("\nA2 — periodic-tick jitter (n={a2_n}, pull style, 3s)");
    let rows = ablations::jitter_ablation(a2_n, 7);
    let mut table = Table::new(&["jitter", "peak sends / 10ms window", "total sends"]);
    for r in &rows {
        table.row_owned(vec![
            r.jitter.to_string(),
            r.peak_burst.to_string(),
            r.total_pulls.to_string(),
        ]);
    }
    print!("{}", table.render());
    report.add_table("jitter", &table);

    let (a4_n, a4_fanouts, a4_rounds): (usize, &[usize], u32) =
        if fast { (48, &[1, 3], 12) } else { (128, &[1, 2, 3, 4, 6], 16) };
    println!("\nA4 — forwarding discipline (n={a4_n}, r={a4_rounds}): infect-and-die vs infect-forever");
    let rows = ablations::discipline_ablation(a4_n, a4_fanouts, a4_rounds, 13);
    let mut table = Table::new(&[
        "f", "die coverage", "die payloads", "forever coverage", "forever payloads",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.fanout.to_string(),
            format!("{:.4}", r.die_coverage),
            r.die_payloads.to_string(),
            format!("{:.4}", r.forever_coverage),
            r.forever_payloads.to_string(),
        ]);
    }
    print!("{}", table.render());
    report.add_table("discipline", &table);

    let (a3_caps, a3_msgs): (&[usize], u64) =
        if fast { (&[4, 256], 30) } else { (&[4, 16, 64, 256, 1024], 60) };
    println!("\nA3 — payload buffer capacity (n=12, node partitioned through {a3_msgs} messages, then heals)");
    let rows = ablations::buffer_ablation(12, a3_caps, a3_msgs, 5);
    let mut table = Table::new(&["buffer capacity", "fraction recovered after heal"]);
    for r in &rows {
        table.row_owned(vec![r.capacity.to_string(), format!("{:.3}", r.recovered)]);
    }
    print!("{}", table.render());
    report.add_table("buffer", &table);
    report.write_if_requested();
}
