//! E5 — throughput under perturbation (the bimodal-multicast comparison).

use wsg_bench::experiments::e5_throughput;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e5_throughput");
    let (n, fractions, rate, secs, delay_ms): (usize, &[f64], u64, u64, u64) = if fast {
        (16, &[0.0, 0.2, 0.4], 25, 2, 500)
    } else {
        (32, &[0.0, 0.05, 0.1, 0.2, 0.3, 0.4], 50, 4, 500)
    };

    println!("E5 — stable high throughput under perturbation (n={n})");
    println!("claim (via Birman et al.): ack-based reliable multicast goodput collapses when");
    println!("receivers slow down; gossip throughput to healthy receivers stays flat\n");
    println!("publisher offers {rate} msg/s for {secs}s; perturbed receivers +{delay_ms}ms processing delay\n");
    let rows = e5_throughput::sweep(n, fractions, rate, secs, delay_ms, 42);
    let mut table = Table::new(&["perturbed fraction", "broker msg/s", "gossip msg/s"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.2}", r.perturbed),
            format!("{:.1}", r.broker_throughput),
            format!("{:.1}", r.gossip_throughput),
        ]);
    }
    print!("{}", table.render());
    report.add_table("throughput", &table);
    report.write_if_requested();
}
