//! E5 — throughput under perturbation (the bimodal-multicast comparison).

use wsg_bench::experiments::e5_throughput;
use wsg_bench::Table;

fn main() {
    let n = 32;
    println!("E5 — stable high throughput under perturbation (n={n})");
    println!("claim (via Birman et al.): ack-based reliable multicast goodput collapses when");
    println!("receivers slow down; gossip throughput to healthy receivers stays flat\n");
    println!("publisher offers 50 msg/s for 4s; perturbed receivers +500ms processing delay\n");
    let rows = e5_throughput::sweep(n, &[0.0, 0.05, 0.1, 0.2, 0.3, 0.4], 50, 4, 500, 42);
    let mut table = Table::new(&["perturbed fraction", "broker msg/s", "gossip msg/s"]);
    for r in &rows {
        table.row_owned(vec![
            format!("{:.2}", r.perturbed),
            format!("{:.1}", r.broker_throughput),
            format!("{:.1}", r.gossip_throughput),
        ]);
    }
    print!("{}", table.render());
}
