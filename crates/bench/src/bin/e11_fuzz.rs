//! E11 — fuzzer throughput: executions per second of the coverage-guided
//! engine on each wire-parser target, seeded from the committed corpus.
//!
//! Build with `RUSTFLAGS="--cfg wsg_cov"` for live edge instrumentation
//! (the honest number for the fuzzing workflow — the corpus can only
//! grow under coverage feedback); without it the engine still runs, the
//! edge columns just stay at zero.

use wsg_bench::report::Report;
use wsg_bench::{timing, Table};
use wsg_fuzz::targets::all_targets;
use wsg_fuzz::{corpus, fuzz, FuzzConfig};

fn main() {
    let fast = timing::fast_mode();
    let budget: u64 = if fast { 2_000 } else { 50_000 };
    let mut report = Report::new("e11_fuzz");
    println!("E11 — coverage-guided fuzzer throughput per wire-parser target");
    println!(
        "claim: the in-tree engine sustains useful exec rates on every parser{}\n",
        if wsg_net::cov::enabled() {
            " (edge instrumentation live)"
        } else {
            " (instrumentation compiled out; RUSTFLAGS=\"--cfg wsg_cov\" arms the edge columns)"
        }
    );

    let config = FuzzConfig { budget, ..FuzzConfig::default() };
    let mut table =
        Table::new(&["target", "execs", "wall ms", "execs/s", "corpus", "new edges", "crashes"]);
    for target in all_targets() {
        let mut seeds = corpus::seeds(target.name()).expect("committed seed corpus");
        seeds.extend(corpus::regressions(target.name()).expect("regression corpus"));
        let start = timing::now();
        let outcome = fuzz(target.as_ref(), &seeds, &config);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let execs_per_sec = outcome.executions as f64 / (wall_ms / 1e3).max(1e-9);
        println!(
            "  {:<11} {:>7} execs in {:>6.0} ms -> {:>8.0} execs/s ({} corpus, {} new edges)",
            outcome.target,
            outcome.executions,
            wall_ms,
            execs_per_sec,
            outcome.corpus.len(),
            outcome.new_edges,
        );
        table.row_owned(vec![
            outcome.target.to_string(),
            outcome.executions.to_string(),
            format!("{wall_ms:.0}"),
            format!("{execs_per_sec:.0}"),
            outcome.corpus.len().to_string(),
            outcome.new_edges.to_string(),
            outcome.crashes.len().to_string(),
        ]);
        assert!(
            outcome.crashes.is_empty(),
            "{}: the committed parsers must survive a budgeted fuzz run",
            outcome.target
        );
    }
    println!();
    print!("{}", table.render());
    report.add_table("throughput", &table);
    report.write_if_requested();
}
