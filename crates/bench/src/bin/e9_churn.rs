//! E9 — membership churn under load: convergence, crash detection and
//! post-churn agreement latency for the live `wsg_cluster` plane, with a
//! publication stream in flight the whole time.

use wsg_bench::experiments::e9_churn::{churn, ChurnScenario};
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e9_churn");
    println!("E9 — live membership churn over loopback sockets");
    println!("claim: the heartbeat-gossip plane keeps dissemination complete while the fleet churns\n");

    let scenarios: Vec<ChurnScenario> = if fast {
        vec![ChurnScenario {
            subscribers: 5,
            crashes: 1,
            joins: 1,
            ticks: 4,
            publish_interval_ms: 200,
            heartbeat_interval_ms: 40,
        }]
    } else {
        vec![
            ChurnScenario {
                subscribers: 8,
                crashes: 2,
                joins: 2,
                ticks: 12,
                publish_interval_ms: 200,
                heartbeat_interval_ms: 50,
            },
            ChurnScenario {
                subscribers: 14,
                crashes: 4,
                joins: 3,
                ticks: 16,
                publish_interval_ms: 250,
                heartbeat_interval_ms: 50,
            },
        ]
    };

    let mut table = Table::new(&[
        "fleet",
        "crashes",
        "joins",
        "converge ms",
        "detect ms",
        "agree ms",
        "complete",
        "joiners caught up",
    ]);
    let mut all_complete = true;
    for (i, scenario) in scenarios.iter().enumerate() {
        let outcome = churn(*scenario, 40 + i as u64);
        println!(
            "  fleet {}: converged {} ms | {} crashes detected in {} ms | agreement {} ms | {}/{} complete, {}/{} joiners caught up",
            outcome.fleet,
            outcome.convergence_ms,
            scenario.crashes,
            outcome.detection_ms,
            outcome.agreement_ms,
            outcome.complete_survivors,
            outcome.surviving_subscribers,
            outcome.joiners_caught_up,
            outcome.joiners,
        );
        table.row_owned(vec![
            outcome.fleet.to_string(),
            scenario.crashes.to_string(),
            scenario.joins.to_string(),
            outcome.convergence_ms.to_string(),
            outcome.detection_ms.to_string(),
            outcome.agreement_ms.to_string(),
            format!("{}/{}", outcome.complete_survivors, outcome.surviving_subscribers),
            format!("{}/{}", outcome.joiners_caught_up, outcome.joiners),
        ]);
        if outcome.complete_survivors != outcome.surviving_subscribers
            || outcome.joiners_caught_up != outcome.joiners
        {
            all_complete = false;
        }
    }
    println!();
    print!("{}", table.render());
    report.add_table("churn", &table);
    report.write_if_requested();
    assert!(all_complete, "dissemination must stay complete through churn");
}
