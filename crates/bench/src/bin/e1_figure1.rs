//! E1 — Figure 1 of the paper, regenerated as an executable message trace.

use ws_gossip::scenario::{self, Figure1Shape};
use wsg_bench::report::Report;
use wsg_bench::Table;
use wsg_net::sim::SimConfig;
use wsg_xml::Element;

fn main() {
    let mut report = Report::new("e1_figure1");
    println!("E1 / Figure 1 — dissemination using the gossip service");
    println!("paper roles: Coordinator, Initiator (App0b), Disseminators (App1, App2), Consumer (App3)\n");

    let mut net = scenario::build_figure1_network(
        SimConfig::default().seed(2008),
        Figure1Shape { disseminators: 2, consumers: 1 },
    );
    let trace = scenario::install_tracer(&mut net);

    scenario::subscribe_all(&mut net, "quotes");
    net.run_to_quiescence();
    scenario::activate(&mut net, "quotes");
    net.run_to_quiescence();
    scenario::notify(&mut net, "quotes", Element::text_node("op", "payload"));
    net.run_to_quiescence();

    println!("-- wire trace (sends and deliveries) --");
    for line in trace.lock().unwrap().iter() {
        println!("  {line}");
    }

    println!("\n-- role summary --");
    let mut table = Table::new(&["node", "role", "ops", "intercepted", "forwards", "registers", "app changed?"]);
    for id in net.node_ids() {
        let node = net.node(id);
        let layer = node.layer_stats();
        table.row_owned(vec![
            id.to_string(),
            node.role().to_string(),
            node.distinct_ops().len().to_string(),
            layer.as_ref().map(|l| l.intercepted.to_string()).unwrap_or_else(|| "-".into()),
            layer.as_ref().map(|l| l.forwards_sent.to_string()).unwrap_or_else(|| "-".into()),
            layer.as_ref().map(|l| l.registers_sent.to_string()).unwrap_or_else(|| "-".into()),
            match node.role() {
                ws_gossip::Role::Initiator => "yes (activate + notify)".into(),
                ws_gossip::Role::Disseminator => "no (handler only)".into(),
                ws_gossip::Role::Consumer => "no (unchanged)".into(),
                ws_gossip::Role::Coordinator => "n/a (new service)".into(),
            },
        ]);
    }
    print!("{}", table.render());
    report.add_table("roles", &table);
    println!(
        "\ncoverage={:.0}%  wire messages={}  SOAP bytes={}",
        scenario::coverage(&net, 1) * 100.0,
        net.stats().sent,
        net.stats().bytes_sent
    );
    report.write_if_requested();
}
