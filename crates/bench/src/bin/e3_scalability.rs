//! E3 — dissemination latency and per-node load vs system size.

use wsg_bench::experiments::e3_scalability;
use wsg_bench::report::Report;
use wsg_bench::{timing, Table};

fn main() {
    let fast = timing::fast_mode();
    let mut report = Report::new("e3_scalability");
    let (ns, fanout, seeds): (&[usize], usize, u64) = if fast {
        (&[16, 64, 256], 6, 2)
    } else {
        (&[16, 32, 64, 128, 256, 512, 1024, 2048], 6, 5)
    };

    println!("E3 — scalability (eager push, f={fanout})");
    println!("claim: O(log n) rounds, bounded per-node load; a central sender needs O(n)\n");
    let rows = e3_scalability::sweep(ns, fanout, seeds);
    let mut table = Table::new(&[
        "n", "rounds(sim)", "rounds(pred)", "completion_ms", "lat p50 ms", "lat p99 ms", "gossip max node load", "central sender load", "coverage",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.n.to_string(),
            format!("{:.1}", r.rounds_sim),
            r.rounds_pred.to_string(),
            format!("{:.1}", r.completion_ms),
            r.latency_p50_ms.to_string(),
            r.latency_p99_ms.to_string(),
            format!("{:.1}", r.gossip_max_node_load),
            r.central_sender_load.to_string(),
            format!("{:.4}", r.coverage),
        ]);
    }
    print!("{}", table.render());
    report.add_table("scalability", &table);
    report.write_if_requested();
}
