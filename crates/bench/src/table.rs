//! Minimal fixed-width table rendering for experiment output.

/// A right-aligned fixed-width text table.
///
/// ```
/// use wsg_bench::Table;
///
/// let mut t = Table::new(&["n", "coverage"]);
/// t.row(&["128", "0.997"]);
/// let text = t.render();
/// assert!(text.contains("coverage"));
/// assert!(text.contains("0.997"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header underline, columns padded to content width.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1", "2"]);
        t.row(&["100", "2000"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with("   2"), "{:?}", lines[2]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
