//! Machine-readable bench reports (`BENCH_eN.json`).
//!
//! Every experiment binary accepts a `--json` flag. When present, the
//! binary still prints its human tables to stdout, and additionally emits
//! a `BENCH_{experiment}.json` file with a stable schema so the repo can
//! record a perf trajectory across PRs (see DESIGN.md §5 for the schema).
//!
//! The writer is a hand-rolled minimal JSON emitter — the zero-dependency
//! policy rules out serde — paired with an equally minimal validator
//! ([`validate`]) that CI runs against every emitted file so the schema
//! cannot drift silently.
//!
//! Schema `wsg-bench-report/1`:
//!
//! ```json
//! {
//!   "schema": "wsg-bench-report/1",
//!   "experiment": "e2_reliability",
//!   "mode": "full",              // or "fast" under WSG_BENCH_FAST=1
//!   "threads": 8,                // sweep worker count
//!   "cells": 260,                // (config, seed) cells executed
//!   "wall_clock_ms": 1234.5,
//!   "cells_per_sec": 210.6,
//!   "cell_ms": {"min": ..., "median": ..., "mean": ..., "max": ...},
//!   "metrics": {"wsg_gossip_published_total{...}": 1, ...},  // optional
//!   "tables": [{"name": "...", "columns": [...], "rows": [[...], ...]}]
//! }
//! ```
//!
//! The optional `metrics` key carries a [`wsg_obs::Registry`] snapshot
//! (see [`Report::add_metrics`]): one entry per exposition sample, in the
//! registry's deterministic render order.

use crate::sweep;
use crate::table::Table;
use crate::timing;
use std::time::Instant;

/// The schema identifier emitted in every report.
pub const SCHEMA: &str = "wsg-bench-report/1";

/// Keys every report must carry (checked by [`validate`] and by CI).
pub const REQUIRED_KEYS: [&str; 9] = [
    "schema",
    "experiment",
    "mode",
    "threads",
    "cells",
    "wall_clock_ms",
    "cells_per_sec",
    "cell_ms",
    "tables",
];

/// Collects an experiment's tables and sweep statistics into a JSON report.
pub struct Report {
    experiment: String,
    started: Instant,
    tables: Vec<(String, Table)>,
    metrics: Vec<(String, f64)>,
    emit: bool,
}

impl Report {
    /// Start a report for `experiment` (e.g. `"e2_reliability"`). Resets the
    /// sweep cell counters, so construct it before running any sweeps.
    /// `--json` anywhere in the process arguments arms file emission.
    pub fn new(experiment: &str) -> Self {
        sweep::reset_counters();
        Report {
            experiment: experiment.to_string(),
            started: timing::now(),
            tables: Vec::new(),
            metrics: Vec::new(),
            emit: std::env::args().any(|a| a == "--json"),
        }
    }

    /// Whether `--json` was requested.
    pub fn enabled(&self) -> bool {
        self.emit
    }

    /// Record a finished table under a short snake_case name.
    pub fn add_table(&mut self, name: &str, table: &Table) {
        self.tables.push((name.to_string(), table.clone()));
    }

    /// Snapshot a [`wsg_obs::Registry`] into the report's optional
    /// `metrics` key: one `"name{labels}": value` entry per exposition
    /// sample, in the registry's deterministic render order. Calling it
    /// again replaces the previous snapshot (the report records the
    /// final state, not a time series).
    pub fn add_metrics(&mut self, registry: &wsg_obs::Registry) {
        self.metrics = wsg_obs::parse_exposition(&registry.render())
            .expect("a registry always renders a parseable exposition");
    }

    /// Render the report as a JSON string (always possible, even when
    /// `--json` was not passed — used by tests).
    pub fn to_json(&self) -> String {
        let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let cells = sweep::cells_executed();
        let cells_per_sec = if wall_ms > 0.0 { cells as f64 / (wall_ms / 1e3) } else { 0.0 };
        let mut nanos = sweep::cell_nanos();
        nanos.sort_unstable();
        let ms = |n: u64| n as f64 / 1e6;
        let (min, median, mean, max) = if nanos.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (
                ms(nanos[0]),
                ms(nanos[nanos.len() / 2]),
                ms(nanos.iter().sum::<u64>() / nanos.len() as u64),
                ms(*nanos.last().expect("non-empty")),
            )
        };

        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
        out.push_str(&format!("  \"experiment\": {},\n", json_string(&self.experiment)));
        let mode = if timing::fast_mode() { "fast" } else { "full" };
        out.push_str(&format!("  \"mode\": {},\n", json_string(mode)));
        out.push_str(&format!("  \"threads\": {},\n", sweep::threads()));
        out.push_str(&format!("  \"cells\": {cells},\n"));
        out.push_str(&format!("  \"wall_clock_ms\": {},\n", json_number(wall_ms)));
        out.push_str(&format!("  \"cells_per_sec\": {},\n", json_number(cells_per_sec)));
        out.push_str(&format!(
            "  \"cell_ms\": {{\"min\": {}, \"median\": {}, \"mean\": {}, \"max\": {}}},\n",
            json_number(min),
            json_number(median),
            json_number(mean),
            json_number(max)
        ));
        if !self.metrics.is_empty() {
            out.push_str("  \"metrics\": {");
            for (i, (key, value)) in self.metrics.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(key), json_number(*value)));
            }
            out.push_str("},\n");
        }
        out.push_str("  \"tables\": [");
        for (i, (name, table)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\": {}, \"columns\": [", json_string(name)));
            for (j, h) in table.headers().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(h));
            }
            out.push_str("], \"rows\": [");
            for (j, row) in table.rows().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for (k, cell) in row.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_string(cell));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        if !self.tables.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// When `--json` was passed, validate and write `BENCH_{experiment}.json`
    /// into `WSG_BENCH_DIR` (default: current directory) and note the path on
    /// stderr (stdout stays byte-identical to a run without `--json`).
    pub fn write_if_requested(&self) {
        if !self.emit {
            return;
        }
        let json = self.to_json();
        validate(&json).expect("emitted report must satisfy its own schema");
        let dir = std::env::var("WSG_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{}.json", self.experiment);
        std::fs::write(&path, &json).expect("write bench report");
        eprintln!("wrote {path}");
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        // Three decimals keeps reports diff-stable across runs of equal work.
        format!("{x:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Check that `json` parses and carries every [`REQUIRED_KEYS`] entry with
/// a sane type. Returns a human-readable error on failure. This is the
/// same check CI applies to emitted `BENCH_*.json` files.
pub fn validate(json: &str) -> Result<(), String> {
    let value = parse(json)?;
    let Value::Object(fields) = value else {
        return Err("top-level value must be an object".to_string());
    };
    let get = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing required key {key:?}"))
    };
    for key in REQUIRED_KEYS {
        get(key)?;
    }
    match get("schema")? {
        Value::String(s) if s == SCHEMA => {}
        other => return Err(format!("schema must be {SCHEMA:?}, got {other:?}")),
    }
    match get("mode")? {
        Value::String(s) if s == "fast" || s == "full" => {}
        other => return Err(format!("mode must be \"fast\" or \"full\", got {other:?}")),
    }
    for key in ["threads", "cells", "wall_clock_ms", "cells_per_sec"] {
        if !matches!(get(key)?, Value::Number(_)) {
            return Err(format!("{key} must be a number"));
        }
    }
    if !matches!(get("cell_ms")?, Value::Object(_)) {
        return Err("cell_ms must be an object".to_string());
    }
    let Value::Array(tables) = get("tables")? else {
        return Err("tables must be an array".to_string());
    };
    for table in tables {
        let Value::Object(t) = table else {
            return Err("each table must be an object".to_string());
        };
        for key in ["name", "columns", "rows"] {
            if !t.iter().any(|(k, _)| k == key) {
                return Err(format!("table missing key {key:?}"));
            }
        }
    }
    Ok(())
}

/// A minimal JSON value — just enough structure for [`validate`].
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Recursive-descent JSON parser over the full grammar (objects kept as
/// ordered key/value vectors; numbers as f64).
fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (JSON strings are valid UTF-8
                // here because the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_validator() {
        let mut report = Report::new("test_experiment");
        let mut t = Table::new(&["n", "coverage"]);
        t.row(&["128", "0.997"]);
        report.add_table("main", &t);
        let json = report.to_json();
        validate(&json).expect("self-emitted report validates");
        assert!(json.contains("\"schema\": \"wsg-bench-report/1\""));
        assert!(json.contains("\"experiment\": \"test_experiment\""));
        assert!(json.contains("\"columns\": [\"n\", \"coverage\"]"));
        assert!(json.contains("[\"128\", \"0.997\"]"));
    }

    #[test]
    fn metrics_snapshot_lands_in_the_report() {
        let registry = wsg_obs::Registry::new();
        registry.register_counter("wsg_demo_total", "Demo counter.").set(3);
        registry
            .register_gauge_family("wsg_demo_active", "Demo gauge.", &["style"])
            .with(&["pull"])
            .set(-2);
        let mut report = Report::new("metrics_test");
        report.add_metrics(&registry);
        let json = report.to_json();
        validate(&json).expect("report with metrics validates");
        assert!(json.contains("\"wsg_demo_total\": 3.000"), "{json}");
        assert!(json.contains("\"wsg_demo_active{style=\\\"pull\\\"}\": -2.000"), "{json}");
    }

    #[test]
    fn empty_registry_omits_the_metrics_key() {
        let report = Report::new("metrics_test");
        let json = report.to_json();
        validate(&json).expect("report without metrics validates");
        assert!(!json.contains("\"metrics\""), "{json}");
    }

    #[test]
    fn validator_rejects_missing_keys() {
        let err = validate("{\"schema\": \"wsg-bench-report/1\"}").unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let report = Report::new("x");
        let json = report.to_json().replace("wsg-bench-report/1", "other/9");
        assert!(validate(&json).unwrap_err().contains("schema"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("not json").is_err());
        assert!(validate("[1, 2]").is_err());
        assert!(validate("{\"a\": }").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse("{\"a\": [1, -2.5e1, \"x\\n\\\"y\\u0041\", true, null]}").unwrap();
        let Value::Object(fields) = v else { panic!("object") };
        let Value::Array(items) = &fields[0].1 else { panic!("array") };
        assert_eq!(items[0], Value::Number(1.0));
        assert_eq!(items[1], Value::Number(-25.0));
        assert_eq!(items[2], Value::String("x\n\"yA".to_string()));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
