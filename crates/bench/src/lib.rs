//! # wsg-bench — the experiment harness
//!
//! One module per experiment (see `DESIGN.md` §2 for the mapping from the
//! paper's claims to experiments E1–E8) plus a tiny fixed-width [`table`]
//! renderer. Each `src/bin/eN_*.rs` binary is a thin wrapper that runs the
//! corresponding module and prints its rows, so the experiment logic is
//! unit-testable here.

pub mod experiments;
pub mod report;
pub mod sweep;
pub mod table;
pub mod timing;

pub use table::Table;

/// Count heap allocations made by the harness so experiments can assert
/// that hot-path serialization got cheaper (see [`timing::count_allocs`]).
/// The wrapper delegates straight to the system allocator, so overhead is
/// one relaxed atomic increment per allocation.
#[global_allocator]
static ALLOCATOR: timing::CountingAlloc = timing::CountingAlloc;
