//! E8c — full-middleware benchmarks: the end-to-end Figure-1 flow and the
//! handler-chain interception cost per message.
//! Runs on the in-tree `wsg_bench::timing` harness (`harness = false`).

use std::hint::black_box;

use ws_gossip::layer::GossipLayerHandle;
use ws_gossip::scenario::{self, Figure1Shape};
use ws_gossip::GossipHeader;
use wsg_bench::timing::bench;
use wsg_coord::{CoordinationContext, GossipGrant, GossipPolicy, GossipProtocol};
use wsg_net::sim::SimConfig;
use wsg_soap::handler::Direction;
use wsg_soap::{Envelope, HandlerChain, MessageHeaders};
use wsg_xml::Element;

fn bench_figure1_flow() {
    bench("middleware_figure1/full_flow_8_nodes", || {
        let mut net = scenario::build_figure1_network(
            SimConfig::default().seed(1),
            Figure1Shape { disseminators: 4, consumers: 2 },
        );
        scenario::subscribe_all(&mut net, "q");
        net.run_to_quiescence();
        scenario::activate(&mut net, "q");
        net.run_to_quiescence();
        scenario::notify(&mut net, "q", Element::text_node("op", "x"));
        net.run_to_quiescence();
        black_box(net.stats().delivered)
    });
}

fn gossip_notification(seq: u64) -> Envelope {
    let context = CoordinationContext::new(
        "urn:ws-gossip:ctx:0",
        GossipProtocol::Push,
        "http://node0/registration",
        GossipPolicy::default(),
    );
    let header = GossipHeader {
        context_id: "urn:ws-gossip:ctx:0".into(),
        topic: "q".into(),
        origin: "http://node1/gossip".into(),
        seq,
        round: 1,
    };
    Envelope::request(
        MessageHeaders::request("http://node2/gossip", "urn:ws-gossip:2008:Notify"),
        Element::text_node("op", "x"),
    )
    .with_header(context.to_header())
    .with_header(header.to_element())
}

fn bench_interception() {
    // Cost of the gossip handler on an inbound message: dedup check +
    // forward-copy construction for fresh messages.
    {
        let layer = GossipLayerHandle::new("http://node2/gossip", 1);
        layer.set_grant(
            "urn:ws-gossip:ctx:0",
            GossipGrant {
                fanout: 3,
                rounds: 8,
                peers: (3..30).map(|i| format!("http://node{i}/gossip")).collect(),
            },
        );
        let mut chain = HandlerChain::new();
        chain.push(Box::new(layer.handler()));
        let mut seq = 0u64;
        bench("gossip_handler_fresh_message", || {
            seq += 1;
            let result =
                chain.process(Direction::Inbound, gossip_notification(seq), "http://node2/gossip");
            black_box(result.sends.len())
        });
    }

    {
        let layer = GossipLayerHandle::new("http://node2/gossip", 2);
        layer.set_grant(
            "urn:ws-gossip:ctx:0",
            GossipGrant { fanout: 3, rounds: 8, peers: vec!["http://node3/gossip".into()] },
        );
        let mut chain = HandlerChain::new();
        chain.push(Box::new(layer.handler()));
        // Seed the duplicate.
        let _ = chain.process(Direction::Inbound, gossip_notification(0), "http://node2/gossip");
        bench("gossip_handler_duplicate", || {
            let result =
                chain.process(Direction::Inbound, gossip_notification(0), "http://node2/gossip");
            black_box(result.sends.len())
        });
    }
}

fn bench_header_codec() {
    let header = GossipHeader {
        context_id: "urn:ws-gossip:ctx:0".into(),
        topic: "quotes".into(),
        origin: "http://node1/gossip".into(),
        seq: 42,
        round: 3,
    };
    bench("gossip_header_encode", || black_box(header.to_element()));
    let element = header.to_element();
    bench("gossip_header_decode", || black_box(GossipHeader::from_element(black_box(&element))));
}

fn main() {
    bench_figure1_flow();
    bench_interception();
    bench_header_codec();
}
