//! E8a — SOAP stack microbenchmarks: the per-message middleware cost the
//! "compliant middleware stack" of paper §3 pays on every hop.
//! Runs on the in-tree `wsg_bench::timing` harness (`harness = false`).

use std::hint::black_box;

use wsg_bench::timing::{bench, bench_with_param};
use wsg_soap::{EndpointReference, Envelope, MessageHeaders};
use wsg_xml::Element;

fn payload_of_size(bytes: usize) -> Element {
    Element::new("tick")
        .with_child(Element::text_node("symbol", "ACME"))
        .with_child(Element::text_node("blob", "x".repeat(bytes)))
}

fn notification(bytes: usize) -> Envelope {
    Envelope::request(
        MessageHeaders::request("http://node9/gossip", "urn:ws-gossip:2008:Notify")
            .with_message_id("urn:uuid:01234567-89ab-4cde-8f01-23456789abcd")
            .with_from(EndpointReference::new("http://node1/gossip"))
            .with_reply_to(EndpointReference::new("http://node1/gossip")),
        payload_of_size(bytes),
    )
}

fn bench_serialize() {
    for &bytes in &[64usize, 512, 4096] {
        let envelope = notification(bytes);
        bench_with_param("soap_serialize", bytes, || black_box(envelope.to_xml()));
    }
}

fn bench_parse() {
    for &bytes in &[64usize, 512, 4096] {
        let wire = notification(bytes).to_xml();
        bench_with_param("soap_parse", bytes, || {
            Envelope::parse(black_box(&wire)).expect("valid")
        });
    }
}

fn bench_roundtrip() {
    let wire = notification(512).to_xml();
    bench("soap_roundtrip_512B", || {
        let env = Envelope::parse(black_box(&wire)).expect("valid");
        black_box(env.to_xml())
    });
}

fn bench_xml_primitives() {
    let text = "a < b && \"c\" > d — plain text with some & escapes";
    bench("xml_escape_text", || black_box(wsg_xml::escape::escape_text(black_box(text))));
    let doc = notification(512).to_element().to_xml_string();
    bench("xml_tree_parse_1k", || Element::parse(black_box(&doc)).expect("valid"));
}

fn main() {
    bench_serialize();
    bench_parse();
    bench_roundtrip();
    bench_xml_primitives();
}
