//! E8a — SOAP stack microbenchmarks: the per-message middleware cost the
//! "compliant middleware stack" of paper §3 pays on every hop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wsg_soap::{EndpointReference, Envelope, MessageHeaders};
use wsg_xml::Element;

fn payload_of_size(bytes: usize) -> Element {
    Element::new("tick")
        .with_child(Element::text_node("symbol", "ACME"))
        .with_child(Element::text_node("blob", "x".repeat(bytes)))
}

fn notification(bytes: usize) -> Envelope {
    Envelope::request(
        MessageHeaders::request("http://node9/gossip", "urn:ws-gossip:2008:Notify")
            .with_message_id("urn:uuid:01234567-89ab-4cde-8f01-23456789abcd")
            .with_from(EndpointReference::new("http://node1/gossip"))
            .with_reply_to(EndpointReference::new("http://node1/gossip")),
        payload_of_size(bytes),
    )
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("soap_serialize");
    for &bytes in &[64usize, 512, 4096] {
        let envelope = notification(bytes);
        let wire = envelope.to_xml();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &envelope, |b, env| {
            b.iter(|| black_box(env.to_xml()));
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("soap_parse");
    for &bytes in &[64usize, 512, 4096] {
        let wire = notification(bytes).to_xml();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &wire, |b, xml| {
            b.iter(|| Envelope::parse(black_box(xml)).expect("valid"));
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let wire = notification(512).to_xml();
    c.bench_function("soap_roundtrip_512B", |b| {
        b.iter(|| {
            let env = Envelope::parse(black_box(&wire)).expect("valid");
            black_box(env.to_xml())
        });
    });
}

fn bench_xml_primitives(c: &mut Criterion) {
    let text = "a < b && \"c\" > d — plain text with some & escapes";
    c.bench_function("xml_escape_text", |b| {
        b.iter(|| black_box(wsg_xml::escape::escape_text(black_box(text))));
    });
    let doc = notification(512).to_element().to_xml_string();
    c.bench_function("xml_tree_parse_1k", |b| {
        b.iter(|| Element::parse(black_box(&doc)).expect("valid"));
    });
}

criterion_group!(benches, bench_serialize, bench_parse, bench_roundtrip, bench_xml_primitives);
criterion_main!(benches);
