//! E8b — gossip engine microbenchmarks: dissemination cost per message
//! and per run, digest operations, analytic model evaluation.
//! Runs on the in-tree `wsg_bench::timing` harness (`harness = false`).

use std::hint::black_box;

use wsg_bench::timing::{bench, bench_with_param};
use wsg_gossip::{analysis, Digest, GossipConfig, GossipEngine, GossipParams, GossipStyle, MsgId};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;

fn bench_dissemination() {
    for &n in &[64usize, 256, 1024] {
        let params = GossipParams::atomic_for(n);
        bench_with_param("gossip_dissemination", n, || {
            let mut net = SimNet::new(SimConfig::default().seed(1));
            net.add_nodes(n, |id| {
                let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                GossipEngine::<u64>::new(
                    GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                    peers,
                )
            });
            net.start();
            net.invoke(NodeId(0), |engine, ctx| {
                engine.publish(1, ctx);
            });
            net.run_to_quiescence();
            black_box(net.stats().delivered)
        });
    }
}

fn bench_digest() {
    let mut full = Digest::new();
    for origin in 0..8 {
        for seq in 0..256 {
            full.insert(MsgId::new(NodeId(origin), seq));
        }
    }
    let mut half = Digest::new();
    for origin in 0..8 {
        for seq in 0..128 {
            half.insert(MsgId::new(NodeId(origin), seq));
        }
    }
    bench("digest_insert_2048", || {
        let mut d = Digest::new();
        for origin in 0..8 {
            for seq in 0..256 {
                d.insert(MsgId::new(NodeId(origin), seq));
            }
        }
        black_box(d)
    });
    bench("digest_missing_from_half", || black_box(full.missing_from(black_box(&half))));
}

fn bench_analysis() {
    bench("analysis_expected_coverage_1e6", || {
        black_box(analysis::expected_coverage(1_000_000, 8, 30))
    });
    bench("analysis_fanout_for_atomicity", || {
        black_box(analysis::fanout_for_atomicity(black_box(100_000), 0.999))
    });
}

fn bench_aggregation() {
    use wsg_gossip::PushSum;
    use wsg_net::{SimDuration, SimTime};
    for &n in &[32usize, 128] {
        bench_with_param("push_sum_convergence", n, || {
            let mut net = SimNet::new(SimConfig::default().seed(3));
            for i in 0..n {
                let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
                net.add_node(PushSum::new(i as f64, peers, SimDuration::from_millis(50)));
            }
            net.start();
            net.run_until(SimTime::from_secs(3));
            black_box(net.node(NodeId(0)).estimate())
        });
    }
}

fn main() {
    bench_dissemination();
    bench_digest();
    bench_analysis();
    bench_aggregation();
}
