//! E8b — gossip engine microbenchmarks: dissemination cost per message
//! and per run, digest operations, analytic model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wsg_gossip::{analysis, Digest, GossipConfig, GossipEngine, GossipParams, GossipStyle, MsgId};
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::NodeId;

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_dissemination");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = GossipParams::atomic_for(n);
            b.iter(|| {
                let mut net = SimNet::new(SimConfig::default().seed(1));
                net.add_nodes(n, |id| {
                    let peers = (0..n).map(NodeId).filter(|p| *p != id).collect();
                    GossipEngine::<u64>::new(
                        GossipConfig::new(GossipStyle::EagerPush, params.clone()),
                        peers,
                    )
                });
                net.start();
                net.invoke(NodeId(0), |engine, ctx| {
                    engine.publish(1, ctx);
                });
                net.run_to_quiescence();
                black_box(net.stats().delivered)
            });
        });
    }
    group.finish();
}

fn bench_digest(c: &mut Criterion) {
    let mut full = Digest::new();
    for origin in 0..8 {
        for seq in 0..256 {
            full.insert(MsgId::new(NodeId(origin), seq));
        }
    }
    let mut half = Digest::new();
    for origin in 0..8 {
        for seq in 0..128 {
            half.insert(MsgId::new(NodeId(origin), seq));
        }
    }
    c.bench_function("digest_insert_2048", |b| {
        b.iter(|| {
            let mut d = Digest::new();
            for origin in 0..8 {
                for seq in 0..256 {
                    d.insert(MsgId::new(NodeId(origin), seq));
                }
            }
            black_box(d)
        });
    });
    c.bench_function("digest_missing_from_half", |b| {
        b.iter(|| black_box(full.missing_from(black_box(&half))));
    });
}

fn bench_analysis(c: &mut Criterion) {
    c.bench_function("analysis_expected_coverage_1e6", |b| {
        b.iter(|| black_box(analysis::expected_coverage(1_000_000, 8, 30)));
    });
    c.bench_function("analysis_fanout_for_atomicity", |b| {
        b.iter(|| black_box(analysis::fanout_for_atomicity(black_box(100_000), 0.999)));
    });
}

fn bench_aggregation(c: &mut Criterion) {
    use wsg_gossip::PushSum;
    use wsg_net::{SimDuration, SimTime};
    let mut group = c.benchmark_group("push_sum_convergence");
    group.sample_size(20);
    for &n in &[32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = SimNet::new(SimConfig::default().seed(3));
                for i in 0..n {
                    let peers = (0..n).map(NodeId).filter(|p| p.index() != i).collect();
                    net.add_node(PushSum::new(
                        i as f64,
                        peers,
                        SimDuration::from_millis(50),
                    ));
                }
                net.start();
                net.run_until(SimTime::from_secs(3));
                black_box(net.node(NodeId(0)).estimate())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dissemination, bench_digest, bench_analysis, bench_aggregation);
criterion_main!(benches);
