//! Regression test for per-message serialisation cost: streaming an
//! envelope into a reused scratch buffer must allocate measurably less
//! than building the element tree and serialising it (the pre-optimisation
//! transmit path). Uses the crate's counting global allocator.

use wsg_bench::timing::count_allocs;
use wsg_soap::{EndpointReference, Envelope, MessageHeaders};
use wsg_xml::Element;

fn sample_envelope() -> Envelope {
    Envelope::request(
        MessageHeaders::request("http://node7/gossip", "urn:wsg:Notify")
            .with_message_id("urn:uuid:0001")
            .with_from(EndpointReference::new("http://node1/gossip"))
            .with_reply_to(EndpointReference::new("http://node1/gossip")),
        Element::new("op")
            .with_attr("seq", "12")
            .with_child(Element::text_node("value", "ACME 101.25 & rising")),
    )
    .with_header(
        Element::in_ns("wsg", "urn:wsg", "Gossip")
            .with_child(Element::text_node("Topic", "quotes"))
            .with_child(Element::text_node("Seq", "12")),
    )
}

#[test]
fn streaming_serialisation_allocates_less_than_tree_building() {
    let env = sample_envelope();
    let mut scratch = String::new();
    env.write_xml(&mut scratch); // warm the buffer to steady-state size

    // Minimum over trials: the counter is process-global, so a stray
    // allocation elsewhere inflates individual samples but not the floor.
    let mut streaming = u64::MAX;
    let mut tree = u64::MAX;
    for _ in 0..10 {
        let (_, n) = count_allocs(|| env.write_xml(&mut scratch));
        streaming = streaming.min(n);
        let (_, n) = count_allocs(|| {
            let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            out.push_str(&env.to_element().to_xml_string());
            out
        });
        tree = tree.min(n);
    }

    assert!(streaming > 0, "counting allocator is not active");
    assert!(
        streaming * 2 < tree,
        "streaming path should allocate well under half of the tree path: \
         streaming={streaming} tree={tree}"
    );

    // And the bytes must be identical — the optimisation is transparent.
    assert_eq!(scratch, env.to_xml());
}
