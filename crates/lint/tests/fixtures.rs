//! End-to-end tests over the on-disk fixture trees in
//! `tests/fixtures/{bad,clean}`: exact `(rule, file, line)` hits through
//! the library, and exit codes + diagnostics through the built binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(tree)
}

#[test]
fn bad_tree_yields_exactly_the_planted_violations() {
    let report = wsg_lint::lint_workspace(&fixture("bad")).expect("walk bad fixture tree");
    let got: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{}", d.rule.id, d.file, d.line))
        .collect();
    let want = [
        // H1: version string, inline version, git, version sub-table, patch.
        "H1:Cargo.toml:8",
        "H1:Cargo.toml:9",
        "H1:Cargo.toml:13",
        "H1:Cargo.toml:15",
        "H1:Cargo.toml:18",
        // D1 in the cluster crate: use and field fire; the allow-listed
        // alias and the test module are silent.
        "D1:crates/cluster/src/plane.rs:4",
        "D1:crates/cluster/src/plane.rs:7",
        // T1: connect/accept with no timeout in the enclosing fn; the
        // connect_timeout + set_*_timeout fn and the test module are silent.
        "T1:crates/cluster/src/transport.rs:6",
        "T1:crates/cluster/src/transport.rs:10",
        // D1: use, field, and un-allowed alias — NOT the occurrences in
        // comments/strings/raw strings, the allow-listed line, or tests.
        "D1:crates/coord/src/lib.rs:4",
        "D1:crates/coord/src/lib.rs:7",
        "D1:crates/coord/src/lib.rs:20",
        // D3: `rand::` path and `thread_rng` both fire on line 6.
        "D3:crates/gossip/src/engine.rs:6",
        "D3:crates/gossip/src/engine.rs:6",
        "D3:crates/gossip/src/engine.rs:7",
        // E2 discards; line 19 fires both E2 (the `let _ =`) and P1 (the
        // unwrap). P1 only inside Protocol/Handler impls; the free fn on
        // line 12 is exempt.
        "E2:crates/gossip/src/engine.rs:8",
        "E2:crates/gossip/src/engine.rs:19",
        "P1:crates/gossip/src/engine.rs:19",
        "P1:crates/gossip/src/engine.rs:20",
        "P1:crates/gossip/src/engine.rs:26",
        // E2: let-discard and terminal `.ok();` fire; consumed `.ok()?`,
        // the reasoned allow, and the test module are silent. The
        // reasonless allow on line 21 is an M1 and suppresses nothing,
        // so line 22 still fires.
        "E2:crates/gossip/src/swallow.rs:6",
        "E2:crates/gossip/src/swallow.rs:7",
        "M1:crates/gossip/src/swallow.rs:21",
        "E2:crates/gossip/src/swallow.rs:22",
        // D1 + P1 by file scope in the wire-batching queue module; the
        // test module's HashMap and unwrap are silent.
        "D1:crates/http/src/batch.rs:4",
        "D1:crates/http/src/batch.rs:7",
        "P1:crates/http/src/batch.rs:11",
        // P1 by file scope in the HTTP hot path; line 11 is allow-listed.
        "P1:crates/http/src/server.rs:5",
        "P1:crates/http/src/server.rs:6",
        // D2: SystemTime in the use, SystemTime::now, Instant::now — but
        // not the `Instant` parameter type on line 12.
        "D2:crates/net/src/clock.rs:3",
        "D2:crates/net/src/clock.rs:7",
        "D2:crates/net/src/clock.rs:8",
        // M1: allow naming an unknown rule.
        "M1:crates/net/src/clock.rs:16",
        // A2: Relaxed outside the stats-counter allowlist — NOT the same
        // spelling in comments, strings or raw strings, nor Acquire.
        "A2:crates/net/src/counters.rs:8",
        // O1: bad literal metric names; the valid and dynamic ones are
        // silent, as is the test module.
        "O1:crates/obs/src/metrics.rs:4",
        "O1:crates/obs/src/metrics.rs:5",
        // F1: cov!() outside the designated parser modules; the `cov::`
        // path, the string, the allowed probe and the test are silent.
        "F1:crates/soap/src/codec.rs:7",
    ];
    assert_eq!(got, want, "diagnostics drifted from the planted fixture violations");

    let stale: Vec<String> =
        report.stale_allows.iter().map(|s| format!("{}:{}:{}", s.file, s.line, s.rules)).collect();
    assert_eq!(stale, ["crates/coord/src/lib.rs:22:wall-clock"]);
}

#[test]
fn every_rule_fires_at_least_once_on_the_bad_tree() {
    let report = wsg_lint::lint_workspace(&fixture("bad")).expect("walk bad fixture tree");
    for id in ["D1", "D2", "D3", "P1", "H1", "M1", "O1", "A2", "E2", "T1", "F1"] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule.id == id),
            "rule {id} has no fixture coverage"
        );
    }
}

#[test]
fn clean_tree_is_clean() {
    let report = wsg_lint::lint_workspace(&fixture("clean")).expect("walk clean fixture tree");
    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(msgs.is_empty(), "clean fixture tree produced diagnostics:\n{}", msgs.join("\n"));
    assert!(report.stale_allows.is_empty());
    assert_eq!((report.sources, report.manifests), (8, 1));
}

// ------------------------------------------------------------- binary

fn run_lint(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_wsg_lint"))
        .args(args)
        .output()
        .expect("spawn wsg_lint binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_with_file_line_diagnostics_on_bad_tree() {
    let bad = fixture("bad");
    let (code, stdout, stderr) = run_lint(&["--root", bad.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stdout:\n{stdout}\nstderr:\n{stderr}");
    // One representative file:line diagnostic per rule.
    for needle in [
        "crates/coord/src/lib.rs:4: D1 [hash-collections]",
        "crates/net/src/clock.rs:8: D2 [wall-clock]",
        "crates/gossip/src/engine.rs:7: D3 [ambient-rng]",
        "crates/http/src/server.rs:5: P1 [panic-path]",
        "Cargo.toml:8: H1 [registry-deps]",
        "crates/net/src/clock.rs:16: M1 [allow-grammar]",
        "crates/net/src/counters.rs:8: A2 [atomic-ordering]",
        "crates/gossip/src/swallow.rs:6: E2 [error-swallowing]",
        "crates/cluster/src/transport.rs:6: T1 [socket-timeout]",
        "crates/soap/src/codec.rs:7: F1 [cov-scope]",
        "stale `wsg_lint: allow(wall-clock)`",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    assert!(stderr.contains("FAIL"), "{stderr}");
}

#[test]
fn binary_exits_zero_on_clean_tree_even_with_deny_all() {
    let clean = fixture("clean");
    let (code, stdout, stderr) = run_lint(&["--root", clean.to_str().unwrap(), "--deny-all"]);
    assert_eq!(code, Some(0), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("clean"), "{stderr}");
}

#[test]
fn deny_all_turns_stale_allows_into_failure() {
    // A tree whose only problem is a stale allow: passes by default,
    // fails under --deny-all.
    let dir = std::env::temp_dir().join(format!("wsg_lint_stale_{}", std::process::id()));
    let src_dir = dir.join("crates/coord/src");
    std::fs::create_dir_all(&src_dir).expect("mk temp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "// wsg_lint: allow(hash-collections)\npub fn fine() {}\n",
    )
    .expect("write stale-allow source");

    let root = dir.to_str().unwrap();
    let (code, stdout, _) = run_lint(&["--root", root]);
    assert_eq!(code, Some(0), "stale allow alone must not fail by default:\n{stdout}");
    assert!(stdout.contains("stale"), "{stdout}");

    let (code, stdout, stderr) = run_lint(&["--root", root, "--deny-all"]);
    assert_eq!(code, Some(1), "--deny-all must fail on stale allows:\n{stdout}\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_report_carries_schema_diagnostics_and_exit_codes() {
    let bad = fixture("bad");
    let (code, stdout, _) = run_lint(&["--root", bad.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(1), "{stdout}");
    // One JSON object, nothing human-readable mixed into the stream.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    for needle in [
        "\"schema\": \"wsg-lint-report/1\"",
        "\"failed\": true",
        "\"rule\": \"F1\"",
        "\"name\": \"cov-scope\"",
        "\"file\": \"crates/coord/src/lib.rs\"",
        "\"rules\": \"wall-clock\"",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    let clean = fixture("clean");
    let (code, stdout, _) = run_lint(&["--root", clean.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"failed\": false"), "{stdout}");
    assert!(stdout.contains("\"diagnostics\": []"), "{stdout}");
    assert!(stdout.contains("\"stale_allows\": []"), "{stdout}");
}

#[test]
fn list_prints_the_rule_catalogue() {
    let (code, stdout, _) = run_lint(&["--list"]);
    assert_eq!(code, Some(0));
    for rule in wsg_lint::rules::RULES {
        assert!(stdout.contains(rule.id) && stdout.contains(rule.name), "{stdout}");
    }
}
