//! The workspace lints itself: this is the same gate CI runs via
//! `cargo run -p wsg_lint -- --deny-all`, as a test so a violation also
//! fails plain `cargo test`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wsg_lint::lint_workspace(&root).expect("walk workspace");

    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(msgs.is_empty(), "workspace has lint violations:\n{}", msgs.join("\n"));

    let stale: Vec<String> = report
        .stale_allows
        .iter()
        .map(|s| format!("{}:{} allow({})", s.file, s.line, s.rules))
        .collect();
    assert!(stale.is_empty(), "workspace has stale allow comments:\n{}", stale.join("\n"));

    // Sanity: the walk really covered the tree (and did not, say, start
    // from a wrong root and scan nothing).
    assert!(report.sources > 50, "only {} sources scanned", report.sources);
    assert!(report.manifests > 5, "only {} manifests scanned", report.manifests);
}
