//! F1 fixture: a cov!() invocation outside the designated parser
//! modules fires; `cov` in comments, strings and non-macro paths is
//! silent, as are the test module and the allow-commented probe.
//! cov!() mentioned right here is trivia.

pub fn decode(buf: &[u8]) -> usize {
    cov!(); // line 7: fires (F1 — soap/codec is not an instrumented parser)
    buf.len()
}

pub fn reset_counters() {
    cov::reset(); // a `cov` path, not the macro — silent
}

pub const DOC: &str = "sprinkle cov!() everywhere";

pub fn audited(buf: &[u8]) -> bool {
    // wsg_lint: allow(cov-scope) — fixture: justified one-off probe
    cov!();
    !buf.is_empty()
}

#[cfg(test)]
mod tests {
    #[test]
    fn instrumented_for_a_test() {
        cov!(); // test modules are silent
    }
}
