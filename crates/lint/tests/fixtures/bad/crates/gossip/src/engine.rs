//! D3 + P1 fixture: ambient randomness, and panics inside a Protocol
//! handler impl (vs. a free function, which P1 ignores outside the HTTP
//! hot-path files).

pub fn seed_peers() {
    let mut rng = rand::thread_rng(); // line 6: fires twice (rand:: path + thread_rng)
    let _state = RandomState::new(); // line 7: fires (RandomState); named discard, no E2
    let _ = rng; // line 8: fires (E2)
}

pub fn free_function_can_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // no P1: not a handler impl, not an HTTP hot-path file
}

pub struct Node;

impl Protocol for Node {
    fn on_message(&mut self, payload: Option<u8>) {
        let _ = payload.unwrap(); // line 19: fires twice (E2 discard + P1 unwrap)
        panic!("boom"); // line 20: fires (P1)
    }
}

impl Handler for Node {
    fn handle(&mut self) {
        unreachable!() // line 26: fires (P1)
    }
}

impl Node {
    pub fn inherent(&self, x: Option<u8>) -> u8 {
        x.expect("inherent impls are not handler surfaces") // no P1
    }
}
