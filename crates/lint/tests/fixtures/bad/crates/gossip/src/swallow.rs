//! E2 fixture: silently discarded fallible results fire; consumed
//! `.ok()` values, named discards, reasoned allows and test code do not.
//! A reasonless allow(E2) is itself an M1 and suppresses nothing.

pub fn swallows(tx: &Sender<u32>) {
    let _ = tx.send(1); // line 6: fires (E2 — let discard)
    tx.send(2).ok(); // line 7: fires (E2 — terminal .ok())
}

pub fn consumed(s: &str) -> Option<u32> {
    let v = s.parse::<u32>().ok()?; // .ok()? is consumed: silent
    Some(v).filter(|n| *n > 0)
}

pub fn reasoned(tx: &Sender<u32>) {
    // wsg_lint: allow(E2) — receiver gone means shutdown; nothing to log
    let _ = tx.send(3);
}

pub fn reasonless(tx: &Sender<u32>) {
    // wsg_lint: allow(E2)
    let _ = tx.send(4); // line 22: fires (E2 — the line-21 allow lacks a reason, which is M1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_discard() {
        let _ = super::consumed("7");
        "8".parse::<u32>().ok();
    }
}
