//! D2 fixture: wall-clock reads outside the sanctioned modules.

use std::time::{Duration, Instant, SystemTime};
// line 3 fires once: the `SystemTime` identifier (plain `Instant` is a type, not a read)

pub fn stamp() -> u64 {
    let _epoch = SystemTime::now(); // line 7: fires (SystemTime)
    let t = Instant::now(); // line 8: fires (Instant::now)
    t.elapsed().as_micros() as u64
}

pub fn ok_to_hold(start: Instant) -> Duration {
    start.elapsed() // storing/elapsing a passed-in Instant is fine
}

// wsg_lint: allow(no-such-rule) — typo'd rule names must be loud (M1)
pub fn noop() {}
