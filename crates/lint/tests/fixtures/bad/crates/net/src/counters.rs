//! A2 fixture: a Relaxed ordering outside the audited stats-counter
//! allowlist fires; the same spelling inside comments, strings and raw
//! strings must not. Ordering::Relaxed mentioned right here is trivia.

pub static SEQ: AtomicU64 = AtomicU64::new(0);

pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed) // line 8: fires (A2 — net is not a stats module)
}

pub fn published(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire) // other orderings are silent
}

pub const PLAIN: &str = "stats use Ordering::Relaxed everywhere";
pub const RAW: &str = r#"raw text: Ordering::Relaxed // not a comment, not code"#;
pub const FENCED: &str = r##"fenced "quote" plus Ordering::Relaxed and // slashes"##;
