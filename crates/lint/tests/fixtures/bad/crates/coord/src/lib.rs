//! D1 fixture: protocol-crate scope, every way a hash collection can
//! appear — plus the occurrences that must NOT fire.

use std::collections::HashMap; // line 4: fires

pub struct State {
    pub members: HashMap<String, u64>, // line 7: fires
}

// The same tokens inside literals and comments are invisible to rules:
// HashMap::new() in a line comment
/* HashSet::with_hasher in a block comment */
pub const DOC: &str = "HashMap inside a plain string";
pub const RAW: &str = r#"HashSet inside a raw string with "quotes""#;
pub const CH: char = 'H';

// wsg_lint: allow(hash-collections) — bounded scratch set, order never escapes
pub type Scratch = std::collections::HashSet<u64>; // line 18: suppressed

pub type Leak = std::collections::HashSet<u64>; // line 20: fires (no allow)

// wsg_lint: allow(wall-clock) — stale: the next line reads no clock
pub const N: u32 = 1; // the allow above suppresses nothing → reported stale

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::collections::HashSet::<u8>::new(); // exempt
    }
}
