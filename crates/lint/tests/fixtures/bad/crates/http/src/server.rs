//! P1 fixture: the HTTP server hot path is file-scoped — any panic
//! surface outside test code fires.

pub fn serve(stream: Option<u8>) {
    let _s = stream.unwrap(); // line 5: fires
    let _t = stream.expect("listening"); // line 6: fires
}

pub fn boot() {
    // wsg_lint: allow(panic-path) — startup-only assertion, before serving begins
    panic!("suppressed by the allow above"); // line 11: suppressed
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::serve(Some(1));
        let v: Option<u8> = Some(2);
        v.unwrap();
    }
}
