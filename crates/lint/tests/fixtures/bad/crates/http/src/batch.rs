//! D1+P1 fixture: the wire-batching queue module is both D1 file-scoped
//! (per-peer FIFO drain order is part of the batch format's contract)
//! and P1 file-scoped (a panic here kills the sender thread mid-batch).
use std::collections::HashMap; // line 4: D1 fires

pub struct Queues {
    by_peer: HashMap<u64, Vec<String>>, // line 7: D1 fires
}

pub fn pop(queues: &mut Queues, peer: u64) -> Vec<String> {
    queues.by_peer.remove(&peer).unwrap() // line 11: P1 fires
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_hash() {
        let mut q = super::Queues { by_peer: std::collections::HashMap::new() };
        q.by_peer.insert(1, Vec::new());
        super::pop(&mut q, 1);
    }
}
