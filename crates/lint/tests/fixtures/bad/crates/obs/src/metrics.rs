//! O1 fixture: literal metric names that violate the exposition grammar.

pub fn register(registry: &Registry) {
    registry.register_counter("Wsg_Bad_Total", "uppercase start"); // line 4: fires
    registry.register_gauge_family("wsg-dash-name", "dashes", &["style"]); // line 5: fires
    registry.register_histogram("wsg_good_micros", "valid name, no diagnostic");
}

pub fn dynamic(registry: &Registry, name: &str) {
    // Non-literal names are the registry's runtime problem, not O1's.
    registry.register_counter(name, "dynamic");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_register_anything() {
        registry.register_counter("EVEN THIS", "tests are exempt from all rules");
    }
}
