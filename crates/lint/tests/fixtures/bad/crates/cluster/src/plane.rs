//! D1 fixture for the membership-plane crate: the live view is protocol
//! state, so hash collections are banned here exactly as in `coord`.

use std::collections::HashSet; // line 4: fires

pub struct View {
    pub suspects: HashSet<u64>, // line 7: fires
}

// Invisible to rules: HashMap in a comment, "HashSet" in a string.
pub const DOC: &str = "HashMap of members";

// wsg_lint: allow(hash-collections) — scratch set, order never escapes
pub type Scratch = std::collections::HashSet<u64>; // line 14: suppressed

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::collections::HashMap::<u8, u8>::new(); // exempt
    }
}
