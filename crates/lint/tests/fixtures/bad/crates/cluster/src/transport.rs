//! T1 fixture: blocking socket calls in a live-transport crate, some
//! with no timeout in their enclosing fn (fire) and one lexically paired
//! with the deadline machinery (silent).

pub fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr) // line 6: fires (T1 — no timeout in this fn)
}

pub fn accept_one(listener: &TcpListener) -> std::io::Result<TcpStream> {
    let (stream, _peer) = listener.accept()?; // line 10: fires (T1)
    Ok(stream)
}

pub fn dial_with_deadline(addr: &SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(addr, IO_TIMEOUT)?; // timeout-named: silent
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block_forever() {
        let _c = TcpStream::connect("127.0.0.1:1"); // silent: test region
    }
}
