//! Clean: socket I/O lexically paired with its deadlines (T1), and a
//! discard justified by a reasoned allow (E2).

const IO_TIMEOUT: Duration = Duration::from_millis(500);

pub fn dial(addr: &SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // wsg_lint: allow(E2) — Nagle is a latency tuning; a socket that rejects it still serves
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

pub fn request(stream: &mut TcpStream, wire: &[u8]) -> io::Result<Vec<u8>> {
    let deadline = READ_TIMEOUT; // timeout-named ident covers this fn
    stream.set_read_timeout(Some(deadline))?;
    stream.write_all(wire)?;
    let mut body = Vec::new();
    stream.read_to_end(&mut body)?;
    Ok(body)
}
