//! Clean twin of the batching fixture: ordered queues and typed error
//! handling keep both the D1 and P1 file scopes quiet.
use std::collections::BTreeMap;

pub struct Queues {
    by_peer: BTreeMap<u64, Vec<String>>,
}

pub fn pop(queues: &mut Queues, peer: u64) -> Option<Vec<String>> {
    queues.by_peer.remove(&peer)
}
