//! Clean F1 usage: cov!() edge probes inside a designated parser module
//! (`crates/xml/src/reader.rs` is on the F1_COV_FILES allowlist).

pub fn parse_event(buf: &[u8]) -> Option<u8> {
    cov!();
    if buf.is_empty() {
        cov!();
        return None;
    }
    cov!();
    Some(buf[0])
}
