//! Clean fixture in D1 file scope (`net::sim`): ordered structures only.

use std::collections::{BTreeMap, BTreeSet};

pub struct Sim {
    pub inboxes: BTreeMap<u64, Vec<u8>>,
    pub crashed: BTreeSet<u64>,
}
