//! Clean membership-plane fixture: ordered collections for the view,
//! time through the `Clock` abstraction, no ambient randomness.

use std::collections::{BTreeMap, BTreeSet};

pub struct Plane {
    pub heartbeats: BTreeMap<u64, u64>,
    pub condemned: BTreeSet<u64>,
}

impl Plane {
    pub fn tick(&mut self, member: u64) {
        *self.heartbeats.entry(member).or_insert(0) += 1;
        self.condemned.remove(&member);
    }
}
