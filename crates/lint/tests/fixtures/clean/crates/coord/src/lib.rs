//! Clean fixture: deterministic collections, no wall clock, seeded RNG,
//! fault-returning handlers.

use std::collections::BTreeMap;

pub struct State {
    pub members: BTreeMap<String, u64>,
}

pub struct Node;

impl Protocol for Node {
    fn on_message(&mut self, payload: Option<u8>) -> Result<u8, &'static str> {
        payload.ok_or("empty payload propagates as a fault")
    }
}
