//! Clean: `Ordering::Relaxed` on pure stats counters inside an
//! allowlisted module (A2 exempts the audited stats-counter files).

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn snapshot() -> u64 {
    HITS.load(Ordering::Relaxed)
}
