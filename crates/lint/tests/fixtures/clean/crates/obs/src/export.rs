//! Clean fixture: well-formed metric registrations produce no O1 noise.

pub fn export(registry: &Registry, delivered: u64) {
    registry
        .register_counter("wsg_demo_delivered_total", "Messages delivered.")
        .set(delivered);
    registry.register_gauge_family("wsg_demo_active", "Active peers.", &["style"]);
    registry.register_histogram("wsg_demo_rounds", "Delivery hop counts.");
}
