//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p wsg_lint                # lint the enclosing workspace
//! cargo run -p wsg_lint -- --deny-all  # CI mode: stale allows also fail
//! cargo run -p wsg_lint -- --list      # print the rule catalogue
//! cargo run -p wsg_lint -- --root DIR  # lint an explicit tree
//! ```
//!
//! Exit code 0 when clean, 1 on any diagnostic (or, with `--deny-all`,
//! on stale allow comments), 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" | "-q" => quiet = true,
            "--list" => {
                for rule in wsg_lint::rules::RULES {
                    println!("{:3} {:17} {}", rule.id, rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("wsg_lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "wsg_lint — workspace invariants as machine-checkable lint rules\n\n\
                     usage: wsg_lint [--root DIR] [--deny-all] [--quiet] [--list]\n\n\
                     Suppress a finding with `// wsg_lint: allow(<rule>)` on (or above)\n\
                     the offending line; run --list for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("wsg_lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("wsg_lint: cannot read current directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match wsg_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("wsg_lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match wsg_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("wsg_lint: walking {} failed: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    for stale in &report.stale_allows {
        println!(
            "{}:{}: stale `wsg_lint: allow({})` — it suppresses nothing; remove it",
            stale.file, stale.line, stale.rules
        );
    }

    let failed = !report.is_clean() || (deny_all && !report.stale_allows.is_empty());
    if !quiet {
        eprintln!(
            "wsg_lint: {} source files, {} manifests; {} violation(s), {} stale allow(s){}",
            report.sources,
            report.manifests,
            report.diagnostics.len(),
            report.stale_allows.len(),
            if failed { " — FAIL" } else { " — clean" }
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
