//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p wsg_lint                # lint the enclosing workspace
//! cargo run -p wsg_lint -- --deny-all  # CI mode: stale allows also fail
//! cargo run -p wsg_lint -- --list      # print the rule catalogue
//! cargo run -p wsg_lint -- --root DIR  # lint an explicit tree
//! cargo run -p wsg_lint -- --json      # machine-readable report on stdout
//! ```
//!
//! Exit code 0 when clean, 1 on any diagnostic (or, with `--deny-all`,
//! on stale allow comments), 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut quiet = false;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--list" => {
                for rule in wsg_lint::rules::RULES {
                    println!("{:3} {:17} {}", rule.id, rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("wsg_lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "wsg_lint — workspace invariants as machine-checkable lint rules\n\n\
                     usage: wsg_lint [--root DIR] [--deny-all] [--quiet] [--list] [--json]\n\n\
                     Suppress a finding with `// wsg_lint: allow(<rule>)` on (or above)\n\
                     the offending line; run --list for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("wsg_lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("wsg_lint: cannot read current directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match wsg_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("wsg_lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match wsg_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("wsg_lint: walking {} failed: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let failed = !report.is_clean() || (deny_all && !report.stale_allows.is_empty());

    if json {
        println!("{}", to_json(&report, failed));
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    for stale in &report.stale_allows {
        println!(
            "{}:{}: stale `wsg_lint: allow({})` — it suppresses nothing; remove it",
            stale.file, stale.line, stale.rules
        );
    }

    if !quiet {
        eprintln!(
            "wsg_lint: {} source files, {} manifests; {} violation(s), {} stale allow(s){}",
            report.sources,
            report.manifests,
            report.diagnostics.len(),
            report.stale_allows.len(),
            if failed { " — FAIL" } else { " — clean" }
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Serialise a report as one JSON object (schema `wsg-lint-report/1`).
/// Hand-rolled — the linter is part of the zero-dependency toolchain.
fn to_json(report: &wsg_lint::Report, failed: bool) -> String {
    let mut out = String::with_capacity(256 + report.diagnostics.len() * 160);
    out.push_str("{\n  \"schema\": \"wsg-lint-report/1\",\n");
    out.push_str(&format!("  \"sources\": {},\n", report.sources));
    out.push_str(&format!("  \"manifests\": {},\n", report.manifests));
    out.push_str(&format!("  \"failed\": {failed},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"name\": {}, \"message\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(d.rule.id),
            json_str(d.rule.name),
            json_str(&d.message)
        ));
    }
    out.push_str(if report.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"stale_allows\": [");
    for (i, s) in report.stale_allows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rules\": {}}}",
            json_str(&s.file),
            s.line,
            json_str(&s.rules)
        ));
    }
    out.push_str(if report.stale_allows.is_empty() { "]\n}" } else { "\n  ]\n}" });
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
