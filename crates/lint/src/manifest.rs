//! Rule **H1 `registry-deps`**: every dependency in every `Cargo.toml`
//! must resolve inside the repository — `path = "..."` or
//! `workspace = true` (the workspace table itself being path-only).
//!
//! This replaces the old CI shell step that piped `cargo metadata`
//! through Python: the invariant is now enforced by the same linter as
//! the source rules, offline, without needing cargo to resolve the
//! graph first.
//!
//! The checker is a deliberately small line-oriented TOML scanner: it
//! understands section headers, `key = value` pairs, inline tables and
//! comments, which covers the entire grammar cargo accepts for
//! dependency tables. Anything naming `version`, `git`, `registry` or a
//! bare version string is a violation — even alongside `path`, because a
//! version key silently re-enables registry resolution on publish.

use crate::rules::{rule, Diagnostic};

/// Dependency-table sections: `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]`, and any
/// `[target.'cfg(...)'.dependencies]` variant, plus their
/// `[dependencies.<name>]` sub-table forms.
fn dep_section(header: &str) -> Option<DepSection> {
    let bare = |h: &str| {
        matches!(h, "dependencies" | "dev-dependencies" | "build-dependencies")
            || h == "workspace.dependencies"
            || (h.starts_with("target.") && h.ends_with(".dependencies"))
    };
    if bare(header) {
        return Some(DepSection::Table);
    }
    // Sub-table: [dependencies.foo] — everything after the last '.'
    // is the crate name when the prefix is a dependency table.
    if let Some((prefix, name)) = header.rsplit_once('.') {
        if bare(prefix) && !name.is_empty() {
            return Some(DepSection::SubTable);
        }
    }
    None
}

enum DepSection {
    /// `[dependencies]`: each line is one `name = spec` entry.
    Table,
    /// `[dependencies.foo]`: keys accumulate until the next header.
    SubTable,
}

/// Scan one manifest. `rel_path` is workspace-relative for diagnostics.
pub fn check_manifest(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut section: Option<DepSection> = None;
    // State for an open sub-table: (header line, saw path/workspace, bad key).
    let mut sub: Option<(u32, bool, Option<String>)> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_sub(rel_path, &mut sub, &mut diags);
            let header = line.trim_start_matches('[').trim_end_matches(']').trim();
            if header.starts_with("patch") {
                push(
                    &mut diags,
                    rel_path,
                    lineno,
                    "[patch] sections re-route dependency sources and are forbidden".to_string(),
                );
                section = None;
                continue;
            }
            section = dep_section(header);
            if matches!(section, Some(DepSection::SubTable)) {
                sub = Some((lineno, false, None));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        match section {
            Some(DepSection::Table) => {
                if let Some(problem) = spec_violation(value) {
                    push(&mut diags, rel_path, lineno, format!("dependency `{key}` {problem}"));
                }
            }
            Some(DepSection::SubTable) => {
                if let Some((_, has_path, bad)) = sub.as_mut() {
                    match key {
                        "path" => *has_path = true,
                        "workspace" if value.starts_with("true") => *has_path = true,
                        "version" | "git" | "registry" | "branch" | "tag" | "rev" => {
                            bad.get_or_insert_with(|| key.to_string());
                        }
                        _ => {}
                    }
                }
            }
            None => {}
        }
    }
    close_sub(rel_path, &mut sub, &mut diags);
    diags
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, message: String) {
    diags.push(Diagnostic { file: file.to_string(), line, rule: rule("H1").unwrap(), message });
}

fn close_sub(
    rel_path: &str,
    sub: &mut Option<(u32, bool, Option<String>)>,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some((line, has_path, bad)) = sub.take() {
        if let Some(key) = bad {
            push(
                diags,
                rel_path,
                line,
                format!(
                    "dependency sub-table uses `{key}`: registry/git sources are forbidden, \
                     use `path = \"...\"`"
                ),
            );
        } else if !has_path {
            push(
                diags,
                rel_path,
                line,
                "dependency sub-table has neither `path` nor `workspace = true`; only \
                 in-tree dependencies are allowed"
                    .to_string(),
            );
        }
    }
}

/// Why a `name = <spec>` dependency entry violates the path-only policy,
/// if it does.
fn spec_violation(value: &str) -> Option<String> {
    if value.starts_with('"') || value.starts_with('\'') {
        return Some(format!(
            "pins a registry version ({value}); only `path`/`workspace` dependencies \
             are allowed in this hermetic workspace"
        ));
    }
    if value.starts_with('{') {
        let keys = inline_table_keys(value);
        for bad in ["git", "registry", "version", "branch", "tag", "rev"] {
            if keys.iter().any(|k| k == bad) {
                return Some(format!(
                    "uses `{bad}` in its spec; registry/git sources are forbidden, \
                     use `path = \"...\"`"
                ));
            }
        }
        let has_local =
            keys.iter().any(|k| k == "path") || keys.iter().any(|k| k == "workspace");
        if !has_local {
            return Some(
                "has neither `path` nor `workspace = true`; only in-tree dependencies \
                 are allowed"
                    .to_string(),
            );
        }
        return None;
    }
    // `true`/numbers under non-dep keys that slipped in; not a dep spec.
    None
}

/// Top-level keys of an inline table `{ k = v, k2 = v2 }`, ignoring
/// nesting and quoted strings.
fn inline_table_keys(value: &str) -> Vec<String> {
    let inner = value.trim_start_matches('{').trim_end_matches('}');
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut entry = String::new();
    let push_entry = |entry: &mut String, keys: &mut Vec<String>| {
        if let Some((k, _)) = entry.split_once('=') {
            keys.push(k.trim().to_string());
        }
        entry.clear();
    };
    for ch in inner.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                entry.push(ch);
            }
            _ if in_str => entry.push(ch),
            '{' | '[' => {
                depth += 1;
                entry.push(ch);
            }
            '}' | ']' => {
                depth -= 1;
                entry.push(ch);
            }
            ',' if depth == 0 => push_entry(&mut entry, &mut keys),
            _ => entry.push(ch),
        }
    }
    push_entry(&mut entry, &mut keys);
    keys
}

/// Drop a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<String> {
        check_manifest("Cargo.toml", src)
            .into_iter()
            .map(|d| format!("{}:{}", d.rule.id, d.line))
            .collect()
    }

    #[test]
    fn path_and_workspace_deps_are_clean() {
        let src = concat!(
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\n", // package.version is fine
            "[dependencies]\n",
            "wsg-net = { path = \"../net\" }\n",
            "wsg-xml = { workspace = true }\n",
            "[dev-dependencies]\n",
            "wsg-bench = { workspace = true }\n",
        );
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn version_string_is_flagged() {
        let src = "[dependencies]\nserde = \"1.0\"\n";
        assert_eq!(check(src), vec!["H1:2"]);
    }

    #[test]
    fn inline_version_git_registry_are_flagged() {
        let src = concat!(
            "[dependencies]\n",
            "a = { version = \"1\", features = [\"std\"] }\n",
            "b = { git = \"https://example.org/b\" }\n",
            "c = { path = \"../c\", version = \"0.1\" }\n", // version alongside path still bad
        );
        assert_eq!(check(src), vec!["H1:2", "H1:3", "H1:4"]);
    }

    #[test]
    fn subtable_forms_are_checked() {
        let good = "[dependencies.wsg-net]\npath = \"../net\"\n";
        assert!(check(good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        assert_eq!(check(bad), vec!["H1:1"]);
        let missing = "[dependencies.mystery]\nfeatures = [\"x\"]\n";
        assert_eq!(check(missing), vec!["H1:1"]);
    }

    #[test]
    fn patch_sections_are_forbidden() {
        let src = "[patch.crates-io]\nserde = { path = \"vendored/serde\" }\n";
        assert_eq!(check(src), vec!["H1:1"]);
    }

    #[test]
    fn workspace_dependencies_table_is_checked() {
        let src = "[workspace.dependencies]\nrand = \"0.8\"\n";
        assert_eq!(check(src), vec!["H1:2"]);
    }

    #[test]
    fn target_specific_deps_are_checked() {
        let src = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(check(src), vec!["H1:2"]);
    }

    #[test]
    fn comments_and_non_dep_sections_ignored() {
        let src = concat!(
            "# registry deps like serde = \"1.0\" are forbidden\n",
            "[package]\nversion = \"0.1.0\"\n",
            "[features]\ndefault = []\n",
            "[dependencies]\n",
            "wsg-net = { path = \"../net\" } # keep: in-tree\n",
        );
        assert!(check(src).is_empty());
    }
}
