//! A minimal Rust token scanner.
//!
//! The linter must never fire on text inside string literals, character
//! literals, raw strings or comments, so rules cannot run on raw lines —
//! they run on this token stream. The scanner is deliberately lossy
//! about things rules do not care about (numeric suffixes, operator
//! jointness) but exact about the things they do: literal and comment
//! boundaries, identifier text, and line numbers.
//!
//! Handled: line (`//`) and nested block (`/* /* */ */`) comments, doc
//! comments, string/byte-string literals with escapes, raw and raw-byte
//! strings with arbitrary `#` fences, character literals vs lifetimes
//! (`'a'` vs `'a`), raw identifiers (`r#type`), and multi-byte UTF-8
//! content inside any of those.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// Numeric literal (loosely scanned; rules ignore these).
    Number,
    /// `"..."` or `b"..."` literal, escapes resolved only for bounds.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` literal.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`.
    CharLit,
    /// `'a`, `'static`.
    Lifetime,
    /// `// ...` to end of line, including `///` and `//!` docs.
    LineComment,
    /// `/* ... */`, nesting respected.
    BlockComment,
    /// Any other single character (`.`, `:`, `{`, `<`, …).
    Punct,
}

/// One lexed token: kind, source text and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Token<'a> {
    /// True for comment trivia (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scan `src` into tokens. Never fails: unterminated literals simply run
/// to end of input, which is good enough for lint scoping.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos, TokenKind::Str),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: u32) {
        self.out.push(Token { kind, text: &self.src[start..end], line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::BlockComment, start, self.pos, line);
    }

    /// A `"`-delimited literal with `\` escapes, starting at `start`
    /// (which may be before `self.pos` when a `b` prefix was consumed).
    fn string(&mut self, start: usize, kind: TokenKind) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2, // escape: skip the escaped byte
                b'"' => {
                    self.pos += 1;
                    self.push(kind, start, self.pos, line);
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(kind, start, self.pos, line); // unterminated
    }

    /// A raw string starting at `start`; `self.pos` is on the `r`.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // the 'r'
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote (caller guaranteed it)
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    let mut hashes = 0usize;
                    while hashes < fence && self.peek(1 + hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    if hashes == fence {
                        self.pos += 1 + fence;
                        self.push(TokenKind::RawStr, start, self.pos, line);
                        return;
                    }
                    self.pos += 1;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::RawStr, start, self.pos, line); // unterminated
    }

    /// `'a'` char literal vs `'a` lifetime. Rule (same as rustc): a `'`
    /// followed by an identifier is a char literal only when the
    /// identifier is immediately followed by a closing `'`.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        match self.peek(1) {
            Some(b) if is_ident_start(b) => {
                let mut j = self.pos + 2;
                while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.pos = j + 1;
                    self.push(TokenKind::CharLit, start, self.pos, line);
                } else {
                    self.pos = j;
                    self.push(TokenKind::Lifetime, start, self.pos, line);
                }
            }
            Some(b'\\') => {
                // Escaped char literal: skip to the closing quote,
                // honouring `'\''` and `'\\'`.
                self.pos += 2; // quote + backslash
                self.pos += 1; // the escaped byte itself
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    if self.bytes[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                self.pos += 1; // closing quote
                self.push(TokenKind::CharLit, start, self.pos.min(self.bytes.len()), line);
            }
            Some(_) => {
                // Plain (possibly multi-byte) char literal.
                self.pos += 1;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos += 1;
                self.push(TokenKind::CharLit, start, self.pos.min(self.bytes.len()), line);
            }
            None => {
                self.pos += 1;
                self.push(TokenKind::Punct, start, self.pos, line);
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Number, start, self.pos, self.line);
    }

    /// An identifier, or one of the literal prefixes `r" b" br" r#"` —
    /// including raw identifiers `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let b = self.bytes[self.pos];
        // Raw string / raw identifier: r" r#" r#ident
        if b == b'r' {
            match self.peek(1) {
                Some(b'"') => return self.raw_string(start),
                Some(b'#') => {
                    // r#"..."# is a raw string; r#ident is a raw identifier.
                    let mut j = self.pos + 1;
                    while self.bytes.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    if self.bytes.get(j) == Some(&b'"') {
                        return self.raw_string(start);
                    }
                    // Raw identifier: skip `r#`, scan the name.
                    self.pos += 2;
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    return self.push(TokenKind::Ident, start, self.pos, self.line);
                }
                _ => {}
            }
        }
        // Byte string b"..." and raw byte string br"..." / br#"..."#.
        if b == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.pos += 1;
                    return self.string(start, TokenKind::Str);
                }
                Some(b'\'') => {
                    // Byte char literal b'x'.
                    self.pos += 1;
                    return self.char_or_lifetime_as_byte(start);
                }
                Some(b'r') if matches!(self.peek(2), Some(b'"') | Some(b'#')) => {
                    self.pos += 1;
                    return self.raw_string(start);
                }
                _ => {}
            }
        }
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.pos, self.line);
    }

    /// Body of `b'x'`; `self.pos` sits on the `'`.
    fn char_or_lifetime_as_byte(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // the quote
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            self.pos += 1;
        }
        self.pos = (self.pos + 1).min(self.bytes.len());
        self.push(TokenKind::CharLit, start, self.pos, line);
    }

    fn punct(&mut self) {
        let start = self.pos;
        // Advance one full UTF-8 character, not one byte.
        let ch_len = self.src[start..].chars().next().map_or(1, |c| c.len_utf8());
        self.pos += ch_len;
        self.push(TokenKind::Punct, start, self.pos, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("use std::collections::HashMap;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "use"),
                (TokenKind::Ident, "std"),
                (TokenKind::Punct, ":"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "collections"),
                (TokenKind::Punct, ":"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "HashMap"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap::new() // not a comment";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "HashMap"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"contains \"quotes\" and HashMap\"#; let t = 1;";
        let toks = kinds(src);
        let raw: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("HashMap"));
        // Lexing resumed correctly after the fence.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "t"));
    }

    #[test]
    fn raw_strings_hide_comment_markers_and_orderings() {
        // Regression guard for the A2/E2/T1 generation: `//` and
        // `Ordering::Relaxed` inside a raw string are literal text, not
        // a comment and not idents the rules could fire on.
        let src = r##"let doc = r#"uses Ordering::Relaxed // not a comment"#; let x = 1;"##;
        let toks = kinds(src);
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment), "{toks:?}");
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident
            && (*t == "Ordering" || *t == "Relaxed")));
        let raw: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("Ordering::Relaxed") && raw[0].1.contains("//"));
        // Lexing resumed correctly after the fence.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
    }

    #[test]
    fn multiline_raw_string_with_inner_fences_stays_one_token() {
        let src = "let s = r##\"line one // slash\nr#\"inner\"# Ordering::Relaxed\n\"##;\nlet after = 2;";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::RawStr).count(), 1);
        assert!(!toks.iter().any(|t| t.is_ident("Ordering")));
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after token");
        assert_eq!(after.line, 4, "line counting must survive the multiline raw string");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw bytes"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).count(), 1);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(), 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = kinds("&'static str");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && *t == "'static"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner HashMap */ still comment */ real");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::BlockComment).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "real"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "HashMap"));
    }

    #[test]
    fn line_comments_capture_allow_syntax() {
        let toks = kinds("let x = 1; // wsg_lint: allow(hash-collections)\nlet y = 2;");
        let comment = toks.iter().find(|(k, _)| *k == TokenKind::LineComment);
        assert!(comment.is_some_and(|(_, t)| t.contains("allow(hash-collections)")));
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let src = "line1\nlet s = \"multi\nline\nstring\";\nlet after = 5;";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after token");
        assert_eq!(after.line, 5);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("str token");
        assert_eq!(s.line, 2);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "r#type"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = kinds(r"let q = '\''; let x = 1;");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
    }

    #[test]
    fn multibyte_content_survives() {
        let toks = kinds("let s = \"héllo ∞\"; let c = '∞'; let x = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(), 1);
    }
}
