//! The lint rule catalogue and the token-stream rule engine.
//!
//! Every rule protects a project invariant (see DESIGN.md "Static
//! analysis"):
//!
//! * **D1 `hash-collections`** — no `HashMap`/`HashSet` in protocol and
//!   simulation crates. Their iteration order is nondeterministic, which
//!   breaks the bit-identical-trace guarantee.
//! * **D2 `wall-clock`** — no `Instant::now`/`SystemTime`/`UNIX_EPOCH`
//!   outside `wsg_bench::timing` and `wsg_http`. Simulated protocols run
//!   on virtual `SimTime`; a wall-clock read makes a run a function of
//!   the host.
//! * **D3 `ambient-rng`** — no ambient randomness (`thread_rng`,
//!   `OsRng`, `rand::`, `RandomState`, …). All randomness flows through
//!   `wsg_net::rng` so a run is a pure function of its seed.
//! * **P1 `panic-path`** — no `.unwrap()`/`.expect()`/`panic!`-family
//!   macros in the HTTP server/client/parser hot paths or inside
//!   `Protocol`/`Handler` trait impls. A panicking worker thread takes
//!   down a node silently; handlers must return faults instead.
//! * **H1 `registry-deps`** — every `Cargo.toml` dependency must be a
//!   `path`/`workspace` dependency (see `manifest`). Enforced over
//!   manifests, listed here for the catalogue.
//! * **M1 `allow-grammar`** — meta rule: malformed `wsg_lint:` comments
//!   or allows naming unknown rules are themselves diagnostics, so a
//!   typo cannot silently disable a rule.
//! * **O1 `metric-name`** — literal metric names passed to the
//!   `wsg_obs::Registry` register methods must match the exposition
//!   grammar `[a-z][a-z0-9_]*`, so a misnamed metric fails the build
//!   instead of panicking at first registration in production.
//! * **A2 `atomic-ordering`** — `Ordering::Relaxed` only in the audited
//!   stats-counter modules ([`A2_RELAXED_FILES`]). Relaxed provides no
//!   inter-thread synchronization; anywhere data is published across
//!   threads it silently reorders, so every other use must carry an
//!   audit note in an allow comment.
//! * **E2 `error-swallowing`** — no silently discarded fallible results
//!   (`let _ = …;` or a statement-terminated `.ok();`) outside tests.
//!   A swallowed `Err` on a send/write/join path hides partitions and
//!   shutdown races; discards must be logged, counted, or justified
//!   with an allow comment *that states a reason*.
//! * **T1 `socket-timeout`** — blocking socket calls (`accept`,
//!   `connect`, `read_exact`, `write_all`, …) in the live-transport
//!   crates (`wsg_http`, `wsg_cluster`) must share their enclosing `fn`
//!   with a `set_*_timeout` call or another timeout-named identifier,
//!   so a hung peer cannot park a worker thread forever.
//! * **F1 `cov-scope`** — the `cov!()` edge-instrumentation macro only
//!   in the designated wire-parser modules ([`F1_COV_FILES`]). Edge ids
//!   are compile-time hashes of their callsite, so scattered probes
//!   dilute the fuzzer's coverage map and drag the `wsg_cov` cfg into
//!   crates that should not know about it.
//!
//! Rules run on the [`crate::lexer`] token stream, never on raw text, so
//! occurrences inside strings, raw strings, char literals and comments
//! cannot fire. Code under `#[cfg(test)]` / `#[test]` is exempt: tests
//! may use wall-clock timeouts and hash sets freely.
//!
//! ## Allow-listing
//!
//! `// wsg_lint: allow(<rule>[, <rule>...])` suppresses the named rules
//! (by name `hash-collections` or id `D1`; `all` matches every rule) on
//! the comment's own line when it trails code, or on the next line of
//! code when it stands alone. Unused allows are reported and fail the
//! build under `--deny-all`, so suppressions cannot outlive the code
//! they justify.

use crate::lexer::{lex, Token, TokenKind};

/// A lint rule's identity, as shown in diagnostics and the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Short id (`D1`).
    pub id: &'static str,
    /// Kebab-case name used in allow comments (`hash-collections`).
    pub name: &'static str,
    /// One-line summary for `--list`.
    pub summary: &'static str,
}

/// The full rule catalogue.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        name: "hash-collections",
        summary: "no HashMap/HashSet in protocol/sim crates (nondeterministic iteration)",
    },
    Rule {
        id: "D2",
        name: "wall-clock",
        summary: "no Instant::now/SystemTime outside wsg_bench::timing and wsg_http",
    },
    Rule {
        id: "D3",
        name: "ambient-rng",
        summary: "no ambient randomness; all RNG flows through wsg_net::rng",
    },
    Rule {
        id: "P1",
        name: "panic-path",
        summary: "no unwrap/expect/panic! in HTTP hot paths or Protocol/Handler impls",
    },
    Rule {
        id: "H1",
        name: "registry-deps",
        summary: "Cargo.toml dependencies must be path-only (hermetic build)",
    },
    Rule {
        id: "M1",
        name: "allow-grammar",
        summary: "wsg_lint allow comments must parse and name known rules",
    },
    Rule {
        id: "O1",
        name: "metric-name",
        summary: "registered metric names must match [a-z][a-z0-9_]*",
    },
    Rule {
        id: "A2",
        name: "atomic-ordering",
        summary: "Ordering::Relaxed only in audited stats-counter modules",
    },
    Rule {
        id: "E2",
        name: "error-swallowing",
        summary: "no silently discarded Results (let _ = / .ok();) outside tests",
    },
    Rule {
        id: "T1",
        name: "socket-timeout",
        summary: "socket I/O in live-transport crates must pair with a timeout",
    },
    Rule {
        id: "F1",
        name: "cov-scope",
        summary: "cov!() edge instrumentation only in the designated parser modules",
    },
];

/// Look a rule up by id or name.
pub fn rule(id_or_name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id_or_name || r.name == id_or_name)
}

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static Rule,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.rule.id, self.rule.name, self.message
        )
    }
}

/// An allow comment that suppressed nothing — stale suppressions are
/// reported so they cannot outlive the violation they justified.
#[derive(Debug, Clone)]
pub struct StaleAllow {
    pub file: String,
    pub line: u32,
    pub rules: String,
}

/// Result of linting one `.rs` source file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub stale_allows: Vec<StaleAllow>,
}

struct Allow {
    comment_line: u32,
    covered_line: u32,
    rules: Vec<String>,
    used: bool,
}

/// Lint one source file. `rel_path` is the workspace-relative path with
/// `/` separators; rule scoping keys off it.
pub fn check_source(rel_path: &str, src: &str) -> FileReport {
    let tokens = lex(src);
    let code: Vec<Token<'_>> = tokens.iter().copied().filter(|t| !t.is_comment()).collect();

    let mut report = FileReport::default();
    let mut allows = collect_allows(rel_path, &tokens, &code, &mut report.diagnostics);
    let test_ranges = test_regions(&code);
    let impl_ranges = handler_impl_regions(&code);

    let in_src = rel_path.starts_with("crates/") && rel_path.contains("/src/");
    let d1 = in_src && in_d1_scope(rel_path);
    let d2 = in_src && in_d2_scope(rel_path);
    let d3 = in_src && rel_path != "crates/net/src/rng.rs";
    let p1_file = in_src && P1_FILES.contains(&rel_path);
    let a2 = in_src && !A2_RELAXED_FILES.contains(&rel_path);
    let f1 = in_src && !F1_COV_FILES.contains(&rel_path);
    let t1 = in_src && in_t1_scope(rel_path);
    let fn_ranges = if t1 { fn_regions(&code) } else { Vec::new() };

    let in_range = |ranges: &[(usize, usize)], i: usize| {
        ranges.iter().any(|&(lo, hi)| i >= lo && i <= hi)
    };

    let mut raw = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || in_range(&test_ranges, i) {
            continue;
        }
        if d1 {
            if let Some(d) = check_d1(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if d2 {
            if let Some(d) = check_d2(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if d3 {
            if let Some(d) = check_d3(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if p1_file || (in_src && in_range(&impl_ranges, i)) {
            if let Some(d) = check_p1(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if in_src {
            if let Some(d) = check_o1(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if a2 {
            if let Some(d) = check_a2(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if f1 {
            if let Some(d) = check_f1(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if in_src {
            if let Some(d) = check_e2(rel_path, &code, i) {
                raw.push(d);
            }
        }
        if t1 {
            if let Some(d) = check_t1(rel_path, &code, i, &fn_ranges) {
                raw.push(d);
            }
        }
    }

    for diag in raw {
        let suppressed = allows.iter_mut().any(|a| {
            a.covered_line == diag.line
                && a.rules.iter().any(|r| {
                    r == "all" || r == diag.rule.id || r == diag.rule.name
                })
                && {
                    a.used = true;
                    true
                }
        });
        if !suppressed {
            report.diagnostics.push(diag);
        }
    }

    for a in allows.into_iter().filter(|a| !a.used) {
        report.stale_allows.push(StaleAllow {
            file: rel_path.to_string(),
            line: a.comment_line,
            rules: a.rules.join(", "),
        });
    }

    report
}

// ---------------------------------------------------------------- scopes

/// Crates whose state must iterate deterministically: everything that
/// feeds the simulated protocol traces.
const D1_SCOPE_DIRS: &[&str] = &[
    "crates/core/src/",
    "crates/gossip/src/",
    "crates/coord/src/",
    "crates/membership/src/",
    "crates/cluster/src/",
    "crates/baselines/src/",
];

/// Simulation-side files of `wsg_net` (the rest of the crate hosts the
/// real-time thread runtime, which D1 does not constrain), plus the wire
/// batching modules: per-peer FIFO drain order is part of the batch
/// format's contract, so its queues must iterate deterministically.
const D1_SCOPE_FILES: &[&str] = &[
    "crates/net/src/sim.rs",
    "crates/net/src/faults.rs",
    "crates/soap/src/batch.rs",
    "crates/http/src/batch.rs",
];

fn in_d1_scope(path: &str) -> bool {
    D1_SCOPE_DIRS.iter().any(|d| path.starts_with(d)) || D1_SCOPE_FILES.contains(&path)
}

fn in_d2_scope(path: &str) -> bool {
    // wsg_bench::timing is the one sanctioned stopwatch; wsg_http runs
    // on real sockets and so legitimately lives on the wall clock.
    path != "crates/bench/src/timing.rs" && !path.starts_with("crates/http/src/")
}

/// HTTP hot-path files where a panic kills a worker thread or a client
/// request without a fault envelope.
const P1_FILES: &[&str] = &[
    "crates/http/src/server.rs",
    "crates/http/src/client.rs",
    "crates/http/src/parser.rs",
    "crates/http/src/batch.rs",
    "crates/soap/src/batch.rs",
];

/// Audited stats-counter modules where `Ordering::Relaxed` is the point:
/// monotone counters read for human display, never used to publish other
/// data across threads. Everywhere else Relaxed needs an audit note.
pub const A2_RELAXED_FILES: &[&str] = &[
    "crates/obs/src/lib.rs",
    "crates/bench/src/timing.rs",
    "crates/bench/src/sweep.rs",
    "crates/soap/src/handlers.rs",
    // Coverage hit counters: monotonic per-edge tallies read only after
    // the fuzz loop quiesces — classic stats-counter Relaxed.
    "crates/net/src/cov.rs",
];

/// Live-transport crates whose blocking socket calls must carry
/// timeouts: everything else either runs on the simulated network or
/// never touches a socket.
fn in_t1_scope(path: &str) -> bool {
    path.starts_with("crates/http/src/") || path.starts_with("crates/cluster/src/")
}

/// The wire-parser modules `wsg_fuzz` instruments: the only places the
/// `cov!()` edge-hit macro may appear (plus its defining module). The
/// list is the fuzzer's instrumentation contract — extending coverage to
/// a new parse path means extending this list in the same change.
pub const F1_COV_FILES: &[&str] = &[
    "crates/net/src/cov.rs",
    "crates/http/src/parser.rs",
    "crates/xml/src/reader.rs",
    "crates/soap/src/envelope.rs",
    "crates/soap/src/batch.rs",
    "crates/cluster/src/proto.rs",
];

// ---------------------------------------------------------------- rules

fn seq_path_call(code: &[Token<'_>], i: usize, head: &str, tail: &str) -> bool {
    code[i].is_ident(head)
        && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 3).is_some_and(|t| t.is_ident(tail))
}

fn check_d1(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    if tok.text == "HashMap" || tok.text == "HashSet" {
        return Some(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            rule: rule("D1").unwrap(),
            message: format!(
                "{} iterates in nondeterministic order and breaks bit-identical traces; \
                 use BTreeMap/BTreeSet (or justify with `// wsg_lint: allow(hash-collections)`)",
                tok.text
            ),
        });
    }
    None
}

fn check_d2(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    let hit = if seq_path_call(code, i, "Instant", "now") {
        Some("Instant::now()")
    } else if tok.text == "SystemTime" {
        Some("SystemTime")
    } else if tok.text == "UNIX_EPOCH" {
        Some("UNIX_EPOCH")
    } else {
        None
    };
    hit.map(|what| Diagnostic {
        file: file.to_string(),
        line: tok.line,
        rule: rule("D2").unwrap(),
        message: format!(
            "{what} reads the wall clock; simulated code must use SimTime and measurement \
             code must go through wsg_bench::timing (or justify with \
             `// wsg_lint: allow(wall-clock)`)"
        ),
    })
}

/// Identifiers that smell like ambient (non-seeded) randomness.
const D3_IDENTS: &[&str] =
    &["thread_rng", "ThreadRng", "OsRng", "StdRng", "from_entropy", "getrandom", "RandomState"];

fn check_d3(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    let is_rand_path = tok.is_ident("rand")
        && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct(':'));
    if D3_IDENTS.contains(&tok.text) || is_rand_path {
        return Some(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            rule: rule("D3").unwrap(),
            message: format!(
                "`{}` is ambient randomness; every random decision must flow through a seeded \
                 wsg_net::rng generator so runs are pure functions of their seed",
                tok.text
            ),
        });
    }
    None
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

fn check_p1(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    let method_call = (tok.text == "unwrap" || tok.text == "expect")
        && i > 0
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|t| t.is_punct('('));
    let macro_call =
        PANIC_MACROS.contains(&tok.text) && code.get(i + 1).is_some_and(|t| t.is_punct('!'));
    if method_call || macro_call {
        let what = if method_call {
            format!(".{}()", tok.text)
        } else {
            format!("{}!", tok.text)
        };
        return Some(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            rule: rule("P1").unwrap(),
            message: format!(
                "{what} in a hot path or Protocol/Handler impl: a panic here kills a worker \
                 or node silently — return an error/fault instead (or justify with \
                 `// wsg_lint: allow(panic-path)`)"
            ),
        });
    }
    None
}

/// The `wsg_obs::Registry` get-or-register entry points. A literal first
/// argument is the metric name; anything else (a variable, a `format!`)
/// is out of static reach and left to the runtime validation.
const O1_REGISTER_FNS: &[&str] = &[
    "register_counter",
    "register_gauge",
    "register_histogram",
    "register_counter_family",
    "register_gauge_family",
    "register_histogram_family",
];

/// The exposition name grammar, mirrored from `wsg_obs::valid_metric_name`
/// (kept in sync by `wsg_obs`'s tests; duplicated so the linter stays
/// dependency-free).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn check_o1(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    let is_register_call = O1_REGISTER_FNS.contains(&tok.text)
        && i > 0
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !is_register_call {
        return None;
    }
    let arg = code.get(i + 2)?;
    if arg.kind != TokenKind::Str {
        return None; // dynamic name: checked at runtime by the registry
    }
    let name = arg.text.trim_start_matches('b').trim_matches('"');
    if valid_metric_name(name) {
        return None;
    }
    Some(Diagnostic {
        file: file.to_string(),
        line: arg.line,
        rule: rule("O1").unwrap(),
        message: format!(
            "metric name {:?} violates the exposition grammar [a-z][a-z0-9_]*; \
             scrapers reject it and the registry panics at first registration",
            name
        ),
    })
}

fn check_a2(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    if !seq_path_call(code, i, "Ordering", "Relaxed") {
        return None;
    }
    Some(Diagnostic {
        file: file.to_string(),
        line: code[i].line,
        rule: rule("A2").unwrap(),
        message: "Ordering::Relaxed provides no inter-thread synchronization; outside the \
                  audited stats-counter modules use Acquire/Release (or record the audit with \
                  `// wsg_lint: allow(atomic-ordering)`)"
            .to_string(),
    })
}

fn check_f1(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    // The invocation shape `cov!(` — a `cov` path segment (`use …::cov;`,
    // `cov::reset()`) or `cov != x` does not fire.
    if !(tok.is_ident("cov")
        && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
        && code.get(i + 2).is_some_and(|t| t.is_punct('(')))
    {
        return None;
    }
    Some(Diagnostic {
        file: file.to_string(),
        line: tok.line,
        rule: rule("F1").unwrap(),
        message: "cov!() outside the designated parser modules dilutes the fuzzer's edge map; \
                  instrument a new parse path by adding its file to F1_COV_FILES in the same \
                  change (or justify with `// wsg_lint: allow(cov-scope)`)"
            .to_string(),
    })
}

fn check_e2(file: &str, code: &[Token<'_>], i: usize) -> Option<Diagnostic> {
    let tok = code[i];
    let let_discard = tok.is_ident("let")
        && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
        && code.get(i + 2).is_some_and(|t| t.is_punct('='))
        && !code.get(i + 3).is_some_and(|t| t.is_punct('='));
    // Only the statement-terminated form discards: `.ok()?` and
    // `.ok().map(..)` consume the Option and are fine.
    let ok_discard = tok.is_ident("ok")
        && i > 0
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|t| t.is_punct('('))
        && code.get(i + 2).is_some_and(|t| t.is_punct(')'))
        && code.get(i + 3).is_some_and(|t| t.is_punct(';'));
    if !(let_discard || ok_discard) {
        return None;
    }
    let what = if let_discard { "`let _ = …;`" } else { "`.ok();`" };
    Some(Diagnostic {
        file: file.to_string(),
        line: tok.line,
        rule: rule("E2").unwrap(),
        message: format!(
            "{what} swallows a fallible result silently; log it, count it, or justify it \
             with `// wsg_lint: allow(error-swallowing) — <reason>` (the reason is required)"
        ),
    })
}

/// Blocking socket entry points whose callers must hold a deadline. The
/// match is a method/assoc call (`.accept(` / `TcpStream::connect(`), so
/// `fn read_exact` definitions and plain idents do not fire.
const T1_SOCKET_OPS: &[&str] =
    &["accept", "connect", "read_exact", "read_to_end", "read_to_string", "read_line", "write_all"];

fn check_t1(
    file: &str,
    code: &[Token<'_>],
    i: usize,
    fn_ranges: &[(usize, usize, bool)],
) -> Option<Diagnostic> {
    let tok = code[i];
    if !T1_SOCKET_OPS.contains(&tok.text)
        || !code.get(i + 1).is_some_and(|t| t.is_punct('('))
        || !(i > 0 && (code[i - 1].is_punct('.') || code[i - 1].is_punct(':')))
    {
        return None;
    }
    // Innermost enclosing fn (fn regions nest properly, so the one with
    // the greatest start is the innermost). A call outside any fn (e.g.
    // a const initializer) has no worker thread to hang and is skipped.
    let &(_, _, has_timeout) = fn_ranges
        .iter()
        .filter(|&&(lo, hi, _)| i >= lo && i <= hi)
        .max_by_key(|&&(lo, _, _)| lo)?;
    if has_timeout {
        return None;
    }
    Some(Diagnostic {
        file: file.to_string(),
        line: tok.line,
        rule: rule("T1").unwrap(),
        message: format!(
            "`{}(…)` blocks on a socket with no timeout in its enclosing fn; a hung peer \
             parks this worker forever — pair it with set_read_timeout/set_write_timeout \
             or a *_timeout call (or justify with `// wsg_lint: allow(socket-timeout)`)",
            tok.text
        ),
    })
}

// ------------------------------------------------------------ allow parsing

fn collect_allows(
    file: &str,
    tokens: &[Token<'_>],
    code: &[Token<'_>],
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        // A directive must START the comment (after the `//`/`/*`/doc
        // sigils) — prose that merely mentions the grammar is ignored.
        let content = tok.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("wsg_lint:") else { continue };
        let rest = rest.trim_start();
        let bad = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                rule: rule("M1").unwrap(),
                message: msg.to_string(),
            });
        };
        let Some((inner, after)) = rest.strip_prefix("allow(").and_then(|r| {
            // Take up to the matching close paren on this comment.
            r.find(')').map(|end| (&r[..end], &r[end + 1..]))
        }) else {
            bad(
                "malformed wsg_lint comment: expected `wsg_lint: allow(<rule>[, <rule>...])`",
                diags,
            );
            continue;
        };
        let names: Vec<String> =
            inner.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if names.is_empty() {
            bad("empty wsg_lint allow list", diags);
            continue;
        }
        let mut ok = true;
        for name in &names {
            if name != "all" && rule(name).is_none() {
                bad(&format!("unknown lint rule `{name}` in allow comment"), diags);
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // An error-swallowing suppression must say *why* the discard is
        // safe: the reason is the audit trail. Anything alphanumeric
        // after the close paren counts; a bare `allow(E2)` does not.
        let wants_e2 = names.iter().any(|n| n == "E2" || n == "error-swallowing");
        if wants_e2 && !after.chars().any(char::is_alphanumeric) {
            bad(
                "allow(error-swallowing) requires a reason after the close paren, e.g. \
                 `// wsg_lint: allow(E2) — receiver gone means shutdown`",
                diags,
            );
            continue;
        }
        // A trailing comment covers its own line; a standalone comment
        // covers the next line that carries code.
        let trailing = code.iter().any(|t| t.line == tok.line);
        let covered_line = if trailing {
            tok.line
        } else {
            match code.iter().find(|t| t.line > tok.line) {
                Some(next) => next.line,
                None => tok.line,
            }
        };
        allows.push(Allow { comment_line: tok.line, covered_line, rules: names, used: false });
    }
    allows
}

// ------------------------------------------------- region computation

/// Token-index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items. Heuristic, but exact for this workspace's layout: the
/// attribute target runs to the matching close brace of its body, or to
/// the first top-level `;` for braceless items.
fn test_regions(code: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(code[i].is_punct('#') && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let (attr_idents, after_attr) = read_attribute(code, i);
        if !is_test_attribute(&attr_idents) {
            i = after_attr;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = after_attr;
        while j + 1 < code.len() && code[j].is_punct('#') && code[j + 1].is_punct('[') {
            let (_, next) = read_attribute(code, j);
            j = next;
        }
        let end = item_end(code, j);
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

/// Read `#[...]` starting at `i` (pointing at `#`). Returns the idents
/// inside and the index just past the closing `]`.
fn read_attribute<'a>(code: &[Token<'a>], i: usize) -> (Vec<&'a str>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (idents, j + 1);
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text);
        }
        j += 1;
    }
    (idents, code.len())
}

fn is_test_attribute(idents: &[&str]) -> bool {
    match idents {
        ["test"] => true,
        _ => {
            idents.contains(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not")
        }
    }
}

/// The index of the token ending the item starting at `start`: the
/// matching `}` of its first top-level brace, or the first top-level `;`.
fn item_end(code: &[Token<'_>], start: usize) -> usize {
    let mut j = start;
    let mut paren = 0i32;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(';') && paren == 0 {
            return j;
        } else if t.is_punct('{') && paren == 0 {
            return match_brace(code, j);
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(code: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Token ranges of every `fn` item (including nested fns), tagged with
/// whether the fn's tokens mention a timeout anywhere — a
/// `set_read_timeout`/`connect_timeout` call, a `read_timeout` field, a
/// `TIMEOUT` const. T1 judges socket calls against the innermost range.
fn fn_regions(code: &[Token<'_>]) -> Vec<(usize, usize, bool)> {
    let mut regions = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn")
            || !code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            continue;
        }
        let end = item_end(code, i);
        let has_timeout = code[i..=end.min(code.len() - 1)]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text.to_ascii_lowercase().contains("timeout"));
        regions.push((i, end, has_timeout));
    }
    regions
}

/// Body token ranges of `impl <Trait> for <Type>` blocks where the trait
/// is `Protocol` or `Handler` — the message/request handler surfaces the
/// paper's Layer concept maps onto.
fn handler_impl_regions(code: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Scan the impl header up to its body `{` at angle-depth 0,
        // remembering the last path segment before a depth-0 `for`.
        let mut angle = 0i32;
        let mut last_ident: Option<&str> = None;
        let mut trait_name: Option<&str> = None;
        let mut j = i + 1;
        let mut body = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` in an fn type does not close a generic list.
                if !(j > 0 && code[j - 1].is_punct('-')) {
                    angle -= 1;
                }
            } else if t.is_punct('{') && angle <= 0 {
                body = Some(j);
                break;
            } else if t.is_punct(';') && angle <= 0 {
                break;
            } else if t.kind == TokenKind::Ident {
                if t.text == "for" && angle <= 0 && trait_name.is_none() {
                    trait_name = last_ident;
                } else if angle <= 0 {
                    last_ident = Some(t.text);
                }
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        let close = match_brace(code, open);
        if matches!(trait_name, Some("Protocol") | Some("Handler")) {
            regions.push((open, close));
        }
        // Nested impls inside fn bodies are rare; restart after the
        // header so inner impls (e.g. in test mods) are still seen.
        i = open + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(path: &str, src: &str) -> Vec<String> {
        check_source(path, src)
            .diagnostics
            .into_iter()
            .map(|d| format!("{}:{}", d.rule.id, d.line))
            .collect()
    }

    const COORD: &str = "crates/coord/src/fake.rs";

    #[test]
    fn d1_fires_on_hashmap_in_protocol_crate() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        assert_eq!(lint_at(COORD, src), vec!["D1:1", "D1:2"]);
    }

    #[test]
    fn d1_silent_outside_scope() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_at("crates/xml/src/reader.rs", src).is_empty());
        assert!(lint_at("crates/coord/tests/integration.rs", src).is_empty());
    }

    #[test]
    fn d1_silent_in_strings_comments_rawstrings() {
        let src = concat!(
            "// HashMap in a comment\n",
            "/* HashSet in a block comment */\n",
            "const A: &str = \"HashMap::new()\";\n",
            "const B: &str = r#\"HashSet of \"things\"\"#;\n",
            "const C: char = 'H';\n",
        );
        assert!(lint_at(COORD, src).is_empty());
    }

    #[test]
    fn d1_silent_under_cfg_test() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashSet;\n",
            "    #[test]\n",
            "    fn t() { let _ = HashSet::<u32>::new(); }\n",
            "}\n",
        );
        assert!(lint_at(COORD, src).is_empty());
    }

    #[test]
    fn d1_fires_after_cfg_test_block_ends() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests { }\n",
            "type T = std::collections::HashMap<u8, u8>;\n",
        );
        assert_eq!(lint_at(COORD, src), vec!["D1:3"]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { let _: std::collections::HashMap<u8,u8>; }\n";
        assert_eq!(lint_at(COORD, src), vec!["D1:2"]);
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "use std::collections::HashMap; // wsg_lint: allow(hash-collections)\n";
        let report = check_source(COORD, src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.stale_allows.is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = concat!(
            "// wsg_lint: allow(D1) — keys never iterated\n",
            "use std::collections::HashMap;\n",
            "use std::collections::HashSet;\n",
        );
        assert_eq!(lint_at(COORD, src), vec!["D1:3"]);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// wsg_lint: allow(hash-collections)\nfn nothing_wrong() {}\n";
        let report = check_source(COORD, src);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.stale_allows.len(), 1);
    }

    #[test]
    fn unknown_rule_in_allow_is_m1() {
        let src = "// wsg_lint: allow(hash-colections)\nfn f() {}\n";
        let report = check_source(COORD, src);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule.id, "M1");
    }

    #[test]
    fn malformed_allow_is_m1() {
        let src = "// wsg_lint: allowing everything\nfn f() {}\n";
        let report = check_source(COORD, src);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule.id, "M1");
    }

    #[test]
    fn d2_fires_on_instant_now_and_systemtime() {
        let src = "fn f() { let t = std::time::Instant::now(); }\nfn g() -> SystemTime { todo() }\n";
        assert_eq!(lint_at("crates/net/src/threads.rs", src), vec!["D2:1", "D2:2"]);
    }

    #[test]
    fn d2_allows_instant_as_a_type() {
        // Storing or adding to an Instant passed in is fine; only the
        // `::now` read is ambient.
        let src = "fn f(start: Instant) -> Duration { start.elapsed() }\n";
        assert!(lint_at("crates/net/src/threads.rs", src).is_empty());
    }

    #[test]
    fn d2_exempt_in_timing_and_http() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(lint_at("crates/bench/src/timing.rs", src).is_empty());
        assert!(lint_at("crates/http/src/server.rs", src).is_empty());
    }

    #[test]
    fn d3_fires_on_ambient_rng() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        let hits = lint_at("crates/gossip/src/engine.rs", src);
        assert!(hits.contains(&"D3:1".to_string()), "{hits:?}");
    }

    #[test]
    fn d3_exempt_in_rng_module() {
        let src = "struct RandomState;\n";
        assert!(lint_at("crates/net/src/rng.rs", src).is_empty());
    }

    #[test]
    fn p1_fires_in_http_files_outside_tests() {
        let src = concat!(
            "fn serve() { stream.set_write_timeout(t).unwrap(); }\n",
            "fn fail() { panic!(\"boom\"); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { serve().unwrap(); }\n",
            "}\n",
        );
        assert_eq!(lint_at("crates/http/src/server.rs", src), vec!["P1:1", "P1:2"]);
    }

    #[test]
    fn p1_fires_inside_protocol_impls_only() {
        let src = concat!(
            "fn free() { x.unwrap(); }\n", // not in an impl: no diagnostic
            "impl<T: Clone> Protocol for Node<T> {\n",
            "    fn on_message(&mut self) { self.x.unwrap(); }\n",
            "}\n",
            "impl Handler for H {\n",
            "    fn handle(&mut self) { unreachable!() }\n",
            "}\n",
            "impl Node<u8> {\n",
            "    fn inherent(&self) { y.expect(\"fine here\"); }\n",
            "}\n",
        );
        assert_eq!(lint_at("crates/gossip/src/engine.rs", src), vec!["P1:3", "P1:6"]);
    }

    #[test]
    fn p1_ignores_unwrap_or_variants() {
        let src = "impl Protocol for N { fn f(&self) { x.unwrap_or(0); y.unwrap_or_default(); } }\n";
        assert!(lint_at("crates/gossip/src/engine.rs", src).is_empty());
    }

    #[test]
    fn p1_impls_inside_test_mods_are_exempt() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    impl Protocol for Fake { fn f(&self) { x.unwrap(); } }\n",
            "}\n",
        );
        assert!(lint_at("crates/gossip/src/engine.rs", src).is_empty());
    }

    #[test]
    fn debug_impl_is_not_a_handler() {
        let src = "impl std::fmt::Debug for Chain { fn fmt(&self) { x.unwrap(); } }\n";
        assert!(lint_at("crates/gossip/src/engine.rs", src).is_empty());
    }

    #[test]
    fn o1_fires_on_bad_literal_metric_names() {
        let src = concat!(
            "fn f(r: &Registry) {\n",
            "    r.register_counter(\"Wsg_Bad_Total\", \"help\");\n",
            "    r.register_gauge_family(\"wsg-dashes\", \"help\", &[\"l\"]);\n",
            "    r.register_histogram(\"wsg_good_micros\", \"help\");\n",
            "}\n",
        );
        assert_eq!(lint_at("crates/obs/src/fake.rs", src), vec!["O1:2", "O1:3"]);
    }

    #[test]
    fn o1_ignores_dynamic_names_and_non_method_calls() {
        let src = concat!(
            "fn f(r: &Registry, name: &str) {\n",
            "    r.register_counter(name, \"help\");\n", // dynamic: runtime's job
            "    register_counter(\"NOT A METHOD\", \"help\");\n", // free fn, not the registry
            "}\n",
        );
        assert!(lint_at("crates/obs/src/fake.rs", src).is_empty());
    }

    #[test]
    fn o1_silent_in_tests() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(r: &Registry) { r.register_counter(\"BAD\", \"h\"); }\n",
            "}\n",
        );
        assert!(lint_at("crates/obs/src/fake.rs", src).is_empty());
    }

    #[test]
    fn o1_grammar_matches_wsg_obs() {
        assert!(valid_metric_name("wsg_gossip_published_total"));
        assert!(valid_metric_name("a"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("_leading"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name("UpperCase"));
    }

    #[test]
    fn rule_lookup_by_id_and_name() {
        assert_eq!(rule("D1").unwrap().name, "hash-collections");
        assert_eq!(rule("wall-clock").unwrap().id, "D2");
        assert_eq!(rule("atomic-ordering").unwrap().id, "A2");
        assert_eq!(rule("E2").unwrap().name, "error-swallowing");
        assert_eq!(rule("socket-timeout").unwrap().id, "T1");
        assert_eq!(rule("cov-scope").unwrap().id, "F1");
        assert!(rule("nope").is_none());
    }

    #[test]
    fn a2_fires_on_relaxed_outside_the_allowlist() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_at("crates/net/src/sync.rs", src), vec!["A2:1"]);
    }

    #[test]
    fn a2_silent_in_allowlisted_stats_modules_and_tests() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        for file in A2_RELAXED_FILES {
            assert!(lint_at(file, src).is_empty(), "{file} must be exempt");
        }
        let test_src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
            "}\n",
        );
        assert!(lint_at("crates/net/src/sync.rs", test_src).is_empty());
    }

    #[test]
    fn a2_silent_on_other_orderings_and_non_code_text() {
        let src = concat!(
            "// Ordering::Relaxed in a comment\n",
            "const DOC: &str = r#\"Ordering::Relaxed // with a fake comment\"#;\n",
            "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n",
        );
        assert!(lint_at("crates/net/src/sync.rs", src).is_empty());
    }

    #[test]
    fn f1_fires_on_cov_macro_outside_the_designated_parsers() {
        let src = "fn f() { cov!(); parse(); }\n";
        assert_eq!(lint_at("crates/gossip/src/engine.rs", src), vec!["F1:1"]);
    }

    #[test]
    fn f1_silent_in_designated_files_paths_and_tests() {
        let src = "fn f() { cov!(); }\n";
        for file in F1_COV_FILES {
            assert!(lint_at(file, src).is_empty(), "{file} must be exempt");
        }
        let paths = concat!(
            "use wsg_net::cov;\n",
            "fn f(a: u32) -> bool { cov::reset(); let cov = a; cov != 3 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { cov!(); }\n",
            "}\n",
        );
        assert!(lint_at("crates/gossip/src/engine.rs", paths).is_empty());
    }

    #[test]
    fn f1_allow_comment_suppresses() {
        let src = "fn f() { cov!(); } // wsg_lint: allow(cov-scope)\n";
        let report = check_source("crates/gossip/src/engine.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.stale_allows.is_empty());
    }

    #[test]
    fn e2_fires_on_let_discard_and_terminal_ok() {
        let src = concat!(
            "fn f(tx: &Sender<u32>) {\n",
            "    let _ = tx.send(1);\n",
            "    tx.send(2).ok();\n",
            "}\n",
        );
        assert_eq!(lint_at("crates/gossip/src/engine.rs", src), vec!["E2:2", "E2:3"]);
    }

    #[test]
    fn e2_ignores_consumed_ok_named_discards_and_tests() {
        let src = concat!(
            "fn f(s: &str) -> Option<u32> { s.parse().ok() }\n",
            "fn g(s: &str) -> Option<u32> { let v = s.parse::<u32>().ok()?; Some(v) }\n",
            "fn h(tx: &Sender<u32>) { let _ignored = tx.send(1); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(tx: &Sender<u32>) { let _ = tx.send(1); tx.send(2).ok(); }\n",
            "}\n",
        );
        assert!(lint_at("crates/gossip/src/engine.rs", src).is_empty());
    }

    #[test]
    fn e2_allow_requires_a_reason() {
        let with_reason = concat!(
            "fn f(tx: &Sender<u32>) {\n",
            "    // wsg_lint: allow(E2) — receiver gone means shutdown\n",
            "    let _ = tx.send(1);\n",
            "}\n",
        );
        let report = check_source("crates/gossip/src/engine.rs", with_reason);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.stale_allows.is_empty());

        let bare = concat!(
            "fn f(tx: &Sender<u32>) {\n",
            "    // wsg_lint: allow(E2)\n",
            "    let _ = tx.send(1);\n",
            "}\n",
        );
        let hits = lint_at("crates/gossip/src/engine.rs", bare);
        assert_eq!(hits, vec!["M1:2", "E2:3"], "a reasonless allow must not suppress");
    }

    #[test]
    fn t1_fires_on_untimed_socket_calls_in_transport_crates_only() {
        let src = concat!(
            "fn dial(addr: &str) -> io::Result<TcpStream> {\n",
            "    TcpStream::connect(addr)\n",
            "}\n",
        );
        assert_eq!(lint_at("crates/http/src/client.rs", src), vec!["T1:2"]);
        assert_eq!(lint_at("crates/cluster/src/transport.rs", src), vec!["T1:2"]);
        assert!(lint_at("crates/net/src/threads.rs", src).is_empty(), "out of T1 scope");
    }

    #[test]
    fn t1_silent_when_the_enclosing_fn_mentions_a_timeout() {
        let src = concat!(
            "fn dial(addr: &SocketAddr) -> io::Result<TcpStream> {\n",
            "    let s = TcpStream::connect_timeout(addr, IO_TIMEOUT)?;\n",
            "    s.set_read_timeout(Some(IO_TIMEOUT))?;\n",
            "    s.read_exact(&mut buf)?;\n",
            "    Ok(s)\n",
            "}\n",
        );
        assert!(lint_at("crates/http/src/client.rs", src).is_empty());
    }

    #[test]
    fn t1_judges_the_innermost_fn() {
        // The outer fn knows a timeout; the nested helper does not.
        let src = concat!(
            "fn outer(l: &TcpListener) {\n",
            "    let t = ACCEPT_TIMEOUT;\n",
            "    fn inner(l: &TcpListener) { let _c = l.accept(); }\n",
            "    inner(l);\n",
            "}\n",
        );
        let hits = lint_at("crates/http/src/server.rs", src);
        assert!(hits.contains(&"T1:3".to_string()), "{hits:?}");
    }

    #[test]
    fn t1_ignores_definitions_and_plain_idents() {
        let src = concat!(
            "impl Read for Framed {\n",
            "    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> { self.fill(buf) }\n",
            "}\n",
            "fn doc() { let accept = 1; let _use = accept; }\n",
        );
        assert!(lint_at("crates/http/src/parser.rs", src).is_empty());
    }
}
