//! `wsg_lint` — the in-tree workspace linter.
//!
//! The workspace's headline guarantees (bit-identical gossip traces for
//! a given seed/fanout/rounds, parallel sweeps byte-identical to serial
//! runs, and a hermetic zero-registry-dependency build) used to be
//! enforced by convention plus a one-off CI shell step. This crate makes
//! them machine-checkable: a zero-dependency static-analysis tool with
//! its own Rust token scanner ([`lexer`]) that walks every workspace
//! `.rs` file and `Cargo.toml` and enforces the invariants as lint rules
//! with `file:line` diagnostics ([`rules`], [`manifest`]).
//!
//! Run it as `cargo run -p wsg_lint` from anywhere in the workspace; CI
//! runs it with `--deny-all`, which additionally fails on stale allow
//! comments. See DESIGN.md "Static analysis" for the rule catalogue and
//! the allow-comment grammar.

pub mod lexer;
pub mod manifest;
pub mod rules;

use rules::{Diagnostic, StaleAllow};
use std::path::{Path, PathBuf};

/// Everything one lint run found.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Allow comments that suppressed nothing.
    pub stale_allows: Vec<StaleAllow>,
    /// Number of `.rs` files scanned.
    pub sources: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests: usize,
}

impl Report {
    /// True when there is nothing to complain about (stale allows are
    /// judged separately, under `--deny-all`).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into: build output, VCS metadata, and
/// lint test fixtures (which contain deliberate violations).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// Lint the workspace rooted at `root`.
///
/// Walks every `.rs` and `Cargo.toml` under `root` (skipping
/// `SKIP_DIRS`), applies the source rules and the manifest rule, and
/// aggregates a [`Report`]. File order is sorted so output is stable.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort();
    manifests.sort();

    let mut report = Report::default();
    for rel in &sources {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        let file_report = rules::check_source(&rel, &src);
        report.diagnostics.extend(file_report.diagnostics);
        report.stale_allows.extend(file_report.stale_allows);
        report.sources += 1;
    }
    for rel in &manifests {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        report.diagnostics.extend(manifest::check_manifest(&rel, &src));
        report.manifests += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn collect(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, sources, manifests)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            if name == "Cargo.toml" {
                manifests.push(rel);
            } else {
                sources.push(rel);
            }
        }
    }
    Ok(())
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
