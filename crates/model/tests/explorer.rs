//! Explorer self-tests (ISSUE 9 satellite): a seeded known-racy fixture
//! the checker must catch quickly, a race-free fixture it must pass
//! exhaustively, and replay proofs — the minimized failing schedule
//! replays byte-identically, and `WSG_MODEL_SEED`-style re-seeding
//! reproduces the exact sampling stream.

use std::sync::Arc;

use wsg_model::atomic::{AtomicUsize, Ordering};
use wsg_model::{sync, thread, Explorer, Schedule};

/// The classic two-thread lost update on a shim atomic: both threads
/// load, both add locally, both store — one increment vanishes.
fn racy_lost_update() {
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let v = counter.load(Ordering::Relaxed);
                counter.store(v + 1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

/// The corrected version: the read-modify-write is atomic.
fn race_free_counter() {
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

#[test]
fn racy_fixture_is_caught_within_budget() {
    let outcome = Explorer::new()
        .preemption_bound(3)
        .max_schedules(500)
        .samples(0)
        .explore(racy_lost_update);
    let failure = outcome.failure.expect("the lost update must be found");
    assert!(
        outcome.schedules <= 500,
        "caught within the schedule budget, not by luck: {}",
        outcome.schedules
    );
    assert!(failure.message.contains("lost update"), "{}", failure.message);
    assert!(!failure.schedule.is_empty(), "a racy schedule needs at least one real choice");
    assert!(!failure.trace.is_empty(), "minimized failing trace is part of the report");
}

#[test]
fn race_free_fixture_passes_exhaustively() {
    let outcome = Explorer::new()
        .preemption_bound(3)
        .max_schedules(20_000)
        .samples(32)
        .explore(race_free_counter);
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure.map(|f| f.report()));
    assert!(outcome.exhausted, "DFS must complete within the bound for this tiny fixture");
    assert!(outcome.schedules > 1);
    assert!(outcome.distinct_traces >= 1);
}

#[test]
fn minimized_schedule_replays_byte_identically() {
    let explorer = Explorer::new().preemption_bound(3).max_schedules(500).samples(0);
    let failure = explorer
        .explore(racy_lost_update)
        .failure
        .expect("the lost update must be found");

    // Round-trip the schedule through its string form (the exact bytes a
    // user would paste into WSG_MODEL_SCHEDULE) and replay it.
    let text = failure.schedule.to_string();
    let parsed: Schedule = text.parse().expect("schedule strings parse back");
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(racy_lost_update);
    let replayed = explorer
        .replay(&body, &parsed)
        .failure
        .expect("minimized schedule must reproduce the failure");

    assert_eq!(
        replayed.schedule.to_string(),
        text,
        "replay must record the exact same schedule string"
    );
    assert_eq!(replayed.message, failure.message, "same failure, same message");
    assert_eq!(replayed.trace, failure.trace, "same failure, same minimized trace");
}

#[test]
fn same_seed_reproduces_the_same_sampled_failing_schedule() {
    // Sampling-only exploration (what runs beyond the preemption bound):
    // the same WSG_MODEL_SEED value must walk the identical stream and
    // find the identical failing schedule.
    let explore = |seed: u64| {
        Explorer::new()
            .sampling_only()
            .samples(200)
            .max_schedules(400)
            .seed(seed)
            .explore(racy_lost_update)
    };
    let first = explore(42).failure.expect("sampling must eventually hit the race");
    let second = explore(42).failure.expect("same seed, same outcome");
    assert_eq!(first.schedule.to_string(), second.schedule.to_string());
    assert_eq!(first.message, second.message);
    assert_eq!(first.sampled_seed, second.sampled_seed);
    assert!(first.sampled_seed.is_some(), "sampling failures carry their per-sample seed");

    let other = explore(43).failure.expect("different seed still finds this easy race");
    // Not asserting inequality of schedules (different seeds *may*
    // collide), only that the deterministic pipeline ran again.
    assert!(other.sampled_seed.is_some());
}

#[test]
fn mutex_blocking_is_modeled_not_busy_waited() {
    // Two threads contend on one mutex; every interleaving must still
    // terminate (the scheduler parks blocked threads instead of spinning
    // them, so exploration terminates too).
    let outcome = Explorer::new().preemption_bound(3).samples(8).explore(|| {
        let m = Arc::new(sync::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let m = Arc::clone(&m);
                thread::spawn(move || m.lock().push(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let got = m.lock();
        assert_eq!(got.len(), 2);
    });
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure.map(|f| f.report()));
    assert!(outcome.exhausted);
}
