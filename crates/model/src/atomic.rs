//! Shim atomics. Inside an exploration every operation is a scheduling
//! point and the supplied [`Ordering`] is *honored by the model*: relaxed
//! and acquire loads may observe stale values from the modification
//! order (within their vector-clock visibility window), acquire loads of
//! release stores synchronize-with them, and `SeqCst` reads the newest
//! store. Outside an exploration the shims delegate to the real `std`
//! atomics verbatim.
//!
//! Model writes are written through to the real atomic (the exploration
//! is serialized, so plain `SeqCst` write-through is race-free); the real
//! cell therefore always holds the newest modification-order value, which
//! doubles as the registration snapshot for objects living in `static`s
//! across executions.
//!
//! Every operation falls back to the real atomic when the execution has
//! already been torn down ([`Execution::aborted`]) so destructors running
//! during the `ExecAbort` unwind never re-enter the scheduler.

pub use std::sync::atomic::Ordering;

use crate::exec::{current, ObjInit, ObjRef};

macro_rules! model_atomic_int {
    ($(#[$doc:meta])* $name:ident, $real:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            obj: ObjRef,
            real: $real,
        }

        impl $name {
            pub const fn new(value: $prim) -> Self {
                $name { obj: ObjRef::new(), real: <$real>::new(value) }
            }

            fn resolve(&self, ctx: &crate::exec::Ctx) -> usize {
                self.obj.resolve(ctx, || ObjInit::Atomic(self.real.load(Ordering::SeqCst) as u64))
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        ctx.exec.atomic_load(ctx.id, obj, ord) as $prim
                    }
                    _ => self.real.load(ord),
                }
            }

            pub fn store(&self, value: $prim, ord: Ordering) {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        ctx.exec.atomic_store(ctx.id, obj, ord, value as u64);
                        self.real.store(value, Ordering::SeqCst);
                    }
                    _ => self.real.store(value, ord),
                }
            }

            pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        let (old, new) =
                            ctx.exec.atomic_rmw(ctx.id, obj, ord, |_| value as u64, "swap");
                        self.real.store(new as $prim, Ordering::SeqCst);
                        old as $prim
                    }
                    _ => self.real.swap(value, ord),
                }
            }

            pub fn fetch_add(&self, value: $prim, ord: Ordering) -> $prim {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        let (old, new) = ctx.exec.atomic_rmw(
                            ctx.id,
                            obj,
                            ord,
                            |v| (v as $prim).wrapping_add(value) as u64,
                            "fetch_add",
                        );
                        self.real.store(new as $prim, Ordering::SeqCst);
                        old as $prim
                    }
                    _ => self.real.fetch_add(value, ord),
                }
            }

            pub fn fetch_sub(&self, value: $prim, ord: Ordering) -> $prim {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        let (old, new) = ctx.exec.atomic_rmw(
                            ctx.id,
                            obj,
                            ord,
                            |v| (v as $prim).wrapping_sub(value) as u64,
                            "fetch_sub",
                        );
                        self.real.store(new as $prim, Ordering::SeqCst);
                        old as $prim
                    }
                    _ => self.real.fetch_sub(value, ord),
                }
            }

            pub fn fetch_max(&self, value: $prim, ord: Ordering) -> $prim {
                match current() {
                    Some(ctx) if !ctx.exec.aborted() => {
                        let obj = self.resolve(&ctx);
                        let (old, new) = ctx.exec.atomic_rmw(
                            ctx.id,
                            obj,
                            ord,
                            |v| (v as $prim).max(value) as u64,
                            "fetch_max",
                        );
                        self.real.store(new as $prim, Ordering::SeqCst);
                        old as $prim
                    }
                    _ => self.real.fetch_max(value, ord),
                }
            }
        }
    };
}

model_atomic_int!(
    /// Shim for [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic_int!(
    /// Shim for [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

/// Shim for [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    obj: ObjRef,
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(value: bool) -> Self {
        AtomicBool { obj: ObjRef::new(), real: std::sync::atomic::AtomicBool::new(value) }
    }

    fn resolve(&self, ctx: &crate::exec::Ctx) -> usize {
        self.obj.resolve(ctx, || ObjInit::Atomic(self.real.load(Ordering::SeqCst) as u64))
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match current() {
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.resolve(&ctx);
                ctx.exec.atomic_load(ctx.id, obj, ord) != 0
            }
            _ => self.real.load(ord),
        }
    }

    pub fn store(&self, value: bool, ord: Ordering) {
        match current() {
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.resolve(&ctx);
                ctx.exec.atomic_store(ctx.id, obj, ord, value as u64);
                self.real.store(value, Ordering::SeqCst);
            }
            _ => self.real.store(value, ord),
        }
    }

    pub fn swap(&self, value: bool, ord: Ordering) -> bool {
        match current() {
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.resolve(&ctx);
                let (old, new) = ctx.exec.atomic_rmw(ctx.id, obj, ord, |_| value as u64, "swap");
                self.real.store(new != 0, Ordering::SeqCst);
                old != 0
            }
            _ => self.real.swap(value, ord),
        }
    }
}
