//! Replayable schedules: the recorded branch decisions of one execution,
//! printable as `"1.0.2"` and parseable back for `WSG_MODEL_SCHEDULE`
//! replays.

use std::fmt;
use std::str::FromStr;

/// One recorded branch decision: which alternative was taken at a choice
/// point, out of how many. Choice points with a single alternative are
/// recorded with `arity == 1` (so replays stay aligned whatever the
/// preemption bound) and are never incremented by the DFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    pub(crate) index: u32,
    pub(crate) arity: u32,
}

/// A schedule: the choice indices of one execution, trailing defaults
/// trimmed. Feeding it back as the prescribed prefix of a replay
/// reproduces the execution decision-for-decision (model tests must be
/// deterministic apart from scheduling, which the shims guarantee).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub(crate) Vec<u32>);

impl Schedule {
    /// Canonical form of a run's recorded choices: indices only, with
    /// trailing zeros trimmed (beyond the prescription the explorer takes
    /// choice 0 anyway, so the trimmed and untrimmed forms replay
    /// identically).
    pub(crate) fn from_recorded(recorded: &[Choice]) -> Self {
        let mut indices: Vec<u32> = recorded.iter().map(|c| c.index).collect();
        while indices.last() == Some(&0) {
            indices.pop();
        }
        Schedule(indices)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("-");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a `WSG_MODEL_SCHEDULE` string.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Schedule(Vec::new()));
        }
        let mut indices = Vec::new();
        for part in s.split('.') {
            indices.push(
                part.trim()
                    .parse::<u32>()
                    .map_err(|e| ParseScheduleError(format!("{part:?}: {e}")))?,
            );
        }
        Ok(Schedule(indices))
    }
}

/// The DFS successor: increment the rightmost choice that still has an
/// untaken alternative and truncate everything after it. [`None`] when
/// the recorded run was the last schedule in its subtree — exploration
/// is exhausted.
pub(crate) fn next_prescribed(recorded: &[Choice]) -> Option<Vec<u32>> {
    for i in (0..recorded.len()).rev() {
        if recorded[i].index + 1 < recorded[i].arity {
            let mut prescribed: Vec<u32> = recorded[..i].iter().map(|c| c.index).collect();
            prescribed.push(recorded[i].index + 1);
            return Some(prescribed);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(index: u32, arity: u32) -> Choice {
        Choice { index, arity }
    }

    #[test]
    fn display_and_parse_round_trip() {
        for text in ["-", "0", "2.0.1", "10.3"] {
            let s: Schedule = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule(Vec::new()));
        assert!(" 1 . 2 ".parse::<Schedule>().unwrap().to_string() == "1.2");
        assert!("1.x".parse::<Schedule>().is_err());
    }

    #[test]
    fn from_recorded_trims_trailing_defaults() {
        let rec = [ch(1, 2), ch(0, 3), ch(2, 3), ch(0, 2), ch(0, 2)];
        assert_eq!(Schedule::from_recorded(&rec).to_string(), "1.0.2");
        assert_eq!(Schedule::from_recorded(&[ch(0, 2)]).to_string(), "-");
    }

    #[test]
    fn dfs_successor_increments_rightmost_and_truncates() {
        let rec = [ch(0, 2), ch(1, 2), ch(0, 3)];
        assert_eq!(next_prescribed(&rec), Some(vec![0, 1, 1]));
        let rec = [ch(0, 2), ch(1, 2), ch(2, 3)];
        assert_eq!(next_prescribed(&rec), Some(vec![1]));
        let rec = [ch(1, 2), ch(1, 2), ch(2, 3)];
        assert_eq!(next_prescribed(&rec), None);
        assert_eq!(next_prescribed(&[]), None);
    }

    #[test]
    fn forced_points_record_arity_one_and_never_increment() {
        let rec = [ch(0, 1), ch(1, 2), ch(0, 1)];
        assert_eq!(next_prescribed(&rec), None);
    }
}
