//! Vector clocks: the happens-before bookkeeping behind both the atomic
//! visibility windows (which stale values a load may observe) and the
//! synchronizes-with edges of mutexes, notify tokens, spawn and join.

/// A grow-on-demand vector clock indexed by model-thread id. Missing
/// components read as 0, so clocks created before a thread existed stay
/// valid after it spawns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, thread: usize) -> u32 {
        self.0.get(thread).copied().unwrap_or(0)
    }

    /// Advance this thread's own component (one new event).
    pub(crate) fn tick(&mut self, thread: usize) {
        if self.0.len() <= thread {
            self.0.resize(thread + 1, 0);
        }
        self.0[thread] += 1;
    }

    /// Pointwise maximum: after `self.join(o)`, everything known to `o`
    /// happens-before every later event of `self`'s owner.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_grows() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::default();
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(99), 0, "missing components read as zero");
    }
}
