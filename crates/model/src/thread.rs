//! Shim threads. Inside an exploration, `spawn` creates a *modeled*
//! thread (a real OS thread serialized by the scheduler token) whose
//! interleavings the explorer controls; outside one it is
//! [`std::thread::spawn`].

use std::sync::{Arc, Mutex as StdMutex};

use crate::exec::{current, Ctx};

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        ctx: Ctx,
        child: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle on a spawned shim thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its result. Under
    /// exploration this is a blocking scheduling point (and joins the
    /// child's vector clock: everything the child did happens-before the
    /// join's return).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(handle) => handle.join(),
            Inner::Model { ctx, child, result } => {
                if ctx.exec.aborted() {
                    // Execution teardown: the child is unwinding too and
                    // will never store a result; report it as panicked
                    // instead of re-entering the scheduler.
                    return Err(Box::new(
                        "modeled thread aborted during execution teardown".to_string(),
                    ));
                }
                ctx.exec.join_thread(ctx.id, child);
                let value = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("modeled thread finished without storing its result");
                Ok(value)
            }
        }
    }
}

/// Spawn a thread. See the module docs for the two behaviors.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some(ctx) if !ctx.exec.aborted() => {
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                let value = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            });
            let child = ctx.exec.spawn_thread(ctx.id, body);
            JoinHandle(Inner::Model { ctx, child, result })
        }
        _ => JoinHandle(Inner::Real(std::thread::spawn(f))),
    }
}

/// A pure scheduling point under exploration; [`std::thread::yield_now`]
/// otherwise.
pub fn yield_now() {
    match current() {
        Some(ctx) if !ctx.exec.aborted() => ctx.exec.yield_now(ctx.id),
        _ => std::thread::yield_now(),
    }
}
