//! Shim `Mutex` and `Notify`: inside an exploration every operation is a
//! scheduling point driven by the explorer; outside one they behave as
//! the ordinary blocking primitives, so a crate compiled with
//! `--cfg wsg_model` still runs its regular test suite unchanged.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex as StdMutex};

use crate::exec::{current, Ctx, ObjInit, ObjRef};

fn relock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
/// Under exploration, acquisition order is a recorded scheduling choice
/// and blocking is visible to the deadlock detector.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    obj: ObjRef,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { obj: ObjRef::new(), inner: StdMutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            // The `aborted` arm: during the `ExecAbort` unwind the
            // storage mutex is either free or about to be released by
            // another unwinding thread, so a plain blocking lock is safe.
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.obj.resolve(&ctx, || ObjInit::Mutex);
                ctx.exec.mutex_lock(ctx.id, obj);
                // The model lock is now ours and the scheduler token is
                // held, so the storage mutex must be free (a previous
                // holder that panicked leaves it poisoned, not held).
                let inner = match self.inner.try_lock() {
                    Ok(guard) => guard,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        unreachable!("model-held mutex contended outside the exploration")
                    }
                };
                MutexGuard { inner, model: Some((ctx, obj)) }
            }
            _ => MutexGuard { inner: relock(&self.inner), model: None },
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`]; releases the model lock on drop
/// (while the dropping thread still holds the scheduler token, so the
/// storage release below it can never be observed out of order).
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    model: Option<(Ctx, usize)>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, obj)) = self.model.take() {
            ctx.exec.mutex_unlock(ctx.id, obj);
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A wake token ("eventcount-lite"): `notify_one` deposits at most one
/// token; `wait` consumes it or parks. Multiple notifies before a wait
/// coalesce into one token — exactly the semantics the batching sender's
/// wakeup path relies on. Under exploration, a `wait` that parks with no
/// notify left to come is reported as a deadlock (a lost wakeup).
#[derive(Debug, Default)]
pub struct Notify {
    obj: ObjRef,
    token: StdMutex<bool>,
    cv: Condvar,
}

impl Notify {
    pub const fn new() -> Self {
        Notify { obj: ObjRef::new(), token: StdMutex::new(false), cv: Condvar::new() }
    }

    /// Deposit the token (idempotent) and wake a parked waiter.
    pub fn notify_one(&self) {
        match current() {
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.obj.resolve(&ctx, || ObjInit::Notify);
                ctx.exec.notify_notify(ctx.id, obj);
            }
            _ => {
                *relock(&self.token) = true;
                self.cv.notify_one();
            }
        }
    }

    /// Consume the token, parking until one is deposited.
    pub fn wait(&self) {
        match current() {
            Some(ctx) if !ctx.exec.aborted() => {
                let obj = self.obj.resolve(&ctx, || ObjInit::Notify);
                ctx.exec.notify_wait(ctx.id, obj);
            }
            _ => {
                let mut token = relock(&self.token);
                while !*token {
                    token = self.cv.wait(token).unwrap_or_else(|e| e.into_inner());
                }
                *token = false;
            }
        }
    }
}
