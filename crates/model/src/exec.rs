//! The execution engine: a token-passing scheduler that serializes real
//! OS threads so that exactly one modeled thread runs between scheduling
//! points, a recorded-choice chooser (DFS / seeded sampling / replay),
//! and the modeled object table — mutexes, notify tokens, and atomics
//! with a store-buffer memory model driven by vector clocks.
//!
//! Every shim operation begins with a *scheduling point*: the running
//! thread announces its next operation, the chooser picks which enabled
//! thread performs the next operation, and the token moves. Because the
//! token is exclusive, the operation bodies themselves run data-race-free
//! no matter what the modeled program does — all nondeterminism is
//! concentrated in the recorded choices, which is what makes schedules
//! replayable.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64 as RealAtomicU64, Ordering as RealOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdGuard};

pub use std::sync::atomic::Ordering;

use crate::clock::VClock;
use crate::rng::{mix, SplitMix64};
use crate::schedule::Choice;

/// Upper bound on modeled threads per execution — a sanity rail, not a
/// tuning knob; model tests are supposed to be tiny.
const MAX_THREADS: usize = 16;

/// Panic payload used to unwind modeled threads when an exploration
/// aborts (a failure was found, or teardown started). Every modeled
/// thread's wrapper catches and swallows it.
pub(crate) struct ExecAbort;

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn lock_state(m: &StdMutex<ExecState>) -> StdGuard<'_, ExecState> {
    // A modeled thread that panics (deliberately — that is how model
    // tests fail) poisons this mutex; the state itself is always
    // consistent because every mutation happens under the guard.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Operation tags mixed into the canonical per-object trace hashes.
mod opcode {
    pub(super) const LOCK: u64 = 1;
    pub(super) const UNLOCK: u64 = 2;
    pub(super) const NOTIFY: u64 = 3;
    pub(super) const WAIT: u64 = 4;
    pub(super) const LOAD: u64 = 5;
    pub(super) const STORE: u64 = 6;
    pub(super) const RMW: u64 = 7;
    pub(super) const SPAWN: u64 = 8;
    pub(super) const JOIN: u64 = 9;
    pub(super) const YIELD: u64 = 10;
    pub(super) const FINISH: u64 = 11;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    Blocked,
    Finished,
}

/// What a blocked thread is waiting for — surfaced verbatim in deadlock
/// reports (which is how lost wakeups manifest).
#[derive(Clone, Copy, Debug)]
enum BlockOn {
    Lock(usize),
    Notify(usize),
    Join(usize),
}

impl std::fmt::Display for BlockOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockOn::Lock(o) => write!(f, "Mutex#{o}"),
            BlockOn::Notify(o) => write!(f, "Notify#{o} (no token: a wakeup was lost or never sent)"),
            BlockOn::Join(t) => write!(f, "join(t{t})"),
        }
    }
}

struct ModelThread {
    state: TState,
    blocked_on: Option<BlockOn>,
    clock: VClock,
}

/// One entry in an atomic's modification order.
struct Store {
    value: u64,
    /// Writing thread and its clock component at the store: a reader
    /// whose clock covers `(writer, stamp)` can no longer observe
    /// anything older (coherence + happens-before visibility floor).
    writer: usize,
    stamp: u32,
    /// The writer's full clock when the store had release semantics; an
    /// acquiring load that reads this store joins it (synchronizes-with).
    release: Option<VClock>,
}

enum Obj {
    Mutex { locked_by: Option<usize>, clock: VClock },
    Notify { token: bool, clock: VClock },
    Atomic { stores: Vec<Store>, last_read: Vec<usize> },
}

/// How a lazily-registered object starts life.
pub(crate) enum ObjInit {
    Mutex,
    Notify,
    Atomic(u64),
}

/// Where choices come from for one execution.
pub(crate) enum Mode {
    /// Prescribed prefix, then always alternative 0 — the DFS leg.
    Dfs,
    /// Prescribed prefix (normally empty), then uniform via the RNG.
    Sample(SplitMix64),
    /// Prescribed prefix, then alternative 0 — semantically identical to
    /// [`Mode::Dfs`] but run with an unlimited preemption budget so a
    /// recorded schedule replays whatever bound found it.
    Replay,
}

struct Chooser {
    mode: Mode,
    prescribed: Vec<u32>,
    pos: usize,
    recorded: Vec<Choice>,
}

impl Chooser {
    /// Decide a choice point with `arity >= 2` alternatives.
    fn choose(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 2);
        let index = if self.pos < self.prescribed.len() {
            (self.prescribed[self.pos] as usize).min(arity - 1)
        } else {
            match &mut self.mode {
                Mode::Dfs | Mode::Replay => 0,
                Mode::Sample(rng) => rng.below(arity),
            }
        };
        self.pos += 1;
        self.recorded.push(Choice { index: index as u32, arity: arity as u32 });
        index
    }

    /// A choice point that *would* have had alternatives but was forced
    /// to "continue the current thread" by the preemption bound. It is
    /// recorded with arity 1 so the DFS never increments it, yet still
    /// consumes one prescription slot — keeping replays aligned even
    /// though they run with an unlimited bound.
    fn forced(&mut self) {
        self.pos += 1;
        self.recorded.push(Choice { index: 0, arity: 1 });
    }
}

struct ExecState {
    threads: Vec<ModelThread>,
    active: usize,
    /// False once the execution is over — completed, failed, or torn
    /// down. Modeled threads that observe it unwind with [`ExecAbort`].
    running: bool,
    finished: usize,
    failure: Option<String>,
    objects: Vec<Obj>,
    /// Canonical per-object operation-sequence hashes: interleavings that
    /// only reorder operations on *different* objects hash identically,
    /// so the fold over these counts Mazurkiewicz trace classes.
    obj_hash: Vec<u64>,
    /// Hash of object-less events (spawn/join/yield/finish).
    misc_hash: u64,
    chooser: Chooser,
    preemptions: usize,
    bound: usize,
    steps: usize,
    max_steps: usize,
    trace: Option<Vec<String>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// What one execution produced, harvested after teardown.
pub(crate) struct RunResult {
    pub(crate) recorded: Vec<Choice>,
    pub(crate) failure: Option<String>,
    pub(crate) canon: u64,
    pub(crate) trace: Vec<String>,
    #[allow(dead_code)] // surfaced in Outcome totals later if needed
    pub(crate) steps: usize,
}

pub(crate) struct Execution {
    pub(crate) epoch: u64,
    state: StdMutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A modeled thread's identity: the execution it belongs to and its id.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: usize,
}

/// The calling OS thread's model context, if it is a modeled thread of a
/// live exploration. `None` means "run the real primitive" — shims used
/// outside `explore` fall back to ordinary blocking behavior.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Monotone epoch distinguishing executions, so per-object [`ObjRef`]
/// registrations from a previous schedule (or a `static`'s from a
/// previous test) are recognized as stale and re-registered.
static EPOCH: RealAtomicU64 = RealAtomicU64::new(0);

/// A shim object's lazily-assigned identity within the active execution.
/// `const`-constructible so shim types can live in `static`s.
#[derive(Debug)]
pub(crate) struct ObjRef {
    epoch: RealAtomicU64,
    id: RealAtomicU64,
}

impl Default for ObjRef {
    fn default() -> Self {
        ObjRef::new()
    }
}

impl ObjRef {
    pub(crate) const fn new() -> Self {
        ObjRef { epoch: RealAtomicU64::new(0), id: RealAtomicU64::new(0) }
    }

    /// This object's id in `ctx`'s execution, registering it (with
    /// `init`'s starting state) on first touch per execution. Runs under
    /// the scheduler token, so the two-cell update cannot race.
    pub(crate) fn resolve(&self, ctx: &Ctx, init: impl FnOnce() -> ObjInit) -> usize {
        if self.epoch.load(RealOrdering::SeqCst) == ctx.exec.epoch {
            return self.id.load(RealOrdering::SeqCst) as usize;
        }
        let id = ctx.exec.register(init());
        self.id.store(id as u64, RealOrdering::SeqCst);
        self.epoch.store(ctx.exec.epoch, RealOrdering::SeqCst);
        id
    }
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Execution {
    fn new(bound: usize, max_steps: usize, mode: Mode, prescribed: Vec<u32>, trace_on: bool) -> Self {
        let mut main = ModelThread { state: TState::Runnable, blocked_on: None, clock: VClock::default() };
        main.clock.tick(0);
        Execution {
            epoch: EPOCH.fetch_add(1, RealOrdering::SeqCst) + 1,
            state: StdMutex::new(ExecState {
                threads: vec![main],
                active: 0,
                running: true,
                finished: 0,
                failure: None,
                objects: Vec::new(),
                obj_hash: Vec::new(),
                misc_hash: 0,
                chooser: Chooser { mode, prescribed, pos: 0, recorded: Vec::new() },
                preemptions: 0,
                bound,
                steps: 0,
                max_steps,
                trace: trace_on.then(Vec::new),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn register(&self, init: ObjInit) -> usize {
        let mut st = lock_state(&self.state);
        let id = st.objects.len();
        st.objects.push(match init {
            ObjInit::Mutex => Obj::Mutex { locked_by: None, clock: VClock::default() },
            ObjInit::Notify => Obj::Notify { token: false, clock: VClock::default() },
            ObjInit::Atomic(value) => Obj::Atomic {
                stores: vec![Store { value, writer: 0, stamp: 0, release: None }],
                last_read: Vec::new(),
            },
        });
        st.obj_hash.push(0);
        id
    }

    /// Record a failure (first one wins) and end the execution: every
    /// modeled thread unwinds at its next brush with the scheduler.
    fn fail_locked(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.running = false;
        self.cv.notify_all();
    }

    /// True once this execution has been torn down (a failure was raised
    /// or every thread finished). Shim operations reached *after* that —
    /// typically from destructors running during the `ExecAbort` unwind,
    /// like a lock-order tracker purging its edges from a global map —
    /// must bypass the model entirely: re-entering the scheduler would
    /// panic again inside an active unwind and abort the process.
    pub(crate) fn aborted(&self) -> bool {
        !lock_state(&self.state).running
    }

    fn note(st: &mut ExecState, thread: usize, line: impl FnOnce() -> String) {
        if let Some(trace) = st.trace.as_mut() {
            trace.push(format!("[t{thread}] {}", line()));
        }
    }

    /// Pick who runs the next operation. `me_enabled` is false when the
    /// caller just blocked or finished (switching away from it is free;
    /// switching away from an *enabled* thread costs preemption budget).
    /// Returns [`None`] — after recording a deadlock failure — when no
    /// thread can run.
    fn choose_next(&self, st: &mut ExecState, me: usize, me_enabled: bool) -> Option<usize> {
        let mut cands: Vec<usize> = Vec::with_capacity(st.threads.len());
        if me_enabled {
            cands.push(me);
        }
        for (i, t) in st.threads.iter().enumerate() {
            if i != me && t.state == TState::Runnable {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            if st.finished < st.threads.len() {
                let mut msg = String::from("deadlock: every unfinished thread is blocked");
                for (i, t) in st.threads.iter().enumerate() {
                    if t.state == TState::Blocked {
                        if let Some(on) = t.blocked_on {
                            msg.push_str(&format!("\n    t{i} blocked on {on}"));
                        }
                    }
                }
                self.fail_locked(st, msg);
            }
            return None;
        }
        let index = if cands.len() < 2 {
            0
        } else if me_enabled && st.preemptions >= st.bound {
            st.chooser.forced();
            0
        } else {
            st.chooser.choose(cands.len())
        };
        let chosen = cands[index];
        if me_enabled && chosen != me {
            st.preemptions += 1;
        }
        Some(chosen)
    }

    /// Block until this thread holds the token again (or the execution
    /// ended, in which case unwind).
    fn wait_for_token<'a>(&'a self, mut st: StdGuard<'a, ExecState>, me: usize) -> StdGuard<'a, ExecState> {
        while st.running && st.active != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if !st.running {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st
    }

    /// One scheduling point: charge a step, fold the op into the
    /// canonical trace hash, and let the chooser decide who performs the
    /// next operation. On return the calling thread holds the token and
    /// may apply its operation's effects.
    fn schedule_point(&self, me: usize, obj: Option<usize>, op: u64) {
        let mut st = lock_state(&self.state);
        if !st.running {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max = st.max_steps;
            self.fail_locked(
                &mut st,
                format!(
                    "depth limit exceeded: more than {max} scheduling points \
                     (possible livelock; raise Explorer::max_depth if the test is this deep)"
                ),
            );
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        let tag = mix(me as u64 + 1, op);
        match obj {
            Some(o) => st.obj_hash[o] = mix(st.obj_hash[o], tag),
            None => st.misc_hash = mix(st.misc_hash, tag),
        }
        match self.choose_next(&mut st, me, true) {
            Some(chosen) if chosen != me => {
                st.active = chosen;
                self.cv.notify_all();
                drop(self.wait_for_token(st, me));
            }
            Some(_) => {}
            // Unreachable in practice (the caller is enabled), but keep
            // the teardown path uniform.
            None => {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
        }
    }

    /// Mark the caller blocked, hand the token to someone else, and wait
    /// to be scheduled again (the unblocker marks us runnable; a later
    /// choice gives us the token back).
    fn block_me<'a>(
        &'a self,
        mut st: StdGuard<'a, ExecState>,
        me: usize,
        on: BlockOn,
    ) -> StdGuard<'a, ExecState> {
        st.threads[me].state = TState::Blocked;
        st.threads[me].blocked_on = Some(on);
        match self.choose_next(&mut st, me, false) {
            Some(next) => {
                st.active = next;
                self.cv.notify_all();
            }
            None => {
                // Deadlock (failure already recorded) — unwind.
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
        }
        self.wait_for_token(st, me)
    }

    fn wake_blocked_on(st: &mut ExecState, pred: impl Fn(BlockOn) -> bool) {
        for t in st.threads.iter_mut() {
            if t.state == TState::Blocked && t.blocked_on.is_some_and(&pred) {
                t.state = TState::Runnable;
                t.blocked_on = None;
            }
        }
    }

    // ---- mutex ----------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, obj: usize) {
        self.schedule_point(me, Some(obj), opcode::LOCK);
        let mut st = lock_state(&self.state);
        loop {
            if !st.running {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
            let (held, clock) = match &st.objects[obj] {
                Obj::Mutex { locked_by, clock } => (locked_by.is_some(), clock.clone()),
                _ => unreachable!("object {obj} is not a mutex"),
            };
            if !held {
                if let Obj::Mutex { locked_by, .. } = &mut st.objects[obj] {
                    *locked_by = Some(me);
                }
                st.threads[me].clock.join(&clock);
                Self::note(&mut st, me, || format!("Mutex#{obj} lock"));
                return;
            }
            st = self.block_me(st, me, BlockOn::Lock(obj));
        }
    }

    /// Not a scheduling point: the release becomes observable at the
    /// holder's next point, which is when waiters can actually win the
    /// token anyway.
    pub(crate) fn mutex_unlock(&self, me: usize, obj: usize) {
        let mut st = lock_state(&self.state);
        if !st.running {
            return; // teardown / failure unwind — state no longer matters
        }
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        if let Obj::Mutex { locked_by, clock: oclock } = &mut st.objects[obj] {
            debug_assert_eq!(*locked_by, Some(me), "unlock by non-holder");
            *locked_by = None;
            oclock.join(&clock);
        }
        let tag = mix(me as u64 + 1, opcode::UNLOCK);
        st.obj_hash[obj] = mix(st.obj_hash[obj], tag);
        Self::wake_blocked_on(&mut st, |on| matches!(on, BlockOn::Lock(o) if o == obj));
        Self::note(&mut st, me, || format!("Mutex#{obj} unlock"));
    }

    // ---- notify ---------------------------------------------------------

    pub(crate) fn notify_notify(&self, me: usize, obj: usize) {
        self.schedule_point(me, Some(obj), opcode::NOTIFY);
        let mut st = lock_state(&self.state);
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        if let Obj::Notify { token, clock: oclock } = &mut st.objects[obj] {
            *token = true;
            oclock.join(&clock);
        }
        Self::wake_blocked_on(&mut st, |on| matches!(on, BlockOn::Notify(o) if o == obj));
        Self::note(&mut st, me, || format!("Notify#{obj} notify"));
    }

    pub(crate) fn notify_wait(&self, me: usize, obj: usize) {
        self.schedule_point(me, Some(obj), opcode::WAIT);
        let mut st = lock_state(&self.state);
        loop {
            if !st.running {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
            let (has_token, clock) = match &st.objects[obj] {
                Obj::Notify { token, clock } => (*token, clock.clone()),
                _ => unreachable!("object {obj} is not a notify"),
            };
            if has_token {
                if let Obj::Notify { token, .. } = &mut st.objects[obj] {
                    *token = false;
                }
                st.threads[me].clock.join(&clock);
                Self::note(&mut st, me, || format!("Notify#{obj} wait -> consumed token"));
                return;
            }
            Self::note(&mut st, me, || format!("Notify#{obj} wait -> parked"));
            st = self.block_me(st, me, BlockOn::Notify(obj));
        }
    }

    // ---- atomics --------------------------------------------------------

    /// A load observes some store in the modification order, no older
    /// than (a) the newest store already happens-before the load and
    /// (b) anything this thread previously read or wrote here
    /// (coherence). When several stores remain observable, which one is a
    /// recorded choice — candidates are deduplicated by (value,
    /// synchronization effect), the vector-clock pruning that collapses
    /// equivalent interleavings.
    pub(crate) fn atomic_load(&self, me: usize, obj: usize, ord: Ordering) -> u64 {
        self.schedule_point(me, Some(obj), opcode::LOAD);
        let mut st = lock_state(&self.state);
        if let Obj::Atomic { last_read, .. } = &mut st.objects[obj] {
            if last_read.len() <= me {
                last_read.resize(me + 1, 0);
            }
        }
        let me_clock = st.threads[me].clock.clone();
        let cands: Vec<usize> = match &st.objects[obj] {
            Obj::Atomic { stores, last_read } => {
                let latest = stores.len() - 1;
                if matches!(ord, Ordering::SeqCst) {
                    vec![latest]
                } else {
                    let mut floor = last_read[me];
                    for (i, s) in stores.iter().enumerate().skip(floor) {
                        if me_clock.get(s.writer) >= s.stamp {
                            floor = i;
                        }
                    }
                    // Newest first, so the default choice is the value a
                    // sequentially-consistent run would see.
                    let mut cands: Vec<usize> = Vec::new();
                    for i in (floor..=latest).rev() {
                        let s = &stores[i];
                        let dup = cands.iter().any(|&j| {
                            let t = &stores[j];
                            t.value == s.value
                                && (!acquires(ord) || t.release == s.release)
                        });
                        if !dup {
                            cands.push(i);
                        }
                    }
                    cands
                }
            }
            _ => unreachable!("object {obj} is not an atomic"),
        };
        let pick = if cands.len() >= 2 { st.chooser.choose(cands.len()) } else { 0 };
        let chosen = cands[pick];
        let (value, release) = match &mut st.objects[obj] {
            Obj::Atomic { stores, last_read } => {
                last_read[me] = last_read[me].max(chosen);
                (stores[chosen].value, stores[chosen].release.clone())
            }
            _ => unreachable!(),
        };
        if acquires(ord) {
            if let Some(rc) = release {
                st.threads[me].clock.join(&rc);
            }
        }
        Self::note(&mut st, me, || format!("Atomic#{obj} load ({ord:?}) -> {value}"));
        value
    }

    pub(crate) fn atomic_store(&self, me: usize, obj: usize, ord: Ordering, value: u64) {
        self.schedule_point(me, Some(obj), opcode::STORE);
        let mut st = lock_state(&self.state);
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        let stamp = clock.get(me);
        if let Obj::Atomic { stores, last_read } = &mut st.objects[obj] {
            stores.push(Store {
                value,
                writer: me,
                stamp,
                release: releases(ord).then(|| clock.clone()),
            });
            let idx = stores.len() - 1;
            if last_read.len() <= me {
                last_read.resize(me + 1, 0);
            }
            last_read[me] = idx;
        }
        Self::note(&mut st, me, || format!("Atomic#{obj} store {value} ({ord:?})"));
    }

    /// Read-modify-write: always operates on the newest store in the
    /// modification order (atomicity), acquiring/releasing per `ord`.
    /// Returns `(old, new)`.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        obj: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
        label: &'static str,
    ) -> (u64, u64) {
        self.schedule_point(me, Some(obj), opcode::RMW);
        let mut st = lock_state(&self.state);
        let (old, release) = match &st.objects[obj] {
            Obj::Atomic { stores, .. } => {
                let s = stores.last().expect("atomic has an initial store");
                (s.value, s.release.clone())
            }
            _ => unreachable!("object {obj} is not an atomic"),
        };
        if acquires(ord) {
            if let Some(rc) = release {
                st.threads[me].clock.join(&rc);
            }
        }
        let new = f(old);
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        let stamp = clock.get(me);
        if let Obj::Atomic { stores, last_read } = &mut st.objects[obj] {
            stores.push(Store {
                value: new,
                writer: me,
                stamp,
                release: releases(ord).then(|| clock.clone()),
            });
            let idx = stores.len() - 1;
            if last_read.len() <= me {
                last_read.resize(me + 1, 0);
            }
            last_read[me] = idx;
        }
        Self::note(&mut st, me, || format!("Atomic#{obj} {label} {old} -> {new} ({ord:?})"));
        (old, new)
    }

    // ---- threads --------------------------------------------------------

    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        me: usize,
        body: Box<dyn FnOnce() + Send>,
    ) -> usize {
        self.schedule_point(me, None, opcode::SPAWN);
        let mut st = lock_state(&self.state);
        if st.threads.len() >= MAX_THREADS {
            self.fail_locked(
                &mut st,
                format!("more than {MAX_THREADS} modeled threads — model tests must stay tiny"),
            );
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.threads[me].clock.tick(me);
        let child = st.threads.len();
        let mut child_clock = st.threads[me].clock.clone();
        child_clock.tick(child);
        st.threads.push(ModelThread {
            state: TState::Runnable,
            blocked_on: None,
            clock: child_clock,
        });
        Self::note(&mut st, me, || format!("spawn t{child}"));
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("wsg-model-{child}"))
            .spawn(move || {
                set_current(Some(Ctx { exec: Arc::clone(&exec), id: child }));
                {
                    // Wait to be scheduled for the first time.
                    let mut st = lock_state(&exec.state);
                    while st.running && st.active != child {
                        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    if !st.running {
                        return; // execution ended before our first step
                    }
                }
                match std::panic::catch_unwind(AssertUnwindSafe(body)) {
                    Ok(()) => exec.thread_finished(child),
                    Err(payload) => {
                        if payload.downcast_ref::<ExecAbort>().is_none() {
                            exec.fail_panic(child, panic_message(payload.as_ref()));
                        }
                    }
                }
            })
            .expect("spawn wsg_model thread");
        st.os_handles.push(handle);
        child
    }

    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.schedule_point(me, None, opcode::JOIN);
        let mut st = lock_state(&self.state);
        loop {
            if !st.running {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
            if st.threads[target].state == TState::Finished {
                let clock = st.threads[target].clock.clone();
                st.threads[me].clock.join(&clock);
                Self::note(&mut st, me, || format!("join t{target}"));
                return;
            }
            st = self.block_me(st, me, BlockOn::Join(target));
        }
    }

    pub(crate) fn yield_now(&self, me: usize) {
        self.schedule_point(me, None, opcode::YIELD);
    }

    pub(crate) fn thread_finished(&self, me: usize) {
        let mut st = lock_state(&self.state);
        if !st.running {
            return;
        }
        st.threads[me].clock.tick(me);
        st.threads[me].state = TState::Finished;
        st.finished += 1;
        let tag = mix(me as u64 + 1, opcode::FINISH);
        st.misc_hash = mix(st.misc_hash, tag);
        Self::wake_blocked_on(&mut st, |on| matches!(on, BlockOn::Join(t) if t == me));
        Self::note(&mut st, me, || "finished".to_string());
        if st.finished == st.threads.len() {
            st.running = false;
            self.cv.notify_all();
            return;
        }
        if let Some(next) = self.choose_next(&mut st, me, false) {
            st.active = next;
            self.cv.notify_all();
        }
        // None: deadlock failure already recorded by choose_next.
    }

    pub(crate) fn fail_panic(&self, me: usize, message: String) {
        let mut st = lock_state(&self.state);
        Self::note(&mut st, me, || format!("panicked: {message}"));
        self.fail_locked(&mut st, format!("t{me} panicked: {message}"));
    }
}

/// Run one complete execution of `body` under the given chooser
/// configuration and harvest its result. Spawns fresh OS threads (one
/// per modeled thread) and joins them all before returning, so no state
/// leaks between schedules.
pub(crate) fn run_one(
    body: &Arc<dyn Fn() + Send + Sync>,
    prescribed: Vec<u32>,
    mode: Mode,
    bound: usize,
    max_steps: usize,
    trace_on: bool,
) -> RunResult {
    assert!(
        current().is_none(),
        "wsg_model explorations cannot nest: explore() called from inside a modeled thread"
    );
    let exec = Arc::new(Execution::new(bound, max_steps, mode, prescribed, trace_on));
    let body = Arc::clone(body);
    let exec0 = Arc::clone(&exec);
    let main = std::thread::Builder::new()
        .name("wsg-model-0".to_string())
        .spawn(move || {
            set_current(Some(Ctx { exec: Arc::clone(&exec0), id: 0 }));
            match std::panic::catch_unwind(AssertUnwindSafe(|| body())) {
                Ok(()) => exec0.thread_finished(0),
                Err(payload) => {
                    if payload.downcast_ref::<ExecAbort>().is_none() {
                        exec0.fail_panic(0, panic_message(payload.as_ref()));
                    }
                }
            }
        })
        .expect("spawn wsg_model main thread");
    lock_state(&exec.state).os_handles.push(main);

    // Wait for the execution to finish (all threads done, or failure).
    {
        let mut st = lock_state(&exec.state);
        while st.running {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    // Tear down every OS thread before harvesting — spawns can append
    // handles while earlier ones are being joined, so drain in a loop.
    loop {
        let handles = std::mem::take(&mut lock_state(&exec.state).os_handles);
        if handles.is_empty() {
            break;
        }
        for h in handles {
            // wsg_lint: allow(E2) — a modeled thread's panic was already captured as the execution's failure; the join result carries nothing further.
            let _ = h.join();
        }
    }

    let mut st = lock_state(&exec.state);
    let canon = st.obj_hash.iter().fold(st.misc_hash, |acc, &h| mix(acc, h));
    RunResult {
        recorded: std::mem::take(&mut st.chooser.recorded),
        failure: st.failure.take(),
        canon,
        trace: st.trace.take().unwrap_or_default(),
        steps: st.steps,
    }
}
