//! Tiny in-crate RNG and hash mixing so the explorer stays
//! zero-dependency (`wsg_model` must not depend on `wsg_net` — the net
//! crate's own primitives are ported onto these shims).

/// SplitMix64: the sampling phase's schedule generator. One seed, one
/// deterministic stream — `WSG_MODEL_SEED` replays reduce to re-seeding.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`). Modulo bias is irrelevant here: the
    /// arity of a scheduling choice is tiny compared to 2^64.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Order-sensitive 64-bit mixing step used for canonical trace hashes
/// and for deriving per-sample seeds from the base seed.
pub(crate) fn mix(h: u64, x: u64) -> u64 {
    let mut z = h.rotate_left(5) ^ x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
