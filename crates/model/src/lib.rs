//! `wsg_model`: a loom-style deterministic concurrency model checker
//! (see DESIGN.md §13).
//!
//! Tests written against the shim types ([`sync::Mutex`],
//! [`sync::Notify`], [`atomic::AtomicUsize`]/[`atomic::AtomicBool`]/
//! [`atomic::AtomicU64`], [`thread::spawn`]) are driven by an
//! [`Explorer`] that enumerates thread interleavings: every shim
//! operation is a scheduling point, the explorer DFS-walks the tree of
//! recorded choices up to a preemption bound, then randomly samples
//! schedules beyond it (seeded, so `WSG_MODEL_SEED` replays the exact
//! same stream). Atomic `Ordering`s are honored — relaxed and acquire
//! loads may observe stale values within their vector-clock visibility
//! window — so ordering bugs that real hardware exhibits rarely are
//! enumerated deterministically.
//!
//! A failing schedule is minimized (choices greedily reverted to the
//! default until the failure disappears) and printed as a replayable
//! trace; `WSG_MODEL_SCHEDULE=<schedule> cargo test <name>` re-runs that
//! exact interleaving.
//!
//! Outside an active exploration the shims fall back to the real
//! primitives, so crates compiled with `--cfg wsg_model` still run their
//! ordinary suites; without the cfg, consumers alias the shim names to
//! the real types and the model compiles out entirely.
//!
//! Environment knobs: `WSG_MODEL_BUDGET` caps total schedules per
//! exploration (CI keeps it small), `WSG_MODEL_SEED` re-seeds the
//! sampling phase, `WSG_MODEL_SCHEDULE` replays one schedule instead of
//! exploring. Explicit builder calls override the environment.

mod clock;
mod exec;
mod rng;
mod schedule;

pub mod atomic;
pub mod sync;
pub mod thread;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::Once;

use exec::{run_one, Mode, RunResult};
use rng::{mix, SplitMix64};
pub use schedule::{ParseScheduleError, Schedule};

/// Cap on minimizer re-runs, so pathological failures cannot stall a
/// suite: minimization is best-effort, replayability is guaranteed
/// regardless.
const MINIMIZE_BUDGET: usize = 256;

/// One confirmed failing interleaving, minimized and replayable.
#[derive(Debug)]
pub struct Failure {
    /// What went wrong: a panic message (assertion), a deadlock report
    /// (lost wakeup), or a depth-limit trip (livelock).
    pub message: String,
    /// The minimized failing schedule; replaying it reproduces the
    /// failure byte-for-byte (`WSG_MODEL_SCHEDULE=<this>`).
    pub schedule: Schedule,
    /// Per-step operation trace of the minimized failing execution.
    pub trace: Vec<String>,
    /// The per-sample seed when the failure came from the sampling
    /// phase; `WSG_MODEL_SEED=<base seed>` reproduces the whole phase.
    pub sampled_seed: Option<u64>,
}

impl Failure {
    /// Human-readable report with the replay recipe.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.message);
        out.push_str(&format!("\n  replay: WSG_MODEL_SCHEDULE={}", self.schedule));
        if let Some(seed) = self.sampled_seed {
            out.push_str(&format!("\n  (found while sampling; per-sample seed {seed})"));
        }
        if !self.trace.is_empty() {
            out.push_str("\n  minimized failing trace:");
            for line in &self.trace {
                out.push_str("\n    ");
                out.push_str(line);
            }
        }
        out
    }
}

/// What one exploration did.
#[derive(Debug)]
pub struct Outcome {
    /// Executions run (DFS + sampling + the replay that produced the
    /// minimized trace counts as one more).
    pub schedules: usize,
    /// Distinct Mazurkiewicz trace classes seen — interleavings that
    /// only reorder operations on unrelated objects collapse into one.
    pub distinct_traces: usize,
    /// The DFS enumerated every schedule within the preemption bound.
    pub exhausted: bool,
    /// The first failure found, if any (exploration stops on it).
    pub failure: Option<Failure>,
}

impl Outcome {
    /// Panic with the full report if the exploration failed.
    pub fn assert_ok(&self, name: &str) {
        if let Some(failure) = &self.failure {
            panic!(
                "wsg_model: `{name}` failed after {} schedule(s)\n{}",
                self.schedules,
                failure.report()
            );
        }
    }
}

/// Builder for one exploration. Defaults: preemption bound 3, at most
/// 50 000 schedules, 64 sampled schedules beyond the bound, depth limit
/// 10 000 scheduling points. `WSG_MODEL_BUDGET` / `WSG_MODEL_SEED`
/// override the defaults; explicit builder calls override both.
pub struct Explorer {
    preemption_bound: usize,
    max_schedules: usize,
    samples: usize,
    seed: u64,
    max_depth: usize,
    dfs: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

impl Explorer {
    pub fn new() -> Self {
        let mut e = Explorer {
            preemption_bound: 3,
            max_schedules: 50_000,
            samples: 64,
            seed: 0x5753_5f47_6f73_7369, // "WS_Gossi"
            max_depth: 10_000,
            dfs: true,
        };
        if let Some(budget) = env_parse::<usize>("WSG_MODEL_BUDGET") {
            e.max_schedules = budget.max(1);
        }
        if let Some(seed) = env_parse::<u64>("WSG_MODEL_SEED") {
            e.seed = seed;
        }
        e
    }

    /// How many times a schedule may switch away from a still-runnable
    /// thread before switches are forced off. Bounds the DFS: most real
    /// concurrency bugs need very few preemptions (CHESS's observation).
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Hard cap on executions (DFS + sampling together).
    pub fn max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max.max(1);
        self
    }

    /// Randomly-sampled schedules run beyond the preemption bound after
    /// the DFS (0 disables the sampling phase).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Base seed for the sampling phase (per-sample seeds derive from
    /// it, so one number replays the whole phase).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scheduling points allowed per execution before the run is failed
    /// as a livelock.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Disable the exhaustive DFS phase (sampling only) — used by the
    /// seed-replay tests, rarely useful otherwise.
    pub fn sampling_only(mut self) -> Self {
        self.dfs = false;
        self
    }

    /// Run `body` under every schedule the configuration reaches.
    /// Stops at the first failure, minimizes it, and re-runs the
    /// minimized schedule once more to capture the trace.
    pub fn explore<F>(&self, body: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_panic_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        if let Ok(text) = std::env::var("WSG_MODEL_SCHEDULE") {
            // An empty/blank var (e.g. `WSG_MODEL_SCHEDULE= cargo test`)
            // means "no replay", matching the wsg_net::check env idiom.
            if !text.trim().is_empty() {
                let schedule: Schedule = text
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("WSG_MODEL_SCHEDULE: {e}"));
                return self.replay(&body, &schedule);
            }
        }
        let mut seen = BTreeSet::new();
        let mut schedules = 0usize;
        let mut exhausted = false;
        let mut failure: Option<Failure> = None;

        if self.dfs {
            let mut prescribed: Vec<u32> = Vec::new();
            loop {
                if schedules >= self.max_schedules {
                    break;
                }
                let run = run_one(
                    &body,
                    prescribed.clone(),
                    Mode::Dfs,
                    self.preemption_bound,
                    self.max_depth,
                    false,
                );
                schedules += 1;
                seen.insert(run.canon);
                if run.failure.is_some() {
                    failure = Some(self.finish_failure(&body, run, None, &mut schedules));
                    break;
                }
                match schedule::next_prescribed(&run.recorded) {
                    Some(next) => prescribed = next,
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
        }

        if failure.is_none() {
            for sample in 0..self.samples {
                if schedules >= self.max_schedules {
                    break;
                }
                let sample_seed = mix(self.seed, sample as u64);
                let run = run_one(
                    &body,
                    Vec::new(),
                    Mode::Sample(SplitMix64::new(sample_seed)),
                    usize::MAX,
                    self.max_depth,
                    false,
                );
                schedules += 1;
                seen.insert(run.canon);
                if run.failure.is_some() {
                    failure =
                        Some(self.finish_failure(&body, run, Some(sample_seed), &mut schedules));
                    break;
                }
            }
        }

        Outcome { schedules, distinct_traces: seen.len(), exhausted, failure }
    }

    /// [`Explorer::explore`], panicking with the report on failure.
    pub fn check<F>(&self, name: &str, body: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explore(body).assert_ok(name);
    }

    /// Run exactly one schedule (trace recording on). The preemption
    /// bound is lifted: recorded schedules already encode every switch,
    /// whatever bound found them.
    pub fn replay(&self, body: &Arc<dyn Fn() + Send + Sync>, schedule: &Schedule) -> Outcome {
        install_quiet_panic_hook();
        let run = run_one(
            body,
            schedule.0.clone(),
            Mode::Replay,
            usize::MAX,
            self.max_depth,
            true,
        );
        let failed = run.failure.is_some();
        Outcome {
            schedules: 1,
            distinct_traces: 1,
            exhausted: false,
            failure: failed.then(|| Failure {
                message: run.failure.clone().unwrap_or_default(),
                schedule: Schedule::from_recorded(&run.recorded),
                trace: run.trace,
                sampled_seed: None,
            }),
        }
    }

    /// Minimize a failing run and capture its trace with one final
    /// replay.
    fn finish_failure(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        run: RunResult,
        sampled_seed: Option<u64>,
        schedules: &mut usize,
    ) -> Failure {
        let minimized = self.minimize(body, run.recorded, schedules);
        let schedule = Schedule::from_recorded(&minimized);
        let replayed = run_one(
            body,
            schedule.0.clone(),
            Mode::Replay,
            usize::MAX,
            self.max_depth,
            true,
        );
        *schedules += 1;
        // A deterministic test must fail again on its own minimized
        // schedule; fall back to the original data if it somehow did not
        // (a nondeterministic body — the report still carries the facts).
        if replayed.failure.is_some() {
            Failure {
                message: replayed.failure.unwrap_or_default(),
                schedule: Schedule::from_recorded(&replayed.recorded),
                trace: replayed.trace,
                sampled_seed,
            }
        } else {
            Failure {
                message: format!(
                    "{} (warning: minimized schedule did not replay — is the test body \
                     deterministic?)",
                    run.failure.unwrap_or_default()
                ),
                schedule,
                trace: run.trace,
                sampled_seed,
            }
        }
    }

    /// Greedily revert choices to the default (alternative 0) while the
    /// failure persists, to a fixpoint. Each accepted simplification
    /// adopts the *recorded* choices of its own failing run, so the
    /// final schedule is self-consistent and replays byte-identically.
    fn minimize(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        mut best: Vec<schedule::Choice>,
        schedules: &mut usize,
    ) -> Vec<schedule::Choice> {
        let mut runs = 0usize;
        loop {
            let mut improved = false;
            for i in 0..best.len() {
                if best[i].index == 0 {
                    continue;
                }
                if runs >= MINIMIZE_BUDGET {
                    return best;
                }
                runs += 1;
                let mut prescribed: Vec<u32> = best.iter().map(|c| c.index).collect();
                prescribed[i] = 0;
                let run =
                    run_one(body, prescribed, Mode::Replay, usize::MAX, self.max_depth, false);
                *schedules += 1;
                if run.failure.is_some() {
                    best = run.recorded;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return best;
            }
        }
    }
}

/// Explore `body` with the default [`Explorer`] and panic with a
/// replayable report on failure.
pub fn check<F>(name: &str, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Explorer::new().check(name, body);
}

/// Run `f`, catching an *expected* panic and returning its message as
/// `Err` — for model tests that assert a structure panics deliberately
/// (e.g. the lock-order detector reporting a cycle) without failing the
/// exploration. Scheduler teardown panics are transparently re-raised,
/// so a caught `Err` is always the structure's own panic.
pub fn catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            if payload.is::<exec::ExecAbort>() {
                std::panic::resume_unwind(payload);
            }
            // `as_ref`, not `&payload`: the latter would coerce the Box
            // itself into `&dyn Any` and hide the real payload type.
            Err(exec::panic_message(payload.as_ref()))
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Modeled threads fail by panicking (assertions) and unwind by
/// panicking (aborts) — thousands of times per exploration. Silence the
/// default "thread panicked" stderr chatter for them; every real failure
/// is reported, minimized, by the explorer itself.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let modeled = std::thread::current()
                .name()
                .is_some_and(|name| name.starts_with("wsg-model-"));
            if !modeled {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn shims_fall_back_to_real_primitives_outside_exploration() {
        let m = sync::Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let a = atomic::AtomicUsize::new(5);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(a.fetch_max(3, Ordering::AcqRel), 7);
        assert_eq!(a.swap(1, Ordering::SeqCst), 7);

        let b = atomic::AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
        assert!(b.swap(false, Ordering::SeqCst));

        let n = std::sync::Arc::new(sync::Notify::new());
        let n2 = std::sync::Arc::clone(&n);
        let h = thread::spawn(move || n2.wait());
        n.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn single_threaded_body_runs_exactly_one_schedule() {
        let outcome = Explorer::new().samples(0).explore(|| {
            let a = atomic::AtomicUsize::new(0);
            a.store(3, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 3);
        });
        assert!(outcome.failure.is_none());
        assert!(outcome.exhausted);
        assert_eq!(outcome.schedules, 1);
        assert_eq!(outcome.distinct_traces, 1);
    }

    #[test]
    fn mutex_counter_is_race_free_across_interleavings() {
        let outcome = Explorer::new().samples(8).explore(|| {
            let counter = std::sync::Arc::new(sync::Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = std::sync::Arc::clone(&counter);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            *counter.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 4);
        });
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        assert!(outcome.exhausted, "small test must be exhaustively explored");
        assert!(outcome.schedules > 1, "interleavings were actually enumerated");
    }

    #[test]
    fn deadlock_is_reported_as_a_failure() {
        let outcome = Explorer::new().samples(0).explore(|| {
            let n = std::sync::Arc::new(sync::Notify::new());
            let waiter = {
                let n = std::sync::Arc::clone(&n);
                thread::spawn(move || n.wait())
            };
            // No notify ever: the waiter parks forever.
            waiter.join().unwrap();
        });
        let failure = outcome.failure.expect("must deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
        assert!(failure.message.contains("Notify"), "{}", failure.message);
    }

    #[test]
    fn release_acquire_publication_always_observed() {
        // Release store + acquire load through a join: the reader must
        // see the write — no schedule may report a stale value.
        let outcome = Explorer::new().samples(8).explore(|| {
            let flag = std::sync::Arc::new(atomic::AtomicBool::new(false));
            let data = std::sync::Arc::new(atomic::AtomicUsize::new(0));
            let (f2, d2) = (std::sync::Arc::clone(&flag), std::sync::Arc::clone(&data));
            let writer = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "acquire must publish the store");
            }
            writer.join().unwrap();
        });
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure.map(|f| f.report()));
        assert!(outcome.exhausted);
    }

    #[test]
    fn relaxed_load_can_observe_stale_value() {
        // The same shape *without* release/acquire: some schedule sees
        // flag == true but data == 0. This is the A2 lint's raison
        // d'être, demonstrated executably.
        let outcome = Explorer::new().samples(0).explore(|| {
            let flag = std::sync::Arc::new(atomic::AtomicBool::new(false));
            let data = std::sync::Arc::new(atomic::AtomicUsize::new(0));
            let (f2, d2) = (std::sync::Arc::clone(&flag), std::sync::Arc::clone(&data));
            let writer = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            writer.join().unwrap();
        });
        let failure = outcome.failure.expect("relaxed publication must be caught");
        assert!(failure.message.contains("42"), "{}", failure.message);
    }

    #[test]
    fn notify_tokens_coalesce() {
        let outcome = Explorer::new().samples(8).explore(|| {
            let n = std::sync::Arc::new(sync::Notify::new());
            let n2 = std::sync::Arc::clone(&n);
            let h = thread::spawn(move || {
                n2.notify_one();
                n2.notify_one(); // coalesces into the same token
            });
            n.wait();
            h.join().unwrap();
            // A second wait here would deadlock in the schedule where
            // both notifies preceded the first wait — that coalescing is
            // exactly the modeled semantics.
        });
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure.map(|f| f.report()));
    }
}
