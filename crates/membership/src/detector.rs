//! Failure-detector timing policy.

use wsg_net::SimDuration;

/// Timeouts governing the alive → suspect → dead → forgotten progression.
///
/// The classic heartbeat-style detector: a member whose gossip-propagated
/// heartbeat has not progressed for `suspect_after` becomes *suspect*
/// (still usable as a peer if you err towards availability), after
/// `fail_after` it is *dead* (excluded from peer selection), and after
/// `forget_after` its entry is garbage-collected.
///
/// ```
/// use wsg_membership::FailureDetectorConfig;
/// use wsg_net::SimDuration;
///
/// let fd = FailureDetectorConfig::default();
/// assert!(fd.suspect_after() < fd.fail_after());
/// assert!(fd.fail_after() < fd.forget_after());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureDetectorConfig {
    suspect_after: SimDuration,
    fail_after: SimDuration,
    forget_after: SimDuration,
}

impl Default for FailureDetectorConfig {
    /// Suspect after 2 s, fail after 6 s, forget after 60 s — matched to
    /// the default 200 ms membership gossip interval.
    fn default() -> Self {
        Self::for_interval(SimDuration::from_millis(200))
    }
}

impl FailureDetectorConfig {
    /// A policy with explicit timeouts.
    ///
    /// # Panics
    ///
    /// Panics unless `suspect_after < fail_after < forget_after`.
    pub fn new(
        suspect_after: SimDuration,
        fail_after: SimDuration,
        forget_after: SimDuration,
    ) -> Self {
        assert!(
            suspect_after < fail_after && fail_after < forget_after,
            "timeouts must be ordered suspect < fail < forget"
        );
        FailureDetectorConfig { suspect_after, fail_after, forget_after }
    }

    /// Scale all timeouts to a given gossip interval: suspect at 10
    /// intervals, fail at 30, forget at 300. Epidemic heartbeat propagation
    /// occasionally leaves second-long gaps between updates of any given
    /// entry, so the suspicion window must be a healthy multiple of the
    /// gossip interval to avoid false positives.
    pub fn for_interval(interval: SimDuration) -> Self {
        FailureDetectorConfig {
            suspect_after: interval.saturating_mul(10),
            fail_after: interval.saturating_mul(30),
            forget_after: interval.saturating_mul(300),
        }
    }

    /// Age at which a member becomes suspect.
    pub fn suspect_after(&self) -> SimDuration {
        self.suspect_after
    }

    /// Age at which a member is declared dead.
    pub fn fail_after(&self) -> SimDuration {
        self.fail_after
    }

    /// Age at which a dead member's entry is dropped.
    pub fn forget_after(&self) -> SimDuration {
        self.forget_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ordered() {
        let fd = FailureDetectorConfig::default();
        assert!(fd.suspect_after() < fd.fail_after());
        assert!(fd.fail_after() < fd.forget_after());
    }

    #[test]
    fn for_interval_scales() {
        let fd = FailureDetectorConfig::for_interval(SimDuration::from_millis(100));
        assert_eq!(fd.suspect_after(), SimDuration::from_millis(1000));
        assert_eq!(fd.fail_after(), SimDuration::from_millis(3000));
        assert_eq!(fd.forget_after(), SimDuration::from_millis(30_000));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_rejected() {
        let _ = FailureDetectorConfig::new(
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
            SimDuration::from_secs(9),
        );
    }
}
