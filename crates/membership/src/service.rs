//! The membership gossip protocol (the WS-Membership analogue).

use wsg_net::{Context, NodeId, Protocol, RngExt, SimDuration, TimerTag};

use crate::detector::FailureDetectorConfig;
use crate::view::MembershipView;

/// Timer tag for the periodic membership gossip tick.
pub const MEMBERSHIP_TICK: TimerTag = TimerTag(0x3E3B);

/// Configuration of the membership service.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    interval: SimDuration,
    fanout: usize,
    detector: FailureDetectorConfig,
}

impl Default for MembershipConfig {
    /// 200 ms gossip interval, fanout 2, detector scaled to the interval.
    fn default() -> Self {
        let interval = SimDuration::from_millis(200);
        MembershipConfig {
            interval,
            fanout: 2,
            detector: FailureDetectorConfig::for_interval(interval),
        }
    }
}

impl MembershipConfig {
    /// Builder: gossip interval.
    pub fn interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self.detector = FailureDetectorConfig::for_interval(interval);
        self
    }

    /// Builder: how many peers each tick gossips to.
    ///
    /// # Panics
    ///
    /// Panics when `fanout` is zero.
    pub fn fanout(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "membership fanout must be at least 1");
        self.fanout = fanout;
        self
    }

    /// Builder: explicit failure-detector timeouts.
    pub fn detector(mut self, detector: FailureDetectorConfig) -> Self {
        self.detector = detector;
        self
    }
}

/// Wire message: a heartbeat snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipMessage {
    /// "Here is everything I know" — (member, heartbeat) pairs.
    ViewGossip(Vec<(NodeId, u64)>),
}

/// The protocol: bump own heartbeat, gossip the view, time out silence.
///
/// Bootstrap is by static initial contact list (all nodes here, since the
/// simulator assigns dense ids); real deployments seed with a few contact
/// endpoints and learn the rest transitively — which this protocol also
/// exercises, because entries spread by gossip, not by the seed list.
#[derive(Debug, Clone)]
pub struct MembershipGossip {
    config: MembershipConfig,
    me: NodeId,
    heartbeat: u64,
    view: MembershipView,
    contacts: Vec<NodeId>,
}

impl MembershipGossip {
    /// A member that initially knows only the contact nodes
    /// `0..contact_count` (and itself).
    pub fn new(config: MembershipConfig, me: NodeId, contact_count: usize) -> Self {
        let contacts = (0..contact_count).map(NodeId).filter(|c| *c != me).collect();
        MembershipGossip { config, me, heartbeat: 0, view: MembershipView::new(), contacts }
    }

    /// A member with an explicit contact list.
    pub fn with_contacts(config: MembershipConfig, me: NodeId, contacts: Vec<NodeId>) -> Self {
        MembershipGossip { config, me, heartbeat: 0, view: MembershipView::new(), contacts }
    }

    /// The current membership view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// Peers this node currently believes are alive (excluding itself) —
    /// what a gossip engine consumer feeds into its `set_peers`.
    pub fn alive_peers(&self) -> Vec<NodeId> {
        self.view.alive().into_iter().filter(|p| *p != self.me).collect()
    }

    /// This node's own heartbeat counter.
    pub fn heartbeat(&self) -> u64 {
        self.heartbeat
    }

    fn tick(&mut self, ctx: &mut dyn Context<MembershipMessage>) {
        // 1. Progress own heartbeat and refresh our own entry.
        self.heartbeat += 1;
        self.view.record(self.me, self.heartbeat, ctx.now());
        // 2. Reassess liveness of everyone else.
        self.view.reassess(
            ctx.now(),
            self.config.detector.suspect_after(),
            self.config.detector.fail_after(),
            self.config.detector.forget_after(),
        );
        // 3. Gossip the snapshot to a few random not-dead peers (falling
        //    back to contacts while the view is still cold).
        let mut pool: Vec<NodeId> =
            self.view.not_dead().into_iter().filter(|p| *p != self.me).collect();
        if pool.is_empty() {
            pool = self.contacts.clone();
        }
        ctx.rng().shuffle(&mut pool);
        pool.truncate(self.config.fanout);
        let snapshot = self.view.snapshot();
        for peer in pool {
            ctx.send(peer, MembershipMessage::ViewGossip(snapshot.clone()));
        }
        ctx.set_timer(self.config.interval, MEMBERSHIP_TICK);
    }
}

impl Protocol for MembershipGossip {
    type Message = MembershipMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        self.view.record(self.me, self.heartbeat, ctx.now());
        self.tick(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        match msg {
            MembershipMessage::ViewGossip(entries) => {
                self.view.merge(&entries, ctx.now());
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag == MEMBERSHIP_TICK {
            self.tick(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::{LatencyModel, SimTime};

    fn build(n: usize, seed: u64) -> SimNet<MembershipGossip> {
        let mut net = SimNet::new(
            SimConfig::default().seed(seed).latency(LatencyModel::uniform_millis(1, 5)),
        );
        net.add_nodes(n, |id| MembershipGossip::new(MembershipConfig::default(), id, n));
        net.start();
        net
    }

    #[test]
    fn views_converge_without_churn() {
        let n = 24;
        let mut net = build(n, 1);
        net.run_until(SimTime::from_secs(5));
        for id in net.node_ids() {
            assert_eq!(net.node(id).view().alive_count(), n, "node {id} incomplete view");
        }
    }

    #[test]
    fn crashed_node_eventually_declared_dead_everywhere() {
        let n = 12;
        let mut net = build(n, 2);
        net.run_until(SimTime::from_secs(3));
        net.crash(NodeId(5));
        net.run_until(SimTime::from_secs(12));
        for id in net.node_ids() {
            if id == NodeId(5) {
                continue;
            }
            let alive = net.node(id).alive_peers();
            assert!(
                !alive.contains(&NodeId(5)),
                "node {id} still believes n5 alive: {alive:?}"
            );
        }
    }

    #[test]
    fn no_false_positives_in_healthy_network() {
        let n = 16;
        let mut net = build(n, 3);
        net.run_until(SimTime::from_secs(10));
        for id in net.node_ids() {
            assert_eq!(net.node(id).view().alive_count(), n, "false positive at {id}");
        }
    }

    #[test]
    fn recovered_node_rejoins() {
        let n = 10;
        let mut net = build(n, 4);
        net.run_until(SimTime::from_secs(3));
        net.crash(NodeId(2));
        net.run_until(SimTime::from_secs(12));
        assert!(!net.node(NodeId(0)).alive_peers().contains(&NodeId(2)));
        net.recover(NodeId(2));
        net.run_until(SimTime::from_secs(24));
        assert!(
            net.node(NodeId(0)).alive_peers().contains(&NodeId(2)),
            "recovered node should be re-admitted"
        );
    }

    #[test]
    fn transitive_discovery_from_sparse_contacts() {
        // Every node only knows node 0 initially; full membership must
        // still emerge transitively.
        let n = 20;
        let mut net = SimNet::new(SimConfig::default().seed(5));
        net.add_nodes(n, |id| {
            let contacts = if id == NodeId(0) { vec![] } else { vec![NodeId(0)] };
            MembershipGossip::with_contacts(MembershipConfig::default(), id, contacts)
        });
        net.start();
        net.run_until(SimTime::from_secs(10));
        for id in net.node_ids() {
            assert_eq!(net.node(id).view().alive_count(), n, "node {id} incomplete");
        }
    }

    #[test]
    fn heartbeat_progresses() {
        let mut net = build(4, 6);
        net.run_until(SimTime::from_secs(2));
        assert!(net.node(NodeId(0)).heartbeat() >= 5);
    }
}
