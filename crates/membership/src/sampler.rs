//! Peer sampling by partial-view shuffling (Cyclon-lite).
//!
//! Full membership views cost O(n) state and bandwidth per node. The peer
//! sampling service keeps only a small partial view of `view_size` entries
//! and periodically *shuffles* a random subset with a random neighbour.
//! The emergent communication graph is well connected and close to random,
//! which is exactly what gossip dissemination needs — this is the scalable
//! peer source for very large WS-Gossip deployments.

use wsg_net::{Context, NodeId, Protocol, Rng64, RngExt, SimDuration, TimerTag};

/// Timer tag for the periodic shuffle.
pub const SHUFFLE_TICK: TimerTag = TimerTag(0x5A3F);

/// Configuration of the sampler.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    view_size: usize,
    shuffle_len: usize,
    interval: SimDuration,
}

impl Default for SamplerConfig {
    /// View of 8, shuffles of 4, every 250 ms.
    fn default() -> Self {
        SamplerConfig { view_size: 8, shuffle_len: 4, interval: SimDuration::from_millis(250) }
    }
}

impl SamplerConfig {
    /// Builder with explicit sizes.
    ///
    /// # Panics
    ///
    /// Panics when `view_size == 0` or `shuffle_len == 0` or
    /// `shuffle_len > view_size`.
    pub fn new(view_size: usize, shuffle_len: usize, interval: SimDuration) -> Self {
        assert!(view_size > 0, "view size must be positive");
        assert!(shuffle_len > 0, "shuffle length must be positive");
        assert!(shuffle_len <= view_size, "shuffle length cannot exceed view size");
        SamplerConfig { view_size, shuffle_len, interval }
    }

    /// Partial view capacity.
    pub fn view_size(&self) -> usize {
        self.view_size
    }
}

/// One partial-view entry: a peer and the age of the information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ViewEntry {
    peer: NodeId,
    age: u32,
}

/// Shuffle protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerMessage {
    /// A shuffle proposal carrying a subset of the sender's view.
    ShuffleRequest(Vec<NodeId>),
    /// The symmetric reply with a subset of the receiver's view.
    ShuffleReply(Vec<NodeId>),
}

/// The peer sampling service.
///
/// ```
/// use wsg_membership::{PeerSampler, SamplerConfig};
/// use wsg_net::{sim::{SimNet, SimConfig}, NodeId, SimTime};
///
/// let n = 64;
/// let mut net = SimNet::new(SimConfig::default().seed(9));
/// net.add_nodes(n, |id| {
///     // bootstrap: everyone knows a couple of ring neighbours
///     let seeds = vec![NodeId((id.0 + 1) % n), NodeId((id.0 + 2) % n)];
///     PeerSampler::new(SamplerConfig::default(), id, seeds)
/// });
/// net.start();
/// net.run_until(SimTime::from_secs(10));
/// // Views fill up to capacity and contain no self-references.
/// for id in net.node_ids() {
///     let view = net.node(id).view();
///     assert!(view.len() >= 4);
///     assert!(!view.contains(&id));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PeerSampler {
    config: SamplerConfig,
    me: NodeId,
    view: Vec<ViewEntry>,
}

impl PeerSampler {
    /// A sampler bootstrapped from `seeds`.
    pub fn new(config: SamplerConfig, me: NodeId, seeds: Vec<NodeId>) -> Self {
        let view = seeds
            .into_iter()
            .filter(|peer| *peer != me)
            .take(config.view_size)
            .map(|peer| ViewEntry { peer, age: 0 })
            .collect();
        PeerSampler { config, me, view }
    }

    /// The current partial view (peer ids).
    pub fn view(&self) -> Vec<NodeId> {
        self.view.iter().map(|entry| entry.peer).collect()
    }

    /// Draw up to `count` random peers from the view.
    pub fn sample(&self, rng: &mut dyn Rng64, count: usize) -> Vec<NodeId> {
        let mut peers = self.view();
        rng.shuffle(&mut peers);
        peers.truncate(count);
        peers
    }

    fn insert_all(&mut self, incoming: &[NodeId], sent: &[NodeId]) {
        for &peer in incoming {
            if peer == self.me || self.view.iter().any(|entry| entry.peer == peer) {
                continue;
            }
            if self.view.len() < self.config.view_size {
                self.view.push(ViewEntry { peer, age: 0 });
                continue;
            }
            // Replace entries we just shipped out, then the oldest.
            if let Some(slot) = self.view.iter_mut().find(|entry| sent.contains(&entry.peer)) {
                *slot = ViewEntry { peer, age: 0 };
            } else if let Some(slot) = self.view.iter_mut().max_by_key(|entry| entry.age) {
                *slot = ViewEntry { peer, age: 0 };
            }
        }
    }

    fn shuffle_subset(&mut self, ctx: &mut dyn Context<SamplerMessage>) -> Option<(NodeId, Vec<NodeId>)> {
        if self.view.is_empty() {
            return None;
        }
        // Age everyone; pick the oldest entry as the shuffle partner
        // (Cyclon's way of recycling stale links).
        for entry in &mut self.view {
            entry.age += 1;
        }
        let oldest = self
            .view
            .iter()
            .enumerate()
            .max_by_key(|(_, entry)| entry.age)
            .map(|(index, _)| index)?;
        let partner = self.view.remove(oldest).peer;

        let mut subset: Vec<NodeId> = self.view.iter().map(|entry| entry.peer).collect();
        ctx.rng().shuffle(&mut subset);
        subset.truncate(self.config.shuffle_len.saturating_sub(1));
        subset.push(self.me); // always advertise ourselves
        Some((partner, subset))
    }

    fn arm(&self, ctx: &mut dyn Context<SamplerMessage>) {
        let base = self.config.interval.as_micros();
        let jitter = base / 4;
        let delay = SimDuration::from_micros(ctx.rng().gen_range(base - jitter..=base + jitter));
        ctx.set_timer(delay, SHUFFLE_TICK);
    }
}

impl Protocol for PeerSampler {
    type Message = SamplerMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        self.arm(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut dyn Context<Self::Message>) {
        match msg {
            SamplerMessage::ShuffleRequest(theirs) => {
                let mut mine: Vec<NodeId> = self.view.iter().map(|entry| entry.peer).collect();
                ctx.rng().shuffle(&mut mine);
                mine.truncate(self.config.shuffle_len);
                self.insert_all(&theirs, &mine);
                ctx.send(from, SamplerMessage::ShuffleReply(mine));
                // The requester is alive: make sure it is (back) in view.
                self.insert_all(&[from], &[]);
            }
            SamplerMessage::ShuffleReply(theirs) => {
                self.insert_all(&theirs, &[]);
                self.insert_all(&[from], &[]);
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag != SHUFFLE_TICK {
            return;
        }
        if let Some((partner, subset)) = self.shuffle_subset(ctx) {
            ctx.send(partner, SamplerMessage::ShuffleRequest(subset));
        }
        self.arm(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use wsg_net::sim::{SimConfig, SimNet};
    use wsg_net::SimTime;

    fn ring_net(n: usize, seed: u64) -> SimNet<PeerSampler> {
        let mut net = SimNet::new(SimConfig::default().seed(seed));
        net.add_nodes(n, |id| {
            let seeds = vec![NodeId((id.0 + 1) % n), NodeId((id.0 + 2) % n)];
            PeerSampler::new(SamplerConfig::default(), id, seeds)
        });
        net.start();
        net
    }

    #[test]
    fn views_fill_and_exclude_self() {
        let n = 64;
        let mut net = ring_net(n, 1);
        net.run_until(SimTime::from_secs(20));
        for id in net.node_ids() {
            let view = net.node(id).view();
            assert!(view.len() >= SamplerConfig::default().view_size() / 2, "thin view at {id}");
            assert!(!view.contains(&id), "self-reference at {id}");
            let unique: HashSet<_> = view.iter().collect();
            assert_eq!(unique.len(), view.len(), "duplicates at {id}");
        }
    }

    #[test]
    fn shuffling_diversifies_beyond_ring_seeds() {
        let n = 64;
        let mut net = ring_net(n, 2);
        net.run_until(SimTime::from_secs(20));
        // Count how many view entries are NOT the original ring neighbours.
        let mut fresh = 0usize;
        let mut total = 0usize;
        for id in net.node_ids() {
            for peer in net.node(id).view() {
                total += 1;
                let delta = (peer.0 + n - id.0) % n;
                if delta != 1 && delta != 2 {
                    fresh += 1;
                }
            }
        }
        assert!(
            fresh * 2 > total,
            "shuffling should replace most seed links: {fresh}/{total}"
        );
    }

    #[test]
    fn overlay_remains_connected() {
        let n = 48;
        let mut net = ring_net(n, 3);
        net.run_until(SimTime::from_secs(15));
        // BFS over the union of directed view edges.
        let mut adjacency = vec![Vec::new(); n];
        for id in net.node_ids() {
            adjacency[id.0] = net.node(id).view();
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            for peer in &adjacency[u] {
                if !seen[peer.0] {
                    seen[peer.0] = true;
                    queue.push_back(peer.0);
                }
            }
        }
        let reached = seen.iter().filter(|s| **s).count();
        assert_eq!(reached, n, "overlay disconnected: {reached}/{n}");
    }

    #[test]
    fn sample_draws_from_view() {
        let sampler = PeerSampler::new(
            SamplerConfig::default(),
            NodeId(0),
            vec![NodeId(1), NodeId(2), NodeId(3)],
        );
        let mut rng = wsg_net::Pcg32::new(1, 0);
        let drawn = sampler.sample(&mut rng, 2);
        assert_eq!(drawn.len(), 2);
        for peer in drawn {
            assert!(sampler.view().contains(&peer));
        }
    }

    #[test]
    #[should_panic(expected = "shuffle length cannot exceed")]
    fn invalid_config_rejected() {
        let _ = SamplerConfig::new(4, 8, SimDuration::from_millis(100));
    }

    #[test]
    fn seeds_never_include_self() {
        let sampler = PeerSampler::new(
            SamplerConfig::default(),
            NodeId(5),
            vec![NodeId(5), NodeId(6)],
        );
        assert_eq!(sampler.view(), vec![NodeId(6)]);
    }
}
