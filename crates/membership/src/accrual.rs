//! The φ accrual failure detector (Hayashibara et al., SRDS'04).
//!
//! Fixed timeouts (the [`crate::FailureDetectorConfig`] policy) must be
//! tuned to the worst-case heartbeat gap; the accrual detector instead
//! *learns* each member's inter-arrival distribution and outputs a
//! continuous suspicion level
//! `φ(t) = -log10( P(no heartbeat for t | history) )`,
//! so the same threshold adapts to fast LAN members and slow WAN members
//! alike. Applications pick a φ threshold (8 ≈ "one in 10⁸ chance this is
//! a false positive under the learned distribution").

use wsg_net::{SimDuration, SimTime};

/// Sliding-window estimator of one member's heartbeat inter-arrival
/// distribution, with the φ suspicion computation.
///
/// ```
/// use wsg_membership::PhiAccrual;
/// use wsg_net::{SimTime, SimDuration};
///
/// let mut phi = PhiAccrual::new(64);
/// let mut t = SimTime::ZERO;
/// for _ in 0..20 {
///     t = t + SimDuration::from_millis(100);
///     phi.heartbeat(t);
/// }
/// // Right after a heartbeat, suspicion is low...
/// assert!(phi.phi(t + SimDuration::from_millis(100)) < 2.0);
/// // ...after 10 missed intervals it is overwhelming.
/// assert!(phi.phi(t + SimDuration::from_millis(1000)) > 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct PhiAccrual {
    window: usize,
    intervals: Vec<f64>, // seconds, ring-buffered
    next_slot: usize,
    last_heartbeat: Option<SimTime>,
}

impl PhiAccrual {
    /// A detector remembering the last `window` inter-arrival intervals.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "need at least two samples of history");
        PhiAccrual {
            window,
            intervals: Vec::new(),
            next_slot: 0,
            last_heartbeat: None,
        }
    }

    /// Record a heartbeat arrival at `now`.
    pub fn heartbeat(&mut self, now: SimTime) {
        if let Some(last) = self.last_heartbeat {
            let interval = now.since(last).as_secs_f64();
            if self.intervals.len() < self.window {
                self.intervals.push(interval);
            } else {
                self.intervals[self.next_slot] = interval;
                self.next_slot = (self.next_slot + 1) % self.window;
            }
        }
        self.last_heartbeat = Some(now);
    }

    /// Number of learned intervals.
    pub fn samples(&self) -> usize {
        self.intervals.len()
    }

    /// Mean learned inter-arrival time.
    pub fn mean_interval(&self) -> Option<SimDuration> {
        if self.intervals.is_empty() {
            return None;
        }
        let mean = self.intervals.iter().sum::<f64>() / self.intervals.len() as f64;
        Some(SimDuration::from_secs_f64(mean))
    }

    /// The suspicion level at `now`: `-log10 P(silence this long)` under a
    /// normal model of the learned intervals. Returns 0 while there is not
    /// enough history (detector stays optimistic until it has learned).
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_heartbeat else {
            return 0.0;
        };
        if self.intervals.len() < 2 {
            return 0.0;
        }
        let elapsed = now.since(last).as_secs_f64();
        let n = self.intervals.len() as f64;
        let mean = self.intervals.iter().sum::<f64>() / n;
        let variance = self
            .intervals
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        // Floor the std-dev so a perfectly regular stream doesn't produce
        // infinite suspicion at the first microsecond of jitter.
        let sigma = variance.sqrt().max(mean / 10.0).max(1e-6);
        let z = (elapsed - mean) / sigma;
        // P(X > elapsed) for X ~ N(mean, sigma), via the complementary
        // error function approximated with Abramowitz–Stegun 7.1.26.
        let p_later = 0.5 * erfc(z / std::f64::consts::SQRT_2);
        -p_later.max(1e-300).log10()
    }

    /// Convenience: suspicion exceeds the given threshold.
    pub fn is_suspect(&self, now: SimTime, threshold: f64) -> bool {
        self.phi(now) >= threshold
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-x_abs * x_abs).exp();
    if sign_negative {
        1.0 + erf_abs
    } else {
        1.0 - erf_abs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_regular(phi: &mut PhiAccrual, period_ms: u64, count: usize) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..count {
            t += SimDuration::from_millis(period_ms);
            phi.heartbeat(t);
        }
        t
    }

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-4);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn phi_grows_with_silence() {
        let mut phi = PhiAccrual::new(32);
        let t = feed_regular(&mut phi, 100, 30);
        let shortly = phi.phi(t + SimDuration::from_millis(110));
        let soon = phi.phi(t + SimDuration::from_millis(125));
        let later = phi.phi(t + SimDuration::from_millis(400));
        assert!(shortly < soon, "{shortly} !< {soon}");
        assert!(soon < later, "{soon} !< {later}");
        // A perfectly regular stream saturates suspicion quickly once the
        // learned interval is clearly exceeded.
        assert!(later > 8.0, "{later}");
    }

    #[test]
    fn adapts_to_slow_members() {
        // A member beating every 1s should NOT be suspected after 1.2s,
        // while a 100ms member should be: same threshold, learned rates.
        let mut fast = PhiAccrual::new(32);
        let t_fast = feed_regular(&mut fast, 100, 30);
        let mut slow = PhiAccrual::new(32);
        let t_slow = feed_regular(&mut slow, 1000, 30);

        let threshold = 3.0;
        assert!(fast.is_suspect(t_fast + SimDuration::from_millis(1200), threshold));
        assert!(!slow.is_suspect(t_slow + SimDuration::from_millis(1200), threshold));
    }

    #[test]
    fn tolerates_jittery_streams() {
        // Heartbeats alternating 50ms/350ms: a fixed 200ms timeout would
        // false-positive constantly; phi stays low at 350ms silences.
        let mut phi = PhiAccrual::new(32);
        let mut t = SimTime::ZERO;
        for i in 0..40 {
            let gap = if i % 2 == 0 { 50 } else { 350 };
            t += SimDuration::from_millis(gap);
            phi.heartbeat(t);
        }
        assert!(phi.phi(t + SimDuration::from_millis(350)) < 3.0);
        assert!(phi.phi(t + SimDuration::from_secs(3)) > 8.0);
    }

    #[test]
    fn no_history_means_no_suspicion() {
        let phi = PhiAccrual::new(8);
        assert_eq!(phi.phi(SimTime::from_secs(100)), 0.0);
        let mut phi = PhiAccrual::new(8);
        phi.heartbeat(SimTime::from_secs(1));
        assert_eq!(phi.phi(SimTime::from_secs(100)), 0.0, "one beat is not a distribution");
    }

    #[test]
    fn window_slides() {
        let mut phi = PhiAccrual::new(4);
        feed_regular(&mut phi, 100, 50);
        assert_eq!(phi.samples(), 4);
        assert_eq!(phi.mean_interval().unwrap().as_millis(), 100);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn tiny_window_rejected() {
        let _ = PhiAccrual::new(1);
    }
}
