//! # wsg-membership — gossip membership and failure management
//!
//! The WS-Gossip paper delegates peer lists to a *Membership service* and
//! notes (§3) that "a distributed Coordinator is supported … as the list of
//! subscribers can be maintained in a distributed fashion as proposed by
//! WS-Membership \[Vogels & Re 2003\]". This crate is that substrate:
//!
//! * [`view::MembershipView`] — per-node table of members with heartbeat
//!   counters and liveness status, merged by taking the freshest evidence;
//! * [`detector::FailureDetectorConfig`] — heartbeat-timeout suspicion and
//!   eviction policy (alive → suspect → dead → forgotten);
//! * [`accrual::PhiAccrual`] — the adaptive φ accrual detector that learns
//!   each member's heartbeat rhythm instead of using fixed timeouts;
//! * [`service::MembershipGossip`] — the van Renesse-style protocol: each
//!   node periodically bumps its own heartbeat and gossips its view to a
//!   few random live peers;
//! * [`sampler::PeerSampler`] — a Cyclon-lite partial-view shuffle giving
//!   each node a small, continuously refreshed random peer sample, the
//!   scalable alternative to full views.
//!
//! ## Example
//!
//! ```
//! use wsg_membership::{MembershipGossip, MembershipConfig};
//! use wsg_net::{sim::{SimNet, SimConfig}, NodeId, SimTime};
//!
//! let n = 16;
//! let mut net = SimNet::new(SimConfig::default().seed(3));
//! net.add_nodes(n, |id| MembershipGossip::new(MembershipConfig::default(), id, n));
//! net.start();
//! net.run_until(SimTime::from_secs(5));
//! // Every node has discovered every other node.
//! for id in net.node_ids() {
//!     assert_eq!(net.node(id).view().alive_count(), n);
//! }
//! ```

pub mod accrual;
pub mod detector;
pub mod sampler;
pub mod service;
pub mod view;

pub use accrual::PhiAccrual;
pub use detector::FailureDetectorConfig;
pub use sampler::{PeerSampler, SamplerConfig};
pub use service::{MembershipConfig, MembershipGossip, MembershipMessage};
pub use view::{MemberStatus, MembershipView};
