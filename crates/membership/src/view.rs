//! The membership table.

use std::collections::BTreeMap;

use wsg_net::{NodeId, SimTime};

/// Liveness status assigned by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemberStatus {
    /// Fresh heartbeats are arriving.
    Alive,
    /// No fresh heartbeat for longer than the suspect timeout.
    Suspect,
    /// No fresh heartbeat for longer than the fail timeout; excluded from
    /// peer selection and will eventually be forgotten.
    Dead,
}

/// What one node believes about one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member's heartbeat counter (monotonic at the member itself).
    pub heartbeat: u64,
    /// Local time at which `heartbeat` last increased.
    pub last_progress: SimTime,
    /// Current liveness verdict.
    pub status: MemberStatus,
}

/// A node's view of the membership: member → freshest known evidence.
///
/// Views merge by keeping, per member, the entry with the highest
/// heartbeat; the merge is commutative, associative and idempotent, which
/// is what lets heartbeats spread by gossip.
///
/// The view is **clock-generic**: every mutation takes the caller's
/// `now: SimTime`, so the same code runs on the simulator's virtual
/// clock and, via a [`wsg_net::time::Clock`], on wall-clock time in the
/// live membership plane (`wsg_cluster`) — bit-identically for the same
/// sequence of readings.
///
/// ```
/// use wsg_membership::MembershipView;
/// use wsg_net::{NodeId, SimTime};
///
/// let mut view = MembershipView::new();
/// view.record(NodeId(1), 10, SimTime::from_millis(5));
/// view.record(NodeId(1), 8, SimTime::from_millis(9)); // stale, ignored
/// assert_eq!(view.heartbeat(NodeId(1)), Some(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipView {
    members: BTreeMap<NodeId, MemberInfo>,
}

impl MembershipView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record evidence that `member`'s heartbeat has reached `heartbeat`.
    /// Stale evidence (≤ current) is ignored except that it may resurrect
    /// an unknown member entry. Returns `true` when the entry progressed.
    pub fn record(&mut self, member: NodeId, heartbeat: u64, now: SimTime) -> bool {
        match self.members.get_mut(&member) {
            Some(info) => {
                if heartbeat > info.heartbeat {
                    info.heartbeat = heartbeat;
                    info.last_progress = now;
                    info.status = MemberStatus::Alive;
                    true
                } else {
                    false
                }
            }
            None => {
                self.members.insert(
                    member,
                    MemberInfo { heartbeat, last_progress: now, status: MemberStatus::Alive },
                );
                true
            }
        }
    }

    /// Re-admit a member whose heartbeat counter may have **regressed** —
    /// a process restart resets the counter to zero, which
    /// [`MembershipView::record`] would treat as stale evidence forever.
    /// The entry is replaced unconditionally (fresh heartbeat, `Alive`).
    /// Only an explicit re-introduction (a cluster `Join`) may do this;
    /// gossiped evidence must keep going through `record`/`merge` so the
    /// merge stays monotone.
    pub fn readmit(&mut self, member: NodeId, heartbeat: u64, now: SimTime) {
        self.members.insert(
            member,
            MemberInfo { heartbeat, last_progress: now, status: MemberStatus::Alive },
        );
    }

    /// Downgrade an `Alive` member to `Suspect` on out-of-band evidence
    /// (e.g. a φ accrual detector exceeding its threshold before the
    /// fixed suspect timeout does). Returns whether the status changed;
    /// `Suspect`/`Dead` entries are left as the timeouts decided.
    pub fn mark_suspect(&mut self, member: NodeId) -> bool {
        match self.members.get_mut(&member) {
            Some(info) if info.status == MemberStatus::Alive => {
                info.status = MemberStatus::Suspect;
                true
            }
            _ => false,
        }
    }

    /// Declare a member `Dead` immediately (a graceful `Leave`, or a
    /// connection refused by the member's socket). The entry remains as a
    /// tombstone until `forget_after` elapses in
    /// [`MembershipView::reassess`]; a fresh heartbeat resurrects it.
    pub fn mark_dead(&mut self, member: NodeId) -> bool {
        match self.members.get_mut(&member) {
            Some(info) if info.status != MemberStatus::Dead => {
                info.status = MemberStatus::Dead;
                true
            }
            _ => false,
        }
    }

    /// Merge another view's evidence into this one (gossip receipt).
    /// Returns how many entries progressed.
    pub fn merge(&mut self, entries: &[(NodeId, u64)], now: SimTime) -> usize {
        entries
            .iter()
            .filter(|(member, heartbeat)| self.record(*member, *heartbeat, now))
            .count()
    }

    /// The heartbeat snapshot to gossip to peers.
    pub fn snapshot(&self) -> Vec<(NodeId, u64)> {
        self.members
            .iter()
            .filter(|(_, info)| info.status != MemberStatus::Dead)
            .map(|(member, info)| (*member, info.heartbeat))
            .collect()
    }

    /// Reassess statuses given timeouts; `suspect_after`/`fail_after` are
    /// maximum ages of the last heartbeat progress, `forget_after` removes
    /// dead entries so the table cannot grow without bound.
    pub fn reassess(
        &mut self,
        now: SimTime,
        suspect_after: wsg_net::SimDuration,
        fail_after: wsg_net::SimDuration,
        forget_after: wsg_net::SimDuration,
    ) {
        self.members.retain(|_, info| now.since(info.last_progress) < forget_after);
        for info in self.members.values_mut() {
            let age = now.since(info.last_progress);
            info.status = if age >= fail_after {
                MemberStatus::Dead
            } else if age >= suspect_after {
                MemberStatus::Suspect
            } else {
                MemberStatus::Alive
            };
        }
    }

    /// Known heartbeat of a member.
    pub fn heartbeat(&self, member: NodeId) -> Option<u64> {
        self.members.get(&member).map(|info| info.heartbeat)
    }

    /// Status of a member, if known.
    pub fn status(&self, member: NodeId) -> Option<MemberStatus> {
        self.members.get(&member).map(|info| info.status)
    }

    /// Members currently considered alive.
    pub fn alive(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|(_, info)| info.status == MemberStatus::Alive)
            .map(|(member, _)| *member)
            .collect()
    }

    /// Members considered alive *or* merely suspect (useful peer pool when
    /// erring towards availability).
    pub fn not_dead(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|(_, info)| info.status != MemberStatus::Dead)
            .map(|(member, _)| *member)
            .collect()
    }

    /// Number of alive members.
    pub fn alive_count(&self) -> usize {
        self.members.values().filter(|i| i.status == MemberStatus::Alive).count()
    }

    /// `(alive, suspect, dead)` entry counts — the triple the
    /// `wsg_membership_{alive,suspect,dead}` gauges export.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for info in self.members.values() {
            match info.status {
                MemberStatus::Alive => counts.0 += 1,
                MemberStatus::Suspect => counts.1 += 1,
                MemberStatus::Dead => counts.2 += 1,
            }
        }
        counts
    }

    /// Total entries (any status).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::SimDuration;

    #[test]
    fn record_keeps_freshest() {
        let mut v = MembershipView::new();
        assert!(v.record(NodeId(1), 5, SimTime::from_millis(1)));
        assert!(!v.record(NodeId(1), 5, SimTime::from_millis(2)));
        assert!(!v.record(NodeId(1), 3, SimTime::from_millis(3)));
        assert!(v.record(NodeId(1), 6, SimTime::from_millis(4)));
        assert_eq!(v.heartbeat(NodeId(1)), Some(6));
    }

    #[test]
    fn merge_counts_progress() {
        let mut v = MembershipView::new();
        v.record(NodeId(0), 3, SimTime::ZERO);
        let progressed = v.merge(&[(NodeId(0), 2), (NodeId(1), 1), (NodeId(0), 9)], SimTime::from_millis(1));
        assert_eq!(progressed, 2); // NodeId(1) new + NodeId(0) -> 9
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = MembershipView::new();
        let entries = vec![(NodeId(0), 4), (NodeId(1), 2)];
        a.merge(&entries, SimTime::ZERO);
        let again = a.merge(&entries, SimTime::from_millis(5));
        assert_eq!(again, 0);
    }

    #[test]
    fn reassess_progression_alive_suspect_dead_forgotten() {
        let mut v = MembershipView::new();
        v.record(NodeId(7), 1, SimTime::ZERO);
        let suspect = SimDuration::from_millis(100);
        let fail = SimDuration::from_millis(300);
        let forget = SimDuration::from_millis(1000);

        v.reassess(SimTime::from_millis(50), suspect, fail, forget);
        assert_eq!(v.status(NodeId(7)), Some(MemberStatus::Alive));

        v.reassess(SimTime::from_millis(150), suspect, fail, forget);
        assert_eq!(v.status(NodeId(7)), Some(MemberStatus::Suspect));

        v.reassess(SimTime::from_millis(400), suspect, fail, forget);
        assert_eq!(v.status(NodeId(7)), Some(MemberStatus::Dead));
        assert!(v.alive().is_empty());
        assert!(v.not_dead().is_empty());

        v.reassess(SimTime::from_millis(1100), suspect, fail, forget);
        assert_eq!(v.status(NodeId(7)), None, "dead entries eventually forgotten");
    }

    #[test]
    fn fresh_heartbeat_resurrects_suspect() {
        let mut v = MembershipView::new();
        v.record(NodeId(2), 1, SimTime::ZERO);
        v.reassess(
            SimTime::from_millis(200),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            SimDuration::from_millis(2000),
        );
        assert_eq!(v.status(NodeId(2)), Some(MemberStatus::Suspect));
        v.record(NodeId(2), 2, SimTime::from_millis(210));
        assert_eq!(v.status(NodeId(2)), Some(MemberStatus::Alive));
    }

    #[test]
    fn readmit_accepts_a_regressed_heartbeat() {
        let mut v = MembershipView::new();
        v.record(NodeId(3), 500, SimTime::ZERO);
        // A restarted process starts its counter over; record() must keep
        // rejecting that as stale...
        assert!(!v.record(NodeId(3), 1, SimTime::from_millis(10)));
        assert_eq!(v.heartbeat(NodeId(3)), Some(500));
        // ...while an explicit re-introduction replaces the entry.
        v.readmit(NodeId(3), 1, SimTime::from_millis(20));
        assert_eq!(v.heartbeat(NodeId(3)), Some(1));
        assert_eq!(v.status(NodeId(3)), Some(MemberStatus::Alive));
        // Progress resumes from the fresh counter.
        assert!(v.record(NodeId(3), 2, SimTime::from_millis(30)));
    }

    #[test]
    fn mark_suspect_only_downgrades_alive() {
        let mut v = MembershipView::new();
        v.record(NodeId(1), 1, SimTime::ZERO);
        assert!(v.mark_suspect(NodeId(1)));
        assert_eq!(v.status(NodeId(1)), Some(MemberStatus::Suspect));
        assert!(!v.mark_suspect(NodeId(1)), "already suspect");
        assert!(!v.mark_suspect(NodeId(9)), "unknown member");
        v.mark_dead(NodeId(1));
        assert!(!v.mark_suspect(NodeId(1)), "dead is worse than suspect");
    }

    #[test]
    fn mark_dead_tombstones_until_fresh_evidence() {
        let mut v = MembershipView::new();
        v.record(NodeId(4), 7, SimTime::ZERO);
        assert!(v.mark_dead(NodeId(4)));
        assert!(!v.mark_dead(NodeId(4)), "already dead");
        assert!(v.alive().is_empty());
        assert!(v.snapshot().is_empty(), "dead entries are not gossiped");
        // Fresh heartbeat progress resurrects.
        assert!(v.record(NodeId(4), 8, SimTime::from_millis(5)));
        assert_eq!(v.status(NodeId(4)), Some(MemberStatus::Alive));
    }

    #[test]
    fn status_counts_cover_all_states() {
        let mut v = MembershipView::new();
        v.record(NodeId(0), 1, SimTime::ZERO);
        v.record(NodeId(1), 1, SimTime::ZERO);
        v.record(NodeId(2), 1, SimTime::ZERO);
        v.mark_suspect(NodeId(1));
        v.mark_dead(NodeId(2));
        assert_eq!(v.status_counts(), (1, 1, 1));
    }

    #[test]
    fn snapshot_excludes_dead() {
        let mut v = MembershipView::new();
        v.record(NodeId(0), 1, SimTime::ZERO);
        v.record(NodeId(1), 1, SimTime::from_millis(560));
        v.reassess(
            SimTime::from_millis(600),
            SimDuration::from_millis(20),
            SimDuration::from_millis(100),
            SimDuration::from_millis(10_000),
        );
        // NodeId(0) dead (age 600ms), NodeId(1) suspect (age 40ms >= 20, < 100)
        let snap = v.snapshot();
        assert_eq!(snap, vec![(NodeId(1), 1)]);
    }
}
