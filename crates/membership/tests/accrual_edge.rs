//! Edge cases of the φ accrual detector that the inline unit tests skirt
//! around: cold starts with no history, pathologically regular heartbeat
//! streams (zero sample variance), and the heartbeat regression a node
//! restart produces.

use wsg_membership::{MemberStatus, MembershipView, PhiAccrual};
use wsg_net::{NodeId, SimDuration, SimTime};

fn feed_regular(phi: &mut PhiAccrual, period_ms: u64, count: usize) -> SimTime {
    let mut t = SimTime::ZERO;
    for _ in 0..count {
        t += SimDuration::from_millis(period_ms);
        phi.heartbeat(t);
    }
    t
}

// ---------------------------------------------------------- cold start

#[test]
fn first_heartbeat_yields_zero_suspicion_at_any_horizon() {
    // One arrival is a point, not a distribution: the detector must stay
    // optimistic however long it then waits, instead of inventing a rate.
    let mut phi = PhiAccrual::new(16);
    phi.heartbeat(SimTime::from_millis(100));
    for silence_secs in [0u64, 1, 60, 3600, 86_400] {
        let at = SimTime::from_millis(100) + SimDuration::from_secs(silence_secs);
        assert_eq!(phi.phi(at), 0.0, "cold detector suspected after {silence_secs}s");
        assert!(!phi.is_suspect(at, 0.5));
    }
    assert_eq!(phi.samples(), 0, "no interval can exist after one beat");
    assert_eq!(phi.mean_interval(), None);
}

#[test]
fn two_heartbeats_still_insufficient_history() {
    // Two arrivals make one interval; phi() requires at least two so a
    // single lucky gap cannot define the whole distribution.
    let mut phi = PhiAccrual::new(16);
    phi.heartbeat(SimTime::from_millis(0));
    phi.heartbeat(SimTime::from_millis(100));
    assert_eq!(phi.samples(), 1);
    assert_eq!(phi.phi(SimTime::from_secs(50)), 0.0);
    // The third arrival crosses the threshold into a usable history.
    phi.heartbeat(SimTime::from_millis(200));
    assert_eq!(phi.samples(), 2);
    assert!(phi.phi(SimTime::from_secs(50)) > 8.0, "history present, silence overwhelming");
}

// ---------------------------------------------------- zero variance

#[test]
fn zero_variance_stream_produces_finite_monotone_phi() {
    // A perfectly periodic stream has sample variance exactly 0; the
    // sigma floor must keep phi finite (no division blow-up, no NaN) and
    // monotone in elapsed silence.
    let mut phi = PhiAccrual::new(32);
    let t = feed_regular(&mut phi, 100, 40);
    let mut last = -1.0f64;
    for extra_ms in [0u64, 50, 100, 120, 150, 200, 400, 1000, 10_000] {
        let value = phi.phi(t + SimDuration::from_millis(extra_ms));
        assert!(value.is_finite(), "phi must stay finite at +{extra_ms}ms, got {value}");
        assert!(value >= 0.0, "phi is a -log10 of a probability: {value}");
        assert!(
            value >= last,
            "phi must be monotone in silence: {value} < {last} at +{extra_ms}ms"
        );
        last = value;
    }
    // Right on schedule the stream is unsuspicious...
    assert!(phi.phi(t + SimDuration::from_millis(100)) < 2.0);
    // ...and a clearly missed beat saturates quickly thanks to the
    // floored (not zero) sigma.
    assert!(phi.phi(t + SimDuration::from_millis(400)) > 8.0);
}

#[test]
fn zero_interval_heartbeat_bursts_do_not_poison_the_estimator() {
    // Several heartbeats at the same instant (gossip can batch them)
    // contribute zero-length intervals; phi must remain finite and the
    // detector usable afterwards.
    let mut phi = PhiAccrual::new(8);
    let t = SimTime::from_millis(500);
    for _ in 0..5 {
        phi.heartbeat(t);
    }
    assert!(phi.samples() >= 2);
    let value = phi.phi(t + SimDuration::from_millis(1));
    assert!(value.is_finite(), "burst of coincident beats gave phi={value}");
}

// ------------------------------------------------- restart regression

#[test]
fn detector_recovers_after_a_restart_gap() {
    // A node restarts: long silence (suspicion saturates), then
    // heartbeats resume. The resumed rhythm must pull phi back below any
    // reasonable threshold, even though the giant gap entered the window.
    let mut phi = PhiAccrual::new(8);
    let t = feed_regular(&mut phi, 100, 20);
    let down = t + SimDuration::from_secs(30);
    assert!(phi.phi(down) > 8.0, "silence must saturate suspicion");

    // The node comes back and beats regularly again.
    let mut now = down;
    phi.heartbeat(now); // the 30s outlier interval enters the window here
    for _ in 0..8 {
        now += SimDuration::from_millis(100);
        phi.heartbeat(now);
    }
    // The sliding window has re-learned the 100ms rhythm (the outlier is
    // evicted after `window` further samples), so fresh silence of one
    // period is unsuspicious again.
    assert!(
        phi.phi(now + SimDuration::from_millis(100)) < 2.0,
        "detector failed to re-learn the rhythm after restart: {}",
        phi.phi(now + SimDuration::from_millis(100))
    );
    assert_eq!(phi.mean_interval().unwrap().as_millis(), 100);
}

#[test]
fn view_restart_regression_needs_readmit_not_gossip() {
    // The restarted node's heartbeat counter resets to 0. Gossiped
    // evidence (record/merge) must never un-progress the view — only the
    // explicit Join-path readmit may replace the entry.
    let mut view = MembershipView::new();
    let restarted = NodeId(6);
    view.record(restarted, 941, SimTime::ZERO);
    view.reassess(
        SimTime::from_secs(10),
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(60),
    );
    assert_eq!(view.status(restarted), Some(MemberStatus::Dead));

    // Post-restart heartbeats 1, 2, 3... all look stale against 941.
    for hb in 1..=3 {
        assert!(!view.record(restarted, hb, SimTime::from_secs(11)));
    }
    assert_eq!(view.status(restarted), Some(MemberStatus::Dead), "gossip cannot readmit");

    view.readmit(restarted, 3, SimTime::from_secs(12));
    assert_eq!(view.status(restarted), Some(MemberStatus::Alive));
    assert_eq!(view.heartbeat(restarted), Some(3));
    // From here normal gossip progression applies again.
    assert!(view.record(restarted, 4, SimTime::from_secs(13)));
}
