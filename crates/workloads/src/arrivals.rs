//! Arrival processes in virtual time.

use wsg_net::{Rng64, RngExt};

use wsg_net::{SimDuration, SimTime};

/// The stochastic model of inter-arrival times.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Fixed spacing: one event every `period`.
    Constant {
        /// Inter-arrival period.
        period: SimDuration,
    },
    /// Poisson process with the given mean rate (events/second).
    Poisson {
        /// Mean event rate per second.
        rate_per_sec: f64,
    },
    /// Quiet baseline with periodic bursts: `burst_size` events spaced
    /// `in_burst` apart, bursts separated by `between_bursts`.
    Bursty {
        /// Events per burst.
        burst_size: u32,
        /// Spacing inside a burst.
        in_burst: SimDuration,
        /// Gap between bursts.
        between_bursts: SimDuration,
    },
}

/// Iterator-style generator of event times.
///
/// ```
/// use wsg_workloads::{ArrivalProcess, Arrivals};
/// use wsg_net::{Pcg32, SimDuration};
///
/// let mut arrivals = Arrivals::new(ArrivalProcess::Constant {
///     period: SimDuration::from_millis(10),
/// });
/// let mut rng = Pcg32::new(1, 0);
/// let first = arrivals.next_arrival(&mut rng);
/// let second = arrivals.next_arrival(&mut rng);
/// assert_eq!((second - first).as_millis(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Arrivals {
    process: ArrivalProcess,
    now: SimTime,
    burst_position: u32,
}

impl Arrivals {
    /// A generator starting at time zero.
    pub fn new(process: ArrivalProcess) -> Self {
        Arrivals { process, now: SimTime::ZERO, burst_position: 0 }
    }

    /// The time of the next event (strictly increasing).
    pub fn next_arrival<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> SimTime {
        let gap = match &self.process {
            ArrivalProcess::Constant { period } => *period,
            ArrivalProcess::Poisson { rate_per_sec } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                SimDuration::from_secs_f64(-u.ln() / rate_per_sec.max(1e-9))
            }
            ArrivalProcess::Bursty { burst_size, in_burst, between_bursts } => {
                
                if self.burst_position + 1 < *burst_size {
                    self.burst_position += 1;
                    *in_burst
                } else {
                    self.burst_position = 0;
                    *between_bursts
                }
            }
        };
        // Events never coincide exactly: at least one microsecond apart.
        let gap = if gap.as_micros() == 0 { SimDuration::from_micros(1) } else { gap };
        self.now += gap;
        self.now
    }

    /// All event times up to `horizon` (inclusive).
    pub fn schedule_until<R: Rng64 + ?Sized>(
        &mut self,
        horizon: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut times = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t > horizon {
                return times;
            }
            times.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::Pcg32;

    #[test]
    fn constant_is_evenly_spaced() {
        let mut arrivals = Arrivals::new(ArrivalProcess::Constant {
            period: SimDuration::from_millis(5),
        });
        let mut rng = Pcg32::new(1, 0);
        let times = arrivals.schedule_until(SimTime::from_millis(50), &mut rng);
        assert_eq!(times.len(), 10);
        assert_eq!(times[0], SimTime::from_millis(5));
        assert_eq!(times[9], SimTime::from_millis(50));
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mut arrivals = Arrivals::new(ArrivalProcess::Poisson { rate_per_sec: 100.0 });
        let mut rng = Pcg32::new(2, 0);
        let times = arrivals.schedule_until(SimTime::from_secs(50), &mut rng);
        let rate = times.len() as f64 / 50.0;
        assert!((85.0..115.0).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 10_000.0 },
            ArrivalProcess::Bursty {
                burst_size: 5,
                in_burst: SimDuration::ZERO,
                between_bursts: SimDuration::from_millis(10),
            },
        ] {
            let mut arrivals = Arrivals::new(process);
            let mut rng = Pcg32::new(3, 0);
            let mut last = SimTime::ZERO;
            for _ in 0..1000 {
                let t = arrivals.next_arrival(&mut rng);
                assert!(t > last);
                last = t;
            }
        }
    }

    #[test]
    fn bursty_shape() {
        let mut arrivals = Arrivals::new(ArrivalProcess::Bursty {
            burst_size: 3,
            in_burst: SimDuration::from_millis(1),
            between_bursts: SimDuration::from_millis(100),
        });
        let mut rng = Pcg32::new(4, 0);
        let times: Vec<u64> = (0..6).map(|_| arrivals.next_arrival(&mut rng).as_millis()).collect();
        // burst of 3 spaced 1ms, then a 100ms gap, then the next burst
        assert_eq!(times, vec![1, 2, 102, 103, 104, 204]);
    }
}
