//! The stock-market data generator (the paper's motivating scenario).

use wsg_net::{Rng64, RngExt};

use wsg_xml::Element;

use crate::zipf::Zipf;

/// One market-data event.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// Global tick sequence number.
    pub seq: u64,
    /// Symbol name ("SYM00", …).
    pub symbol: String,
    /// Last trade price.
    pub price: f64,
    /// Trade volume.
    pub volume: u32,
}

impl Tick {
    /// Encode as the SOAP payload element used by the examples/harness.
    pub fn to_element(&self) -> Element {
        Element::new("tick")
            .with_attr("seq", self.seq.to_string())
            .with_child(Element::text_node("symbol", self.symbol.clone()))
            .with_child(Element::text_node("price", format!("{:.2}", self.price)))
            .with_child(Element::text_node("volume", self.volume.to_string()))
    }

    /// Decode from the payload element.
    pub fn from_element(element: &Element) -> Option<Tick> {
        Some(Tick {
            seq: element.attr("seq")?.parse().ok()?,
            symbol: element.child("symbol")?.text(),
            price: element.child("price")?.text().parse().ok()?,
            volume: element.child("volume")?.text().parse().ok()?,
        })
    }
}

/// A multi-symbol random-walk market: Zipf-popular symbols, geometric
/// price steps, heavy-tailed volumes.
///
/// ```
/// use wsg_workloads::StockTicker;
/// use wsg_net::Pcg32;
///
/// let mut ticker = StockTicker::new(16);
/// let mut rng = Pcg32::new(9, 0);
/// let tick = ticker.next_tick(&mut rng);
/// assert!(tick.price > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct StockTicker {
    prices: Vec<f64>,
    popularity: Zipf,
    next_seq: u64,
}

impl StockTicker {
    /// A market of `symbols` symbols, all starting near 100.0.
    ///
    /// # Panics
    ///
    /// Panics when `symbols` is zero.
    pub fn new(symbols: usize) -> Self {
        assert!(symbols > 0, "need at least one symbol");
        StockTicker {
            prices: (0..symbols).map(|i| 80.0 + 5.0 * (i % 9) as f64).collect(),
            popularity: Zipf::new(symbols, 1.1),
            next_seq: 0,
        }
    }

    /// Number of symbols.
    pub fn symbol_count(&self) -> usize {
        self.prices.len()
    }

    /// The symbol name of a rank.
    pub fn symbol_name(rank: usize) -> String {
        format!("SYM{rank:02}")
    }

    /// Generate the next tick.
    pub fn next_tick<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> Tick {
        let rank = self.popularity.sample(rng);
        // Geometric random walk, ±0.5% per tick, floored at a penny.
        let step: f64 = rng.gen_range(-0.005..0.005);
        self.prices[rank] = (self.prices[rank] * (1.0 + step)).max(0.01);
        // Heavy-tailed volume: 10^(0..3) scale.
        let magnitude: f64 = rng.gen_range(0.0..3.0);
        let volume = (10f64.powf(magnitude)).round() as u32 * 100;
        let tick = Tick {
            seq: self.next_seq,
            symbol: Self::symbol_name(rank),
            price: self.prices[rank],
            volume,
        };
        self.next_seq += 1;
        tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::Pcg32;

    #[test]
    fn ticks_have_increasing_seq() {
        let mut ticker = StockTicker::new(4);
        let mut rng = Pcg32::new(1, 0);
        let a = ticker.next_tick(&mut rng);
        let b = ticker.next_tick(&mut rng);
        assert_eq!(b.seq, a.seq + 1);
    }

    #[test]
    fn prices_stay_positive() {
        let mut ticker = StockTicker::new(2);
        let mut rng = Pcg32::new(2, 0);
        for _ in 0..10_000 {
            assert!(ticker.next_tick(&mut rng).price > 0.0);
        }
    }

    #[test]
    fn element_roundtrip() {
        let mut ticker = StockTicker::new(8);
        let mut rng = Pcg32::new(3, 0);
        let tick = ticker.next_tick(&mut rng);
        let parsed = Tick::from_element(&tick.to_element()).unwrap();
        assert_eq!(parsed.seq, tick.seq);
        assert_eq!(parsed.symbol, tick.symbol);
        assert_eq!(parsed.volume, tick.volume);
        assert!((parsed.price - tick.price).abs() < 0.01);
    }

    #[test]
    fn hot_symbols_dominate() {
        let mut ticker = StockTicker::new(20);
        let mut rng = Pcg32::new(4, 0);
        let mut counts = vec![0u32; 20];
        for _ in 0..20_000 {
            let tick = ticker.next_tick(&mut rng);
            let rank: usize = tick.symbol[3..].parse().unwrap();
            counts[rank] += 1;
        }
        assert!(counts[0] > counts[10] * 3, "zipf head should dominate: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one symbol")]
    fn zero_symbols_rejected() {
        let _ = StockTicker::new(0);
    }
}
