//! # wsg-workloads — synthetic workload generation
//!
//! The paper motivates WS-Gossip with "a stock market scenario, where
//! information flows among several nodes of the system" (§1). The authors'
//! market feeds are not available, so this crate generates the synthetic
//! equivalent used by the examples and the benchmark harness:
//!
//! * [`ticker::StockTicker`] — a random-walk multi-symbol market-data
//!   generator producing SOAP-encodable ticks;
//! * [`arrivals`] — Poisson, constant-rate and bursty arrival processes
//!   for scheduling publications in virtual time;
//! * [`zipf::Zipf`] — Zipf-distributed symbol popularity (a handful of
//!   symbols dominate the feed, as in real markets).

pub mod arrivals;
pub mod ticker;
pub mod zipf;

pub use arrivals::{ArrivalProcess, Arrivals};
pub use ticker::{StockTicker, Tick};
pub use zipf::Zipf;
