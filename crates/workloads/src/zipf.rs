//! Zipf-distributed sampling.

use wsg_net::{Rng64, RngExt};

/// A Zipf(s) sampler over ranks `0..n`: rank `k` has probability
/// proportional to `1 / (k+1)^s`. Used for symbol popularity — a few hot
/// symbols dominate the feed.
///
/// ```
/// use wsg_workloads::Zipf;
/// use wsg_net::Pcg32;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = Pcg32::new(5, 0);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    // Cumulative distribution over ranks.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be finite and >= 0");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is trivial (it never is; `len >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::Pcg32;

    #[test]
    fn probabilities_sum_to_one() {
        let zipf = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| zipf.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let zipf = Zipf::new(10, 1.0);
        for k in 1..10 {
            assert!(zipf.probability(0) > zipf.probability(k));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((zipf.probability(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let zipf = Zipf::new(5, 1.0);
        let mut rng = Pcg32::new(6, 0);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (k, count) in counts.iter().enumerate() {
            let observed = *count as f64 / n as f64;
            let expected = zipf.probability(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn samples_always_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = Pcg32::new(7, 0);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
