//! A thread-per-node runtime running the same [`Protocol`]s live.
//!
//! The simulator answers the paper's quantitative questions; this runtime
//! demonstrates that the protocol implementations are real programs, not
//! simulation artifacts: each node runs on its own OS thread, messages
//! travel over channels, and timers use wall-clock time. Loss/partition
//! injection is deliberately absent — that is the simulator's job.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use crate::protocol::{Context, NodeId, Protocol, TimerTag};
use crate::rng::{Pcg32, Rng64, SplitMix64};
use crate::time::{SimDuration, SimTime};

enum Inbox<M> {
    Message { from: NodeId, msg: M },
    Stop,
}

struct ThreadCtx<'a, M> {
    start: Instant,
    id: NodeId,
    node_count: usize,
    rng: &'a mut Pcg32,
    outbox: Vec<(NodeId, M)>,
    timer_requests: Vec<(SimDuration, TimerTag)>,
}

impl<M> Context<M> for ThreadCtx<'_, M> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
    fn self_id(&self) -> NodeId {
        self.id
    }
    fn node_count(&self) -> usize {
        self.node_count
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.timer_requests.push((delay, tag));
    }
    fn rng(&mut self) -> &mut dyn Rng64 {
        self.rng
    }
}

/// A live network of protocol nodes, one OS thread each.
///
/// ```
/// use wsg_net::threads::ThreadNet;
/// use wsg_net::{Protocol, Context, NodeId};
/// use std::time::Duration;
///
/// struct Echo { got: bool }
/// impl Protocol for Echo {
///     type Message = String;
///     fn on_message(&mut self, _f: NodeId, _m: String, _c: &mut dyn Context<String>) {
///         self.got = true;
///     }
/// }
///
/// let mut net = ThreadNet::spawn(vec![Echo { got: false }, Echo { got: false }], 42);
/// net.send_external(NodeId(0), NodeId(1), "hi".to_string());
/// let nodes = net.shutdown_after(Duration::from_millis(100));
/// assert!(nodes[1].got);
/// ```
pub struct ThreadNet<P: Protocol> {
    senders: Vec<Sender<Inbox<P::Message>>>,
    handles: Vec<thread::JoinHandle<P>>,
}

impl<P> ThreadNet<P>
where
    P: Protocol + Send + 'static,
    P::Message: Send + 'static,
{
    /// Spawn one thread per protocol instance. `seed` feeds each node's
    /// deterministic random stream (scheduling is still OS-dependent).
    pub fn spawn(protocols: Vec<P>, seed: u64) -> Self {
        let node_count = protocols.len();
        // wsg_lint: allow(wall-clock) — real-time runtime: uptime anchor for Drop-time join deadline
        let start = Instant::now();
        let mut seeder = SplitMix64::new(seed);
        #[allow(clippy::type_complexity)]
        let channels: Vec<(Sender<Inbox<P::Message>>, Receiver<Inbox<P::Message>>)> =
            (0..node_count).map(|_| channel()).collect();
        let senders: Vec<Sender<Inbox<P::Message>>> =
            channels.iter().map(|(s, _)| s.clone()).collect();

        let mut handles = Vec::with_capacity(node_count);
        for (index, (protocol, (_, rx))) in
            protocols.into_iter().zip(channels).enumerate()
        {
            let id = NodeId(index);
            let all_senders = senders.clone();
            let mut rng = Pcg32::new(seeder.next(), index as u64);
            handles.push(thread::spawn(move || {
                run_node(protocol, id, node_count, rx, all_senders, &mut rng, start)
            }));
        }
        ThreadNet { senders, handles }
    }

    /// Inject a message as if sent by `from`.
    pub fn send_external(&self, from: NodeId, to: NodeId, msg: P::Message) {
        // wsg_lint: allow(E2) — a closed inbox means the node already stopped; external sends to it drop by design
        let _ = self.senders[to.0].send(Inbox::Message { from, msg });
    }

    /// Let the network run for `duration` of wall-clock time, then stop all
    /// nodes and return their final protocol states in id order.
    pub fn shutdown_after(self, duration: Duration) -> Vec<P> {
        thread::sleep(duration);
        self.shutdown()
    }

    /// Stop all nodes immediately and return their final states.
    pub fn shutdown(self) -> Vec<P> {
        for sender in &self.senders {
            // wsg_lint: allow(E2) — a closed inbox means the node loop already exited; Stop is advisory
            let _ = sender.send(Inbox::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

fn run_node<P>(
    mut protocol: P,
    id: NodeId,
    node_count: usize,
    rx: Receiver<Inbox<P::Message>>,
    senders: Vec<Sender<Inbox<P::Message>>>,
    rng: &mut Pcg32,
    start: Instant,
) -> P
where
    P: Protocol,
{
    // Pending timers as (fire-at, tag), earliest first.
    let mut timers: Vec<(Instant, TimerTag)> = Vec::new();

    let dispatch = |protocol: &mut P,
                        timers: &mut Vec<(Instant, TimerTag)>,
                        rng: &mut Pcg32,
                        event: Option<(NodeId, P::Message)>,
                        fired: Option<TimerTag>| {
        let mut ctx = ThreadCtx {
            start,
            id,
            node_count,
            rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        };
        match (event, fired) {
            (Some((from, msg)), _) => protocol.on_message(from, msg, &mut ctx),
            (None, Some(tag)) => protocol.on_timer(tag, &mut ctx),
            (None, None) => protocol.on_start(&mut ctx),
        }
        let ThreadCtx { outbox, timer_requests, .. } = ctx;
        for (to, msg) in outbox {
            if let Some(sender) = senders.get(to.0) {
                // wsg_lint: allow(E2) — messages to stopped peers drop, mirroring the simulated network's semantics
                let _ = sender.send(Inbox::Message { from: id, msg });
            }
        }
        for (delay, tag) in timer_requests {
            // wsg_lint: allow(wall-clock) — real-time runtime: protocol timers fire on the host clock by contract
            let fire_at = Instant::now() + Duration::from_micros(delay.as_micros());
            timers.push((fire_at, tag));
            timers.sort_by_key(|(at, _)| *at);
        }
    };

    dispatch(&mut protocol, &mut timers, rng, None, None); // on_start

    loop {
        // Fire due timers.
        // wsg_lint: allow(wall-clock) — real-time runtime: timer wheel compares against the host clock
        let now = Instant::now();
        while let Some(&(fire_at, tag)) = timers.first() {
            if fire_at > now {
                break;
            }
            timers.remove(0);
            dispatch(&mut protocol, &mut timers, rng, None, Some(tag));
        }
        let timeout = timers
            .first()
            // wsg_lint: allow(wall-clock) — real-time runtime: recv timeout until the next host-clock deadline
            .map(|(at, _)| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Inbox::Message { from, msg }) => {
                dispatch(&mut protocol, &mut timers, rng, Some((from, msg)), None);
            }
            Ok(Inbox::Stop) | Err(RecvTimeoutError::Disconnected) => return protocol,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pinger {
        pings: u32,
        pongs: u32,
    }

    impl Protocol for Pinger {
        type Message = &'static str;
        fn on_message(&mut self, from: NodeId, msg: &'static str, ctx: &mut dyn Context<&'static str>) {
            match msg {
                "ping" => {
                    self.pings += 1;
                    ctx.send(from, "pong");
                }
                "pong" => self.pongs += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn message_exchange_over_threads() {
        let net = ThreadNet::spawn(
            vec![Pinger { pings: 0, pongs: 0 }, Pinger { pings: 0, pongs: 0 }],
            1,
        );
        net.send_external(NodeId(0), NodeId(1), "ping");
        let nodes = net.shutdown_after(Duration::from_millis(200));
        assert_eq!(nodes[1].pings, 1);
        assert_eq!(nodes[0].pongs, 1);
    }

    struct OneShotTimer {
        fired: bool,
    }

    impl Protocol for OneShotTimer {
        type Message = ();
        fn on_start(&mut self, ctx: &mut dyn Context<()>) {
            ctx.set_timer(SimDuration::from_millis(20), TimerTag(7));
        }
        fn on_message(&mut self, _: NodeId, _: (), _: &mut dyn Context<()>) {}
        fn on_timer(&mut self, tag: TimerTag, _: &mut dyn Context<()>) {
            assert_eq!(tag, TimerTag(7));
            self.fired = true;
        }
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let net = ThreadNet::spawn(vec![OneShotTimer { fired: false }], 2);
        let nodes = net.shutdown_after(Duration::from_millis(200));
        assert!(nodes[0].fired);
    }

    #[test]
    fn shutdown_without_traffic_is_clean() {
        let net = ThreadNet::spawn(vec![Pinger { pings: 0, pongs: 0 }], 3);
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 1);
    }
}
