//! The deterministic discrete-event simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::latency::LatencyModel;
use crate::protocol::{Context, NodeId, Protocol, TimerTag};
use crate::rng::{Pcg32, Rng64, RngExt, SplitMix64};
use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind, Tracer};

/// Renders a message into a short human-readable trace label.
pub type LabelFn<M> = Box<dyn Fn(&M) -> String>;

/// Computes the wire size of a message for bandwidth accounting.
pub type SizeFn<M> = Box<dyn Fn(&M) -> usize>;

/// Configuration for a simulation run.
///
/// ```
/// use wsg_net::{SimConfig, LatencyModel};
///
/// let config = SimConfig::default()
///     .seed(42)
///     .latency(LatencyModel::uniform_millis(1, 10))
///     .drop_probability(0.05);
/// assert_eq!(config.drop_prob(), 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    seed: u64,
    latency: LatencyModel,
    drop_probability: f64,
    duplicate_probability: f64,
    max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::default(),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            max_events: 50_000_000,
        }
    }
}

impl SimConfig {
    /// Set the master seed; every random decision in the run derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the link latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Probability that any given message is silently lost.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        self.drop_probability = p;
        self
    }

    /// Probability that any given message is delivered twice.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate probability must be in [0,1]");
        self.duplicate_probability = p;
        self
    }

    /// Safety limit on processed events (runaway-protocol backstop).
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_probability
    }

    /// The configured master seed. Node builders that keep their own
    /// deterministic RNG streams (outside the simulator's per-node RNGs)
    /// should derive them from this, so a run stays a pure function of
    /// the seed.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: MsgSlot<M>, duplicate: bool },
    Timer { node: NodeId, tag: TimerTag },
}

/// Payload slot of a queued delivery. A duplicated send shares the one
/// serialised message between its in-flight copies via `Rc` instead of
/// deep-cloning it at enqueue time; the deep clone happens only if both
/// copies actually reach a live node (the later delivery unwraps the `Rc`
/// for free, and a copy dropped at a crashed receiver never clones at all).
enum MsgSlot<M> {
    Owned(M),
    Shared(Rc<M>),
}

impl<M: Clone> MsgSlot<M> {
    fn get(&self) -> &M {
        match self {
            MsgSlot::Owned(m) => m,
            MsgSlot::Shared(rc) => rc,
        }
    }

    fn take(self) -> M {
        match self {
            MsgSlot::Owned(m) => m,
            MsgSlot::Shared(rc) => Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()),
        }
    }
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reversed so the std max-heap pops the *earliest* event; ties broken
    // by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeCtx<'a, M> {
    now: SimTime,
    id: NodeId,
    node_count: usize,
    rng: &'a mut Pcg32,
    outbox: Vec<(NodeId, M)>,
    timer_requests: Vec<(SimDuration, TimerTag)>,
}

impl<M> Context<M> for NodeCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn self_id(&self) -> NodeId {
        self.id
    }
    fn node_count(&self) -> usize {
        self.node_count
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.timer_requests.push((delay, tag));
    }
    fn rng(&mut self) -> &mut dyn Rng64 {
        self.rng
    }
}

/// A deterministic discrete-event network of [`Protocol`] nodes.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct SimNet<P: Protocol> {
    config: SimConfig,
    now: SimTime,
    queue: BinaryHeap<Event<P::Message>>,
    seq: u64,
    nodes: Vec<Option<P>>,
    node_rngs: Vec<Pcg32>,
    net_rng: Pcg32,
    seeder: SplitMix64,
    crashed: Vec<bool>,
    // Partition group per node; all equal = fully connected.
    group: Vec<u32>,
    // Extra processing delay per node (perturbation, experiment E5).
    perturbation: Vec<SimDuration>,
    stats: SimStats,
    tracer: Option<Tracer>,
    label_fn: Option<LabelFn<P::Message>>,
    size_fn: Option<SizeFn<P::Message>>,
    events_processed: u64,
}

impl<P: Protocol> std::fmt::Debug for SimNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> SimNet<P> {
    /// An empty network with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let mut seeder = SplitMix64::new(config.seed);
        let net_rng = Pcg32::new(seeder.next(), 0xFFFF);
        SimNet {
            config,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes: Vec::new(),
            node_rngs: Vec::new(),
            net_rng,
            seeder,
            crashed: Vec::new(),
            group: Vec::new(),
            perturbation: Vec::new(),
            stats: SimStats::default(),
            tracer: None,
            label_fn: None,
            size_fn: None,
            events_processed: 0,
        }
    }

    /// Add a node running `protocol`; returns its identity.
    pub fn add_node(&mut self, protocol: P) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(protocol));
        self.node_rngs
            .push(Pcg32::new(self.seeder.next(), id.0 as u64));
        self.crashed.push(false);
        self.group.push(0);
        self.perturbation.push(SimDuration::ZERO);
        self.stats.ensure_node(id);
        id
    }

    /// Add `n` nodes produced by `make` (passed each node's id).
    pub fn add_nodes(&mut self, n: usize, mut make: impl FnMut(NodeId) -> P) -> Vec<NodeId> {
        (0..n)
            .map(|_| {
                let id = NodeId(self.nodes.len());
                self.add_node(make(id))
            })
            .collect()
    }

    /// Install a trace sink receiving every network-level event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Install a message-label function used in traces.
    pub fn set_label_fn(&mut self, f: LabelFn<P::Message>) {
        self.label_fn = Some(f);
    }

    /// Install a message-size function enabling byte accounting.
    pub fn set_size_fn(&mut self, f: SizeFn<P::Message>) {
        self.size_fn = Some(f);
    }

    /// Invoke every node's [`Protocol::on_start`].
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Inject a message from outside the simulated network; it is subject
    /// to the same latency/loss model as protocol traffic.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: P::Message) {
        self.enqueue_send(from, to, msg);
    }

    /// Crash a node: it stops receiving messages and timers until
    /// [`SimNet::recover`].
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node.0] = true;
    }

    /// Recover a crashed node (its protocol state is as it was — a
    /// fail-recover model; use a fresh node for fail-stop + rejoin). The
    /// node's [`Protocol::on_recover`] hook runs so it can re-arm timers.
    pub fn recover(&mut self, node: NodeId) {
        if !self.crashed[node.0] {
            return;
        }
        self.crashed[node.0] = false;
        self.with_node(node, |n, ctx| n.on_recover(ctx));
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.0]
    }

    /// Partition the network in two: `isolated` on one side, everyone else
    /// on the other. Messages across the cut are dropped.
    pub fn isolate(&mut self, isolated: &[NodeId]) {
        for g in &mut self.group {
            *g = 0;
        }
        for node in isolated {
            self.group[node.0] = 1;
        }
    }

    /// Partition the network into arbitrary groups: `groups[i]` lists the
    /// members of group `i`; nodes not mentioned join group 0. Messages
    /// only flow within a group.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        for g in &mut self.group {
            *g = 0;
        }
        for (index, members) in groups.iter().enumerate() {
            for node in *members {
                self.group[node.0] = index as u32;
            }
        }
    }

    /// Remove any partition.
    pub fn heal(&mut self) {
        for g in &mut self.group {
            *g = 0;
        }
    }

    /// Add fixed extra processing delay to deliveries at `node` — the
    /// "perturbed process" model from the bimodal-multicast experiment.
    pub fn perturb(&mut self, node: NodeId, extra: SimDuration) {
        self.perturbation[node.0] = extra;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to a node's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within that node's own handler.
    pub fn node(&self, id: NodeId) -> &P {
        self.nodes[id.0].as_ref().expect("node is executing")
    }

    /// Mutable access to a node's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within that node's own handler.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.nodes[id.0].as_mut().expect("node is executing")
    }

    /// Run `f` against a node with a live [`Context`], applying any sends
    /// and timers it issues — the way external clients (e.g. an application
    /// publishing through its local middleware) interact with a node.
    pub fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut dyn Context<P::Message>)) {
        self.with_node(id, f);
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Counters collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Reset counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        let n = self.nodes.len();
        self.stats = SimStats::default();
        if n > 0 {
            self.stats.ensure_node(NodeId(n - 1));
        }
    }

    /// Process a single event. Returns its time, or `None` when idle.
    pub fn step(&mut self) -> Option<SimTime> {
        let event = self.queue.pop()?;
        self.events_processed += 1;
        debug_assert!(event.time >= self.now, "event time precedes now");
        self.now = event.time;
        match event.kind {
            EventKind::Deliver { from, to, msg, duplicate } => {
                self.deliver(from, to, msg, duplicate);
            }
            EventKind::Timer { node, tag } => {
                if !self.crashed[node.0] {
                    self.stats.timers_fired += 1;
                    self.trace(TraceKind::TimerFired, node, node, String::new());
                    self.with_node(node, |n, ctx| n.on_timer(tag, ctx));
                }
            }
        }
        Some(self.now)
    }

    /// Run until the queue is empty or the event limit is hit. Returns the
    /// number of events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let start = self.events_processed;
        while self.events_processed - start < self.config.max_events {
            if self.step().is_none() {
                break;
            }
        }
        self.events_processed - start
    }

    /// Run all events with `time <= deadline`; afterwards `now() ==
    /// deadline` (even when idle earlier).
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.events_processed;
        while let Some(event) = self.queue.peek() {
            if event.time > deadline {
                break;
            }
            if self.events_processed - start >= self.config.max_events {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - start
    }

    /// Whether any events remain queued.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    fn trace(&mut self, kind: TraceKind, from: NodeId, to: NodeId, label: String) {
        if let Some(tracer) = &mut self.tracer {
            tracer(&TraceEvent { time: self.now, kind, from, to, label });
        }
    }

    fn label(&self, msg: &P::Message) -> String {
        match &self.label_fn {
            Some(f) => f(msg),
            None => String::new(),
        }
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: P::Message) {
        self.stats.sent += 1;
        self.stats.sent_per_node[from.0] += 1;
        if let Some(size_fn) = &self.size_fn {
            self.stats.bytes_sent += size_fn(&msg) as u64;
        }
        let label = self.label(&msg);
        self.trace(TraceKind::Send, from, to, label.clone());

        // Partition check happens at send time (the cut drops traffic).
        if self.group[from.0] != self.group[to.0] {
            self.stats.dropped_partitioned += 1;
            self.trace(TraceKind::DropPartitioned, from, to, label);
            return;
        }
        // Random loss.
        if self.config.drop_probability > 0.0
            && self.net_rng.gen_range(0.0..1.0) < self.config.drop_probability
        {
            self.stats.dropped_loss += 1;
            self.trace(TraceKind::DropLoss, from, to, label);
            return;
        }
        let latency = self.config.latency.sample(&mut self.net_rng) + self.perturbation[to.0];
        let deliver_at = self.now + latency;
        // Duplication.
        let duplicate = self.config.duplicate_probability > 0.0
            && self.net_rng.gen_range(0.0..1.0) < self.config.duplicate_probability;
        if duplicate {
            let extra_latency =
                self.config.latency.sample(&mut self.net_rng) + self.perturbation[to.0];
            let dup_at = self.now + extra_latency;
            self.stats.duplicated += 1;
            self.trace(TraceKind::Duplicate, from, to, label);
            let shared = Rc::new(msg);
            self.push_event(
                dup_at,
                EventKind::Deliver { from, to, msg: MsgSlot::Shared(shared.clone()), duplicate: true },
            );
            self.push_event(
                deliver_at,
                EventKind::Deliver { from, to, msg: MsgSlot::Shared(shared), duplicate: false },
            );
        } else {
            self.push_event(
                deliver_at,
                EventKind::Deliver { from, to, msg: MsgSlot::Owned(msg), duplicate: false },
            );
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<P::Message>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, slot: MsgSlot<P::Message>, _duplicate: bool) {
        // Crash check happens at delivery time: a node that crashed while
        // the message was in flight never sees it.
        if self.crashed[to.0] {
            self.stats.dropped_crashed += 1;
            let label = self.label(slot.get());
            self.trace(TraceKind::DropCrashed, from, to, label);
            return;
        }
        self.stats.delivered += 1;
        self.stats.received_per_node[to.0] += 1;
        let label = self.label(slot.get());
        self.trace(TraceKind::Deliver, from, to, label);
        let msg = slot.take();
        self.with_node(to, |node, ctx| node.on_message(from, msg, ctx));
    }

    /// Run `f` with the node checked out and a context wired up, then apply
    /// the context's buffered sends and timer requests.
    fn with_node(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Message>),
    ) {
        let mut node = self.nodes[id.0].take().expect("re-entrant node execution");
        let mut ctx = NodeCtx {
            now: self.now,
            id,
            node_count: self.nodes.len(),
            rng: &mut self.node_rngs[id.0],
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        };
        f(&mut node, &mut ctx);
        let NodeCtx { outbox, timer_requests, .. } = ctx;
        self.nodes[id.0] = Some(node);
        for (to, msg) in outbox {
            self.enqueue_send(id, to, msg);
        }
        for (delay, tag) in timer_requests {
            let at = self.now + delay;
            self.push_event(at, EventKind::Timer { node: id, tag });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods a token to all peers on first receipt.
    struct Flood {
        seen: bool,
    }

    impl Protocol for Flood {
        type Message = u32;
        fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut dyn Context<u32>) {
            if self.seen {
                return;
            }
            self.seen = true;
            let me = ctx.self_id();
            for i in 0..ctx.node_count() {
                if i != me.0 {
                    ctx.send(NodeId(i), msg);
                }
            }
        }
    }

    fn flood_net(n: usize, config: SimConfig) -> (SimNet<Flood>, Vec<NodeId>) {
        let mut net = SimNet::new(config);
        let ids = net.add_nodes(n, |_| Flood { seen: false });
        (net, ids)
    }

    #[test]
    fn flood_reaches_everyone() {
        let (mut net, ids) = flood_net(10, SimConfig::default().seed(1));
        net.send_external(ids[0], ids[0], 7);
        net.run_to_quiescence();
        for id in &ids {
            assert!(net.node(*id).seen, "{id} not reached");
        }
        // 1 external + 9 sends per infected node... at least n-1 deliveries
        assert!(net.stats().delivered >= 10);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let (mut net, ids) = flood_net(20, SimConfig::default().seed(seed).drop_probability(0.05));
            net.send_external(ids[0], ids[0], 1);
            net.run_to_quiescence();
            (net.stats().clone(), net.now())
        };
        let (s1, t1) = run(33);
        let (s2, t2) = run(33);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        let (_, t3) = run(34);
        assert_ne!(t1, t3, "different seeds should produce different latency draws");
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let (mut net, ids) = flood_net(5, SimConfig::default().seed(2));
        net.crash(ids[4]);
        net.send_external(ids[0], ids[0], 1);
        net.run_to_quiescence();
        assert!(!net.node(ids[4]).seen);
        assert!(net.stats().dropped_crashed > 0);
    }

    #[test]
    fn partition_blocks_cross_traffic() {
        let (mut net, ids) = flood_net(6, SimConfig::default().seed(3));
        net.isolate(&[ids[3], ids[4], ids[5]]);
        net.send_external(ids[0], ids[0], 1);
        net.run_to_quiescence();
        assert!(net.node(ids[1]).seen && net.node(ids[2]).seen);
        assert!(!net.node(ids[3]).seen && !net.node(ids[4]).seen);
        assert!(net.stats().dropped_partitioned > 0);

        // After healing, a new token crosses.
        net.heal();
        net.node_mut(ids[0]).seen = false;
        net.node_mut(ids[1]).seen = false;
        net.node_mut(ids[2]).seen = false;
        net.send_external(ids[0], ids[0], 2);
        net.run_to_quiescence();
        assert!(net.node(ids[5]).seen);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let (mut net, ids) = flood_net(4, SimConfig::default().seed(4).drop_probability(1.0));
        net.send_external(ids[0], ids[1], 1);
        net.run_to_quiescence();
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().dropped_loss, 1);
    }

    #[test]
    fn duplication_counts() {
        let (mut net, ids) = flood_net(2, SimConfig::default().seed(5).duplicate_probability(1.0));
        net.send_external(ids[0], ids[1], 1);
        net.run_to_quiescence();
        assert!(net.stats().duplicated >= 1);
        assert!(net.stats().delivered >= 2);
    }

    #[test]
    fn virtual_time_advances_monotonically() {
        let (mut net, ids) = flood_net(10, SimConfig::default().seed(6));
        net.send_external(ids[0], ids[0], 1);
        let mut last = SimTime::ZERO;
        while let Some(t) = net.step() {
            assert!(t >= last);
            last = t;
        }
        assert!(last > SimTime::ZERO);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut net, ids) = flood_net(10, SimConfig::default().seed(7));
        net.send_external(ids[0], ids[0], 1);
        net.run_until(SimTime::from_micros(1));
        assert_eq!(net.now(), SimTime::from_micros(1));
        // With >= 1ms latency nothing can have been delivered yet.
        assert_eq!(net.stats().delivered, 0);
        assert!(net.has_pending_events());
    }

    #[test]
    fn multiway_partition_isolates_groups() {
        let (mut net, ids) = flood_net(9, SimConfig::default().seed(20));
        // Three groups of three.
        net.partition(&[&ids[0..3], &ids[3..6], &ids[6..9]]);
        net.send_external(ids[0], ids[0], 1);
        net.run_to_quiescence();
        for id in &ids[0..3] {
            assert!(net.node(*id).seen, "own group reached");
        }
        for id in &ids[3..9] {
            assert!(!net.node(*id).seen, "other groups dark");
        }
        // Seed group 2 separately: flows within but not across.
        net.send_external(ids[3], ids[3], 2);
        net.run_to_quiescence();
        assert!(net.node(ids[4]).seen && net.node(ids[5]).seen);
        assert!(!net.node(ids[6]).seen);
    }

    struct TimerBeat {
        fired: u32,
    }

    impl Protocol for TimerBeat {
        type Message = ();
        fn on_start(&mut self, ctx: &mut dyn Context<()>) {
            ctx.set_timer(SimDuration::from_millis(10), TimerTag(1));
        }
        fn on_message(&mut self, _: NodeId, _: (), _: &mut dyn Context<()>) {}
        fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<()>) {
            assert_eq!(tag, TimerTag(1));
            self.fired += 1;
            if self.fired < 3 {
                ctx.set_timer(SimDuration::from_millis(10), TimerTag(1));
            }
        }
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut net = SimNet::new(SimConfig::default().seed(8));
        let id = net.add_node(TimerBeat { fired: 0 });
        net.start();
        net.run_to_quiescence();
        assert_eq!(net.node(id).fired, 3);
        assert_eq!(net.now(), SimTime::from_millis(30));
        assert_eq!(net.stats().timers_fired, 3);
    }

    #[test]
    fn crashed_node_timers_do_not_fire() {
        let mut net = SimNet::new(SimConfig::default().seed(9));
        let id = net.add_node(TimerBeat { fired: 0 });
        net.start();
        net.crash(id);
        net.run_to_quiescence();
        assert_eq!(net.node(id).fired, 0);
    }

    #[test]
    fn perturbation_delays_delivery() {
        let config = SimConfig::default().seed(10).latency(LatencyModel::constant_millis(1));
        let mut fast = SimNet::new(config.clone());
        let f0 = fast.add_node(Flood { seen: false });
        let f1 = fast.add_node(Flood { seen: false });
        let _ = f0;
        fast.send_external(f0, f1, 1);
        fast.run_to_quiescence();
        let fast_time = fast.now();

        let mut slow = SimNet::new(config);
        let s0 = slow.add_node(Flood { seen: false });
        let s1 = slow.add_node(Flood { seen: false });
        slow.perturb(s1, SimDuration::from_millis(100));
        slow.send_external(s0, s1, 1);
        slow.run_to_quiescence();
        assert!(slow.now() > fast_time + SimDuration::from_millis(90));
    }

    #[test]
    fn tracer_sees_send_and_deliver() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let events: Rc<RefCell<Vec<TraceEvent>>> = Rc::default();
        let sink = events.clone();
        let (mut net, ids) = flood_net(2, SimConfig::default().seed(11));
        net.set_label_fn(Box::new(|m: &u32| format!("tok{m}")));
        net.set_tracer(Box::new(move |ev| sink.borrow_mut().push(ev.clone())));
        net.send_external(ids[0], ids[1], 9);
        net.run_to_quiescence();
        let evs = events.borrow();
        assert!(evs.iter().any(|e| e.kind == TraceKind::Send && e.label == "tok9"));
        assert!(evs.iter().any(|e| e.kind == TraceKind::Deliver));
    }

    #[test]
    fn byte_accounting_with_size_fn() {
        let (mut net, ids) = flood_net(2, SimConfig::default().seed(12));
        net.set_size_fn(Box::new(|_| 100));
        net.send_external(ids[0], ids[1], 1);
        net.run_to_quiescence();
        assert_eq!(net.stats().bytes_sent, net.stats().sent * 100);
    }

    #[test]
    fn max_events_backstop() {
        struct PingPong;
        impl Protocol for PingPong {
            type Message = ();
            fn on_message(&mut self, from: NodeId, _: (), ctx: &mut dyn Context<()>) {
                ctx.send(from, ()); // infinite ping-pong
            }
        }
        let mut net = SimNet::new(SimConfig::default().seed(13).max_events(1000));
        let a = net.add_node(PingPong);
        let b = net.add_node(PingPong);
        net.send_external(a, b, ());
        let processed = net.run_to_quiescence();
        assert_eq!(processed, 1000);
        assert!(net.has_pending_events());
    }
}
