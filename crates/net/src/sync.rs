//! Minimal std-based synchronisation primitives shared across the
//! workspace.
//!
//! The workspace builds with zero registry dependencies, so instead of
//! `parking_lot` this module wraps [`std::sync::Mutex`] with the same
//! ergonomic surface: `lock()` returns the guard directly. Lock poisoning
//! is deliberately not propagated — a panic while holding one of these
//! locks already aborts the affected test or simulation, and every
//! guarded structure here (delivery logs, layer state) stays consistent
//! between mutations.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
///
/// ```
/// use wsg_net::sync::Mutex;
///
/// let counter = Mutex::new(0u32);
/// *counter.lock() += 1;
/// assert_eq!(*counter.lock(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new lock guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("wsg_net::sync::Mutex poisoned")
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("wsg_net::sync::Mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("wsg_net::sync::Mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
