//! Minimal std-based synchronisation primitives shared across the
//! workspace — with a sanitizer-style lock-order deadlock detector in
//! debug builds.
//!
//! The workspace builds with zero registry dependencies, so instead of
//! `parking_lot` this module wraps [`std::sync::Mutex`] with the same
//! ergonomic surface: `lock()` returns the guard directly. Lock poisoning
//! is deliberately not propagated — a panic while holding one of these
//! locks already aborts the affected test or simulation, and every
//! guarded structure here (delivery logs, layer state, the HTTP worker
//! pool's connection queue) stays consistent between mutations.
//!
//! ## Lock-order tracking (debug builds only)
//!
//! In debug builds every [`Mutex`] carries a unique id and every
//! acquisition is recorded in a global lock-order graph: holding `A`
//! while acquiring `B` adds the edge `A → B`, stamped with both
//! acquisition sites (`#[track_caller]`). If an acquisition would create
//! a cycle — the classic two-locks-in-opposite-order deadlock — the
//! detector panics *before blocking*, printing the current acquisition
//! site, the held lock's site, and the previously observed conflicting
//! order, so the report appears deterministically even when the actual
//! interleaving would only deadlock once in a thousand runs. Acquiring a
//! lock the same thread already holds (guaranteed self-deadlock with
//! `std::sync::Mutex`) panics too.
//!
//! In release builds the tracking fields compile out entirely; the
//! compile-time assertions at the bottom of this file pin
//! `size_of::<Mutex<T>>()` to exactly `std::sync::Mutex<T>`'s, so the
//! detector is zero-cost where it matters — `cargo build --release`
//! fails if tracking ever leaks into release layout.
//!
//! ## Model checking (`--cfg wsg_model`)
//!
//! This module is the workspace's single aliasing point for the
//! `wsg_model` deterministic schedule explorer: under
//! `RUSTFLAGS="--cfg wsg_model"` the [`Mutex`] storage, the lock-order
//! graph's own lock, the [`Notify`] wake token, and the re-exported
//! atomics all switch to `wsg_model` shims, so every consumer that says
//! `wsg_net::sync::{Mutex, Notify, AtomicBool, …}` becomes explorable
//! without further changes. In normal builds the shims are absent and
//! the re-exports are the `std` types themselves.

use std::ops::{Deref, DerefMut};

// Re-exported atomics: `std`'s in normal builds, the explorer's shims
// under `--cfg wsg_model`. `Ordering` is always `std`'s enum (the shims
// take it verbatim and honor it in the model's memory system).
pub use std::sync::atomic::Ordering;
#[cfg(not(wsg_model))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(wsg_model)]
pub use wsg_model::atomic::{AtomicBool, AtomicU64, AtomicUsize};

#[cfg(wsg_model)]
pub use wsg_model::sync::Notify;

#[cfg(debug_assertions)]
mod order {
    //! The global lock-order graph and per-thread held-lock stack.

    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;

    use super::{AtomicU64, Ordering};

    type Site = &'static Location<'static>;

    /// One observed ordering: while `from` was held (acquired at
    /// `held_site`), `to` was acquired at `acq_site`.
    #[derive(Clone, Copy)]
    struct Edge {
        held_site: Site,
        acq_site: Site,
    }

    type Adjacency = BTreeMap<u64, BTreeMap<u64, Edge>>;

    /// Adjacency: from-lock → (to-lock → first observed sites). Under
    /// `--cfg wsg_model` the graph's own lock is a model mutex, so the
    /// detector's internal synchronization is itself explored.
    #[cfg(not(wsg_model))]
    static GRAPH: std::sync::Mutex<Adjacency> = std::sync::Mutex::new(BTreeMap::new());
    #[cfg(wsg_model)]
    static GRAPH: wsg_model::sync::Mutex<Adjacency> = wsg_model::sync::Mutex::new(BTreeMap::new());

    #[cfg(not(wsg_model))]
    fn graph() -> std::sync::MutexGuard<'static, Adjacency> {
        GRAPH.lock().unwrap_or_else(|e| e.into_inner())
    }
    #[cfg(wsg_model)]
    fn graph() -> wsg_model::sync::MutexGuard<'static, Adjacency> {
        GRAPH.lock()
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u64, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Debug identity of one `Mutex` instance. Ids are never reused;
    /// dropping the mutex purges its edges so the graph stays bounded
    /// by the number of *live* locks.
    #[derive(Debug)]
    pub(super) struct Track {
        pub(super) id: u64,
    }

    impl Track {
        pub(super) fn fresh() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            // wsg_lint: allow(atomic-ordering) — audited: the RMW's atomicity alone guarantees unique ids; no other data is published
            Track { id: NEXT.fetch_add(1, Ordering::Relaxed) }
        }
    }

    impl Drop for Track {
        fn drop(&mut self) {
            let mut graph = graph();
            graph.remove(&self.id);
            for targets in graph.values_mut() {
                targets.remove(&self.id);
            }
        }
    }

    /// RAII token for one held lock; popping happens on guard drop, by
    /// id, so guards may be dropped out of acquisition order.
    pub(super) struct Held {
        id: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(id, _)| id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Record the intent to acquire `id` at `site`. Panics on a
    /// same-thread re-acquisition or on a lock-order cycle; otherwise
    /// registers the ordering edge and marks the lock held.
    pub(super) fn acquire(id: u64, site: Site) -> Held {
        let fatal = HELD.with(|held| {
            let held = held.borrow();
            if let Some(&(_, prev_site)) = held.iter().find(|&&(h, _)| h == id) {
                return Some(format!(
                    "wsg_net::sync::Mutex recursive lock (guaranteed self-deadlock): \
                     Mutex#{id} acquired at {site} is already held by this thread \
                     (acquired at {prev_site})"
                ));
            }
            let &(top_id, top_site) = held.last()?;
            let mut graph = graph();
            if graph.get(&top_id).is_some_and(|t| t.contains_key(&id)) {
                return None; // ordering already known good
            }
            if let Some(path) = path_between(&graph, id, top_id) {
                let mut msg = format!(
                    "wsg_net::sync::Mutex lock-order cycle (potential deadlock): \
                     acquiring Mutex#{id} at {site} while holding Mutex#{top_id} \
                     (acquired at {top_site}); conflicting order previously observed:"
                );
                for (from, to, edge) in path {
                    msg.push_str(&format!(
                        "\n  Mutex#{to} acquired at {} while Mutex#{from} was held \
                         (acquired at {})",
                        edge.acq_site, edge.held_site
                    ));
                }
                return Some(msg);
            }
            graph
                .entry(top_id)
                .or_default()
                .insert(id, Edge { held_site: top_site, acq_site: site });
            None
        });
        // Panic outside the HELD/GRAPH borrows so unwinding re-enters
        // neither.
        if let Some(msg) = fatal {
            panic!("{msg}");
        }
        HELD.with(|held| held.borrow_mut().push((id, site)));
        Held { id }
    }

    /// A directed path `from → … → to` in the order graph, if any —
    /// the witness that `to → from` would close a cycle.
    fn path_between(
        graph: &BTreeMap<u64, BTreeMap<u64, Edge>>,
        from: u64,
        to: u64,
    ) -> Option<Vec<(u64, u64, Edge)>> {
        fn dfs(
            graph: &BTreeMap<u64, BTreeMap<u64, Edge>>,
            at: u64,
            to: u64,
            seen: &mut Vec<u64>,
            path: &mut Vec<(u64, u64, Edge)>,
        ) -> bool {
            let Some(targets) = graph.get(&at) else { return false };
            for (&next, &edge) in targets {
                if seen.contains(&next) {
                    continue;
                }
                seen.push(next);
                path.push((at, next, edge));
                if next == to || dfs(graph, next, to, seen, path) {
                    return true;
                }
                path.pop();
            }
            false
        }
        let mut path = Vec::new();
        let mut seen = vec![from];
        dfs(graph, from, to, &mut seen, &mut path).then_some(path)
    }

    /// Whether the ordering edge `a → b` is currently recorded
    /// (test support).
    #[cfg(test)]
    pub(super) fn has_edge(a: u64, b: u64) -> bool {
        graph().get(&a).is_some_and(|t| t.contains_key(&b))
    }
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
///
/// In debug builds, acquisitions feed a global lock-order graph that
/// panics deterministically on ordering cycles and same-thread
/// re-acquisition (see the module docs); in release builds this type is
/// layout- and cost-identical to [`std::sync::Mutex`].
///
/// ```
/// use wsg_net::sync::Mutex;
///
/// let counter = Mutex::new(0u32);
/// *counter.lock() += 1;
/// assert_eq!(*counter.lock(), 1);
/// ```
#[derive(Debug)]
pub struct Mutex<T> {
    #[cfg(not(wsg_model))]
    inner: std::sync::Mutex<T>,
    #[cfg(wsg_model)]
    inner: wsg_model::sync::Mutex<T>,
    #[cfg(debug_assertions)]
    track: order::Track,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// A new lock guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(not(wsg_model))]
            inner: std::sync::Mutex::new(value),
            #[cfg(wsg_model)]
            inner: wsg_model::sync::Mutex::new(value),
            #[cfg(debug_assertions)]
            track: order::Track::fresh(),
        }
    }

    /// Acquire the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock. In
    /// debug builds, also panics — *before* blocking — when this thread
    /// already holds the lock, or when the acquisition would create a
    /// lock-order cycle with an ordering observed anywhere else in the
    /// process (a potential deadlock, reported with both acquisition
    /// sites).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self.track.id, std::panic::Location::caller());
        MutexGuard {
            #[cfg(not(wsg_model))]
            inner: self.inner.lock().expect("wsg_net::sync::Mutex poisoned"),
            #[cfg(wsg_model)]
            inner: self.inner.lock(),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        #[cfg(not(wsg_model))]
        {
            self.inner.into_inner().expect("wsg_net::sync::Mutex poisoned")
        }
        #[cfg(wsg_model)]
        {
            self.inner.into_inner()
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        #[cfg(not(wsg_model))]
        {
            self.inner.get_mut().expect("wsg_net::sync::Mutex poisoned")
        }
        #[cfg(wsg_model)]
        {
            self.inner.get_mut()
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock (and, in debug
/// builds, pops the thread's held-lock stack) on drop.
pub struct MutexGuard<'a, T> {
    #[cfg(not(wsg_model))]
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(wsg_model)]
    inner: wsg_model::sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A wake token ("eventcount-lite"): [`Notify::notify_one`] deposits at
/// most one token; [`Notify::wait`] consumes it or parks until one
/// arrives. Multiple notifies before a wait coalesce into a single
/// token — exactly the semantics the batching sender's wakeup path
/// relies on (a wake is "there may be work", not a counted message).
/// Under `--cfg wsg_model` this is the explorer's shim, whose deadlock
/// detector reports a `wait` that can never be woken as a lost wakeup.
#[cfg(not(wsg_model))]
#[derive(Debug, Default)]
pub struct Notify {
    token: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

#[cfg(not(wsg_model))]
impl Notify {
    pub const fn new() -> Self {
        Notify { token: std::sync::Mutex::new(false), cv: std::sync::Condvar::new() }
    }

    /// Deposit the token (idempotent) and wake a parked waiter.
    pub fn notify_one(&self) {
        *self.token.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }

    /// Consume a token, parking until one is deposited.
    pub fn wait(&self) {
        let mut token = self.token.lock().unwrap_or_else(|e| e.into_inner());
        while !*token {
            token = self.cv.wait(token).unwrap_or_else(|e| e.into_inner());
        }
        *token = false;
    }
}

// Zero-cost guarantee: in release builds the tracking fields are gone
// and this wrapper is layout-identical to std's. Checked at compile
// time, so `cargo build --release` itself is the regression test.
// (Model builds opt out: the shim carries its object registration.)
#[cfg(all(not(debug_assertions), not(wsg_model)))]
const _: () = {
    assert!(
        std::mem::size_of::<Mutex<u64>>() == std::mem::size_of::<std::sync::Mutex<u64>>(),
        "release Mutex must not carry lock-order tracking"
    );
    assert!(
        std::mem::size_of::<MutexGuard<'static, u64>>()
            == std::mem::size_of::<std::sync::MutexGuard<'static, u64>>(),
        "release MutexGuard must not carry lock-order tracking"
    );
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn nested_consistent_order_is_fine() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
    }

    #[test]
    fn out_of_order_guard_drop_is_fine() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped before gb: stack pops by id, not LIFO
        assert_eq!(*gb, 2);
        drop(gb);
        let _ = a.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn inverted_order_panics_deterministically() {
        let a = Mutex::new('a');
        let b = Mutex::new('b');
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a → b
        }
        let _gb = b.lock();
        let _ga = a.lock(); // b → a closes the cycle: panic, not deadlock
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "recursive lock")]
    fn same_thread_reacquisition_panics() {
        let m = Mutex::new(0);
        let _first = m.lock();
        let _second = m.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_cycles_are_detected() {
        let a = Arc::new(Mutex::new(0));
        let b = Arc::new(Mutex::new(0));
        let c = Arc::new(Mutex::new(0));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a → b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b → c
        }
        let (a2, c2) = (Arc::clone(&a), Arc::clone(&c));
        let err = std::thread::spawn(move || {
            let _gc = c2.lock();
            let _ga = a2.lock(); // c → a closes a → b → c → a
        })
        .join()
        .expect_err("cycle must panic the acquiring thread");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the diagnostic string");
        assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        assert!(msg.contains("previously observed"), "missing witness path: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn dropping_a_mutex_purges_its_edges() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let (ia, ib) = (a.track.id, b.track.id);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(order::has_edge(ia, ib));
        drop(b);
        assert!(!order::has_edge(ia, ib));
    }

    #[test]
    fn notify_tokens_coalesce() {
        let n = Notify::new();
        n.notify_one();
        n.notify_one();
        n.notify_one();
        n.wait(); // consumes the single coalesced token
        // A second wait would park forever: verify the token is spent
        // without blocking by racing a fresh notify.
        n.notify_one();
        n.wait();
    }

    #[test]
    fn notify_wakes_parked_waiter() {
        let n = Arc::new(Notify::new());
        let seen = Arc::new(Mutex::new(false));
        let (n2, seen2) = (Arc::clone(&n), Arc::clone(&seen));
        let waiter = std::thread::spawn(move || {
            n2.wait();
            *seen2.lock() = true;
        });
        n.notify_one();
        waiter.join().unwrap();
        assert!(*seen.lock());
    }

    #[cfg(all(debug_assertions, not(wsg_model)))]
    #[test]
    fn debug_build_actually_tracks() {
        // The inverse of the release-mode compile-time layout check:
        // in debug the id field must be present.
        assert!(
            std::mem::size_of::<Mutex<u64>>() > std::mem::size_of::<std::sync::Mutex<u64>>()
        );
    }
}
