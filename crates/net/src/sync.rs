//! Minimal std-based synchronisation primitives shared across the
//! workspace — with a sanitizer-style lock-order deadlock detector in
//! debug builds.
//!
//! The workspace builds with zero registry dependencies, so instead of
//! `parking_lot` this module wraps [`std::sync::Mutex`] with the same
//! ergonomic surface: `lock()` returns the guard directly. Lock poisoning
//! is deliberately not propagated — a panic while holding one of these
//! locks already aborts the affected test or simulation, and every
//! guarded structure here (delivery logs, layer state, the HTTP worker
//! pool's connection queue) stays consistent between mutations.
//!
//! ## Lock-order tracking (debug builds only)
//!
//! In debug builds every [`Mutex`] carries a unique id and every
//! acquisition is recorded in a global lock-order graph: holding `A`
//! while acquiring `B` adds the edge `A → B`, stamped with both
//! acquisition sites (`#[track_caller]`). If an acquisition would create
//! a cycle — the classic two-locks-in-opposite-order deadlock — the
//! detector panics *before blocking*, printing the current acquisition
//! site, the held lock's site, and the previously observed conflicting
//! order, so the report appears deterministically even when the actual
//! interleaving would only deadlock once in a thousand runs. Acquiring a
//! lock the same thread already holds (guaranteed self-deadlock with
//! `std::sync::Mutex`) panics too.
//!
//! In release builds the tracking fields compile out entirely; the
//! compile-time assertions at the bottom of this file pin
//! `size_of::<Mutex<T>>()` to exactly `std::sync::Mutex<T>`'s, so the
//! detector is zero-cost where it matters — `cargo build --release`
//! fails if tracking ever leaks into release layout.

use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod order {
    //! The global lock-order graph and per-thread held-lock stack.

    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    type Site = &'static Location<'static>;

    /// One observed ordering: while `from` was held (acquired at
    /// `held_site`), `to` was acquired at `acq_site`.
    #[derive(Clone, Copy)]
    struct Edge {
        held_site: Site,
        acq_site: Site,
    }

    /// Adjacency: from-lock → (to-lock → first observed sites).
    static GRAPH: StdMutex<BTreeMap<u64, BTreeMap<u64, Edge>>> = StdMutex::new(BTreeMap::new());

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u64, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Debug identity of one `Mutex` instance. Ids are never reused;
    /// dropping the mutex purges its edges so the graph stays bounded
    /// by the number of *live* locks.
    #[derive(Debug)]
    pub(super) struct Track {
        pub(super) id: u64,
    }

    impl Track {
        pub(super) fn fresh() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            Track { id: NEXT.fetch_add(1, Ordering::Relaxed) }
        }
    }

    impl Drop for Track {
        fn drop(&mut self) {
            let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
            graph.remove(&self.id);
            for targets in graph.values_mut() {
                targets.remove(&self.id);
            }
        }
    }

    /// RAII token for one held lock; popping happens on guard drop, by
    /// id, so guards may be dropped out of acquisition order.
    pub(super) struct Held {
        id: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(id, _)| id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Record the intent to acquire `id` at `site`. Panics on a
    /// same-thread re-acquisition or on a lock-order cycle; otherwise
    /// registers the ordering edge and marks the lock held.
    pub(super) fn acquire(id: u64, site: Site) -> Held {
        let fatal = HELD.with(|held| {
            let held = held.borrow();
            if let Some(&(_, prev_site)) = held.iter().find(|&&(h, _)| h == id) {
                return Some(format!(
                    "wsg_net::sync::Mutex recursive lock (guaranteed self-deadlock): \
                     Mutex#{id} acquired at {site} is already held by this thread \
                     (acquired at {prev_site})"
                ));
            }
            let &(top_id, top_site) = held.last()?;
            let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
            if graph.get(&top_id).is_some_and(|t| t.contains_key(&id)) {
                return None; // ordering already known good
            }
            if let Some(path) = path_between(&graph, id, top_id) {
                let mut msg = format!(
                    "wsg_net::sync::Mutex lock-order cycle (potential deadlock): \
                     acquiring Mutex#{id} at {site} while holding Mutex#{top_id} \
                     (acquired at {top_site}); conflicting order previously observed:"
                );
                for (from, to, edge) in path {
                    msg.push_str(&format!(
                        "\n  Mutex#{to} acquired at {} while Mutex#{from} was held \
                         (acquired at {})",
                        edge.acq_site, edge.held_site
                    ));
                }
                return Some(msg);
            }
            graph
                .entry(top_id)
                .or_default()
                .insert(id, Edge { held_site: top_site, acq_site: site });
            None
        });
        // Panic outside the HELD/GRAPH borrows so unwinding re-enters
        // neither.
        if let Some(msg) = fatal {
            panic!("{msg}");
        }
        HELD.with(|held| held.borrow_mut().push((id, site)));
        Held { id }
    }

    /// A directed path `from → … → to` in the order graph, if any —
    /// the witness that `to → from` would close a cycle.
    fn path_between(
        graph: &BTreeMap<u64, BTreeMap<u64, Edge>>,
        from: u64,
        to: u64,
    ) -> Option<Vec<(u64, u64, Edge)>> {
        fn dfs(
            graph: &BTreeMap<u64, BTreeMap<u64, Edge>>,
            at: u64,
            to: u64,
            seen: &mut Vec<u64>,
            path: &mut Vec<(u64, u64, Edge)>,
        ) -> bool {
            let Some(targets) = graph.get(&at) else { return false };
            for (&next, &edge) in targets {
                if seen.contains(&next) {
                    continue;
                }
                seen.push(next);
                path.push((at, next, edge));
                if next == to || dfs(graph, next, to, seen, path) {
                    return true;
                }
                path.pop();
            }
            false
        }
        let mut path = Vec::new();
        let mut seen = vec![from];
        dfs(graph, from, to, &mut seen, &mut path).then_some(path)
    }

    /// Whether the ordering edge `a → b` is currently recorded
    /// (test support).
    #[cfg(test)]
    pub(super) fn has_edge(a: u64, b: u64) -> bool {
        GRAPH
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&a)
            .is_some_and(|t| t.contains_key(&b))
    }
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
///
/// In debug builds, acquisitions feed a global lock-order graph that
/// panics deterministically on ordering cycles and same-thread
/// re-acquisition (see the module docs); in release builds this type is
/// layout- and cost-identical to [`std::sync::Mutex`].
///
/// ```
/// use wsg_net::sync::Mutex;
///
/// let counter = Mutex::new(0u32);
/// *counter.lock() += 1;
/// assert_eq!(*counter.lock(), 1);
/// ```
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(debug_assertions)]
    track: order::Track,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// A new lock guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            #[cfg(debug_assertions)]
            track: order::Track::fresh(),
        }
    }

    /// Acquire the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock. In
    /// debug builds, also panics — *before* blocking — when this thread
    /// already holds the lock, or when the acquisition would create a
    /// lock-order cycle with an ordering observed anywhere else in the
    /// process (a potential deadlock, reported with both acquisition
    /// sites).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self.track.id, std::panic::Location::caller());
        MutexGuard {
            inner: self.inner.lock().expect("wsg_net::sync::Mutex poisoned"),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("wsg_net::sync::Mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("wsg_net::sync::Mutex poisoned")
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock (and, in debug
/// builds, pops the thread's held-lock stack) on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// Zero-cost guarantee: in release builds the tracking fields are gone
// and this wrapper is layout-identical to std's. Checked at compile
// time, so `cargo build --release` itself is the regression test.
#[cfg(not(debug_assertions))]
const _: () = {
    assert!(
        std::mem::size_of::<Mutex<u64>>() == std::mem::size_of::<std::sync::Mutex<u64>>(),
        "release Mutex must not carry lock-order tracking"
    );
    assert!(
        std::mem::size_of::<MutexGuard<'static, u64>>()
            == std::mem::size_of::<std::sync::MutexGuard<'static, u64>>(),
        "release MutexGuard must not carry lock-order tracking"
    );
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn nested_consistent_order_is_fine() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
    }

    #[test]
    fn out_of_order_guard_drop_is_fine() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped before gb: stack pops by id, not LIFO
        assert_eq!(*gb, 2);
        drop(gb);
        let _ = a.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn inverted_order_panics_deterministically() {
        let a = Mutex::new('a');
        let b = Mutex::new('b');
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a → b
        }
        let _gb = b.lock();
        let _ga = a.lock(); // b → a closes the cycle: panic, not deadlock
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "recursive lock")]
    fn same_thread_reacquisition_panics() {
        let m = Mutex::new(0);
        let _first = m.lock();
        let _second = m.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_cycles_are_detected() {
        let a = Arc::new(Mutex::new(0));
        let b = Arc::new(Mutex::new(0));
        let c = Arc::new(Mutex::new(0));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a → b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b → c
        }
        let (a2, c2) = (Arc::clone(&a), Arc::clone(&c));
        let err = std::thread::spawn(move || {
            let _gc = c2.lock();
            let _ga = a2.lock(); // c → a closes a → b → c → a
        })
        .join()
        .expect_err("cycle must panic the acquiring thread");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the diagnostic string");
        assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        assert!(msg.contains("previously observed"), "missing witness path: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn dropping_a_mutex_purges_its_edges() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let (ia, ib) = (a.track.id, b.track.id);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(order::has_edge(ia, ib));
        drop(b);
        assert!(!order::has_edge(ia, ib));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn debug_build_actually_tracks() {
        // The inverse of the release-mode compile-time layout check:
        // in debug the id field must be present.
        assert!(
            std::mem::size_of::<Mutex<u64>>() > std::mem::size_of::<std::sync::Mutex<u64>>()
        );
    }
}
