//! Scripted fault injection: a timeline of crash/recover/partition events
//! applied while the simulation runs.
//!
//! Experiments like "crash 20% of the nodes at t=1s, heal the partition at
//! t=4s, churn continuously at rate λ" become declarative: build a
//! [`FaultSchedule`], then drive the run with
//! [`FaultSchedule::run`] instead of interleaving `run_until` and
//! mutation calls by hand.

use crate::protocol::{NodeId, Protocol};
use crate::rng::{Pcg32, RngExt};
use crate::sim::SimNet;
use crate::time::{SimDuration, SimTime};

/// One scripted fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash a node at the given time.
    Crash(NodeId),
    /// Recover a crashed node.
    Recover(NodeId),
    /// Partition the listed nodes away from everyone else.
    Isolate(Vec<NodeId>),
    /// Remove any partition.
    Heal,
}

/// A time-ordered fault script.
///
/// ```
/// use wsg_net::faults::FaultSchedule;
/// use wsg_net::{NodeId, SimTime};
///
/// let schedule = FaultSchedule::new()
///     .at(SimTime::from_secs(1), wsg_net::faults::FaultEvent::Crash(NodeId(3)))
///     .at(SimTime::from_secs(2), wsg_net::faults::FaultEvent::Recover(NodeId(3)));
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    // kept sorted by time
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an event at `time` (builder style; order of calls is free).
    pub fn at(mut self, time: SimTime, event: FaultEvent) -> Self {
        let position = self.events.partition_point(|(t, _)| *t <= time);
        self.events.insert(position, (time, event));
        self
    }

    /// Generate continuous churn: every `period`, one uniformly chosen
    /// node from `pool` crashes and recovers `downtime` later, from
    /// `start` until `end`.
    pub fn churn(
        mut self,
        pool: &[NodeId],
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        downtime: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!pool.is_empty(), "churn needs a victim pool");
        let mut rng = Pcg32::new(seed, 0xC4);
        let mut t = start;
        while t < end {
            let victim = *rng.choose(pool).expect("non-empty");
            self = self
                .at(t, FaultEvent::Crash(victim))
                .at(t + downtime, FaultEvent::Recover(victim));
            t += period;
        }
        self
    }

    /// All nodes that appear in a `Crash` event (the churn victim set).
    pub fn victims(&self) -> std::collections::BTreeSet<NodeId> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::Crash(node) => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Run `net` until `horizon`, applying events at their times.
    /// Events scheduled after `horizon` are skipped.
    pub fn run<P: Protocol>(&self, net: &mut SimNet<P>, horizon: SimTime) {
        for (time, event) in &self.events {
            if *time > horizon {
                break;
            }
            net.run_until(*time);
            match event {
                FaultEvent::Crash(node) => net.crash(*node),
                FaultEvent::Recover(node) => net.recover(*node),
                FaultEvent::Isolate(nodes) => net.isolate(nodes),
                FaultEvent::Heal => net.heal(),
            }
        }
        net.run_until(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Context;
    use crate::sim::SimConfig;

    struct Flood {
        seen: bool,
    }

    impl Protocol for Flood {
        type Message = u32;
        fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut dyn Context<u32>) {
            if self.seen {
                return;
            }
            self.seen = true;
            for i in 0..ctx.node_count() {
                if i != ctx.self_id().index() {
                    ctx.send(NodeId(i), msg);
                }
            }
        }
    }

    #[test]
    fn events_apply_in_time_order_regardless_of_insertion() {
        let schedule = FaultSchedule::new()
            .at(SimTime::from_secs(2), FaultEvent::Recover(NodeId(0)))
            .at(SimTime::from_secs(1), FaultEvent::Crash(NodeId(0)));
        assert_eq!(schedule.events[0].0, SimTime::from_secs(1));
        assert_eq!(schedule.events[1].0, SimTime::from_secs(2));
    }

    #[test]
    fn scripted_crash_blocks_then_recovery_allows() {
        let mut net = SimNet::new(SimConfig::default().seed(1));
        net.add_nodes(4, |_| Flood { seen: false });
        // Crash node 3 immediately; recover it at t=1s.
        let schedule = FaultSchedule::new()
            .at(SimTime::from_micros(1), FaultEvent::Crash(NodeId(3)))
            .at(SimTime::from_secs(1), FaultEvent::Recover(NodeId(3)));
        // First flood at t~0 (before recovery), second after.
        net.send_external(NodeId(0), NodeId(0), 1);
        schedule.run(&mut net, SimTime::from_millis(500));
        assert!(!net.node(NodeId(3)).seen, "crashed through the flood");
        schedule.run(&mut net, SimTime::from_secs(2)); // applies recovery
        net.node_mut(NodeId(0)).seen = false;
        net.node_mut(NodeId(1)).seen = false;
        net.node_mut(NodeId(2)).seen = false;
        net.send_external(NodeId(0), NodeId(0), 2);
        net.run_to_quiescence();
        assert!(net.node(NodeId(3)).seen, "recovered node rejoins floods");
    }

    #[test]
    fn churn_generates_balanced_crash_recover_pairs() {
        let pool: Vec<NodeId> = (0..8).map(NodeId).collect();
        let schedule = FaultSchedule::new().churn(
            &pool,
            SimTime::from_secs(1),
            SimTime::from_secs(5),
            SimDuration::from_millis(500),
            SimDuration::from_millis(200),
            7,
        );
        let crashes = schedule
            .events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Crash(_)))
            .count();
        let recoveries = schedule
            .events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Recover(_)))
            .count();
        assert_eq!(crashes, recoveries);
        assert_eq!(crashes, 8, "4s / 500ms = 8 churn events");
    }

    #[test]
    fn horizon_cuts_off_later_events() {
        let mut net = SimNet::new(SimConfig::default().seed(2));
        net.add_nodes(2, |_| Flood { seen: false });
        let schedule = FaultSchedule::new()
            .at(SimTime::from_secs(10), FaultEvent::Crash(NodeId(1)));
        schedule.run(&mut net, SimTime::from_secs(1));
        assert!(!net.is_crashed(NodeId(1)), "event beyond horizon not applied");
        assert_eq!(net.now(), SimTime::from_secs(1));
    }
}
