//! A small in-tree property-testing harness.
//!
//! The workspace's proptest-style suites run on this module instead of an
//! external crate so builds stay hermetic. The harness keeps the three
//! features the suites actually rely on:
//!
//! * **random case generation** — a [`Gen`] built on [`SplitMix64`]
//!   supplies integers, floats, strings and sized collections, scaled by
//!   a `size` parameter;
//! * **shrink-by-halving** — on failure the runner retries the failing
//!   seed at half the size, repeatedly, and reports the smallest size
//!   that still fails;
//! * **failing-seed reporting** — every failure message includes the
//!   base seed and case index, and `WSG_PROP_SEED` / `WSG_PROP_CASES`
//!   environment variables replay or extend a run.
//!
//! ```
//! use wsg_net::check::{run, Gen};
//!
//! run("addition_commutes", 64, |g| {
//!     let a = g.u64(0..=1000);
//!     let b = g.u64(0..=1000);
//!     wsg_net::prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```

use crate::rng::{RngExt, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of random cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default size bound for generated collections/strings.
pub const DEFAULT_SIZE: u32 = 32;

/// A source of random test data for one property case.
pub struct Gen {
    rng: SplitMix64,
    size: u32,
}

impl Gen {
    /// A generator for one case, seeded deterministically.
    pub fn new(seed: u64, size: u32) -> Self {
        Gen { rng: SplitMix64::new(seed), size: size.max(1) }
    }

    /// The current size bound (shrunk on failing retries).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next()
    }

    /// Uniform `u64` in an inclusive range.
    pub fn u64(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// Uniform `u32` in an inclusive range.
    pub fn u32(&mut self, range: std::ops::RangeInclusive<u32>) -> u32 {
        self.rng.gen_range(range)
    }

    /// Uniform `usize` in an inclusive range.
    pub fn usize(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// Uniform `i64` in an inclusive range.
    pub fn i64(&mut self, range: std::ops::RangeInclusive<i64>) -> i64 {
        self.rng.gen_range(range)
    }

    /// Uniform `f64` in a half-open range.
    pub fn f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        self.rng.gen_range(range)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A collection length in `0..=max`, additionally capped by the
    /// current size (so shrinking produces smaller inputs).
    pub fn len_in(&mut self, max: usize) -> usize {
        let cap = max.min(self.size as usize);
        self.rng.gen_range(0..=cap)
    }

    /// A uniformly chosen element of `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn pick<'s, T>(&mut self, options: &'s [T]) -> &'s T {
        self.rng.choose(options).expect("pick from empty slice")
    }

    /// A string of printable ASCII, length `0..=max_len` (size-capped).
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.len_in(max_len);
        (0..len)
            .map(|_| char::from(self.rng.gen_range(0x20u32..=0x7E) as u8))
            .collect()
    }

    /// A string drawn from `alphabet`, length `0..=max_len` (size-capped).
    pub fn string_from(&mut self, alphabet: &[char], max_len: usize) -> String {
        let len = self.len_in(max_len);
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }

    /// Arbitrary bytes, length `0..=max_len` (size-capped).
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.len_in(max_len);
        (0..len).map(|_| self.rng.gen_range(0u32..=255) as u8).collect()
    }

    /// A vector built by calling `f` between 0 and `max_len` times.
    pub fn vec_of<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.len_in(max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// One property case: returns `Err(reason)` (usually via
/// [`prop_assert!`](crate::prop_assert)) when the property is violated.
pub type CaseResult = Result<(), String>;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn derive_seed(base: u64, case: u32) -> u64 {
    // Per-case streams via SplitMix64 over (base, case) — avoids
    // correlated neighbouring cases.
    SplitMix64::new(base ^ ((case as u64) << 32 | 0xA5A5)).next()
}

fn run_case(property: &dyn Fn(&mut Gen) -> CaseResult, seed: u64, size: u32) -> CaseResult {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::new(seed, size);
        property(&mut g)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run `property` over `cases` random cases and panic with a replayable
/// report on the first failure.
///
/// The base seed is derived from the property name so distinct
/// properties explore distinct streams; set `WSG_PROP_SEED` to override
/// it for replay and `WSG_PROP_CASES` to change the case count.
pub fn run(name: &str, cases: u32, property: impl Fn(&mut Gen) -> CaseResult) {
    let base_seed = env_u64("WSG_PROP_SEED").unwrap_or_else(|| {
        // FNV-1a over the name: stable across runs and platforms.
        name.bytes()
            .fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
    });
    let cases = env_u64("WSG_PROP_CASES").map(|c| c as u32).unwrap_or(cases).max(1);

    for case in 0..cases {
        let seed = derive_seed(base_seed, case);
        if let Err(first_failure) = run_case(&property, seed, DEFAULT_SIZE) {
            // Shrink by halving the size bound while the failure persists.
            let mut smallest_size = DEFAULT_SIZE;
            let mut smallest_failure = first_failure;
            let mut size = DEFAULT_SIZE / 2;
            while size >= 1 {
                match run_case(&property, seed, size) {
                    Err(failure) => {
                        smallest_size = size;
                        smallest_failure = failure;
                        if size == 1 {
                            break;
                        }
                        size /= 2;
                    }
                    Ok(()) => break,
                }
            }
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (seed {seed}, size {smallest_size}; replay with \
                 WSG_PROP_SEED={base_seed}): {smallest_failure}"
            );
        }
    }
}

/// Assert a condition inside a property, returning `Err` on failure so
/// the runner can shrink and report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Assert equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        run("always_true", 10, |g| {
            let _ = g.u64(0..=100);
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn failing_property_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("always_false", 5, |_g| -> CaseResult {
                prop_assert!(false, "intentional");
                Ok(())
            });
        }));
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload should be a String"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("always_false"), "missing name: {msg}");
        assert!(msg.contains("WSG_PROP_SEED="), "missing seed: {msg}");
        assert!(msg.contains("intentional"), "missing reason: {msg}");
    }

    #[test]
    fn shrinking_reduces_size_dependent_failures() {
        // Fails whenever the generated vec is non-empty, so shrinking
        // should report a small size (the failure persists down to 1).
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("shrinks", 8, |g| {
                let v = g.vec_of(32, |g| g.u64(0..=9));
                prop_assert!(v.len() <= 1, "len {}", v.len());
                Ok(())
            });
        }));
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => return, // all cases drew empty vecs — possible but fine
        };
        assert!(msg.contains("size"), "missing size report: {msg}");
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("panics", 3, |_g| -> CaseResult {
                panic!("boom");
            });
        }));
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("should have failed"),
        };
        assert!(msg.contains("boom"), "missing panic payload: {msg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Gen::new(7, 32);
        let mut b = Gen::new(7, 32);
        assert_eq!(a.ascii_string(16), b.ascii_string(16));
        assert_eq!(a.bytes(16), b.bytes(16));
        assert_eq!(a.u64(0..=999), b.u64(0..=999));
    }

    #[test]
    fn len_in_respects_size_cap() {
        let mut g = Gen::new(1, 4);
        for _ in 0..100 {
            assert!(g.len_in(1000) <= 4);
        }
    }
}
