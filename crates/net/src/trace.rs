//! Structured tracing of network-level events.

use crate::protocol::NodeId;
use crate::time::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to the network.
    Send,
    /// A message was delivered to its destination.
    Deliver,
    /// A message was dropped by the loss model.
    DropLoss,
    /// A message was discarded because the destination had crashed.
    DropCrashed,
    /// A message was discarded because source and destination are in
    /// different partitions.
    DropPartitioned,
    /// A message was duplicated by the network.
    Duplicate,
    /// A timer fired.
    TimerFired,
}

impl TraceKind {
    /// Fixed-width log label for this kind.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Send => "SEND",
            TraceKind::Deliver => "DELIVER",
            TraceKind::DropLoss => "DROPLOSS",
            TraceKind::DropCrashed => "DROPCRASHED",
            TraceKind::DropPartitioned => "DROPPARTITIONED",
            TraceKind::Duplicate => "DUPLICATE",
            TraceKind::TimerFired => "TIMER",
        }
    }
}

/// One trace record. `label` is produced by the run's label function (for
/// message-bearing events) so traces stay readable without making the
/// tracer generic over the message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Sending node (or the node whose timer fired).
    pub from: NodeId,
    /// Receiving node (or the node whose timer fired).
    pub to: NodeId,
    /// Human-readable message label (empty for timer events).
    pub label: String,
}

impl TraceEvent {
    /// Render as a single log line.
    pub fn to_line(&self) -> String {
        let kind = self.kind.label();
        match self.kind {
            TraceKind::TimerFired => format!("{} {kind:<10} {}", self.time, self.to),
            _ => format!(
                "{} {kind:<10} {} -> {} : {}",
                self.time, self.from, self.to, self.label
            ),
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// A sink receiving trace events; installed on the simulator with
/// [`crate::sim::SimNet::set_tracer`].
pub type Tracer = Box<dyn FnMut(&TraceEvent)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rendering() {
        let ev = TraceEvent {
            time: SimTime::from_millis(5),
            kind: TraceKind::Send,
            from: NodeId(0),
            to: NodeId(3),
            label: "Notify(seq=1)".into(),
        };
        let line = ev.to_line();
        assert!(line.contains("SEND"));
        assert!(line.contains("n0 -> n3"));
        assert!(line.contains("Notify(seq=1)"));
    }

    #[test]
    fn timer_rendering() {
        let ev = TraceEvent {
            time: SimTime::ZERO,
            kind: TraceKind::TimerFired,
            from: NodeId(2),
            to: NodeId(2),
            label: String::new(),
        };
        assert!(ev.to_line().contains("TIMER"));
        // Byte-identical to the historical rendering: "TIMER" padded to
        // ten columns plus the separator space before the node id.
        assert_eq!(ev.to_line(), "0.000000s TIMER      n2");
    }

    #[test]
    fn display_delegates_to_to_line() {
        for kind in [
            TraceKind::Send,
            TraceKind::Deliver,
            TraceKind::DropLoss,
            TraceKind::DropCrashed,
            TraceKind::DropPartitioned,
            TraceKind::Duplicate,
            TraceKind::TimerFired,
        ] {
            let ev = TraceEvent {
                time: SimTime::from_millis(7),
                kind,
                from: NodeId(1),
                to: NodeId(4),
                label: "x".into(),
            };
            assert_eq!(format!("{ev}"), ev.to_line());
            // Every label matches the uppercased Debug name except the
            // historical TIMER shorthand.
            if kind != TraceKind::TimerFired {
                assert_eq!(kind.label(), format!("{kind:?}").to_uppercase());
            }
        }
    }
}
