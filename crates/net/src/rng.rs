//! Deterministic random number generators.
//!
//! Experiments must be bit-for-bit reproducible across runs and immune to
//! upstream algorithm changes in `rand`'s default generators, so the
//! simulator uses its own small, well-known generators: [`SplitMix64`] for
//! seeding/stream-splitting and [`Pcg32`] (PCG-XSH-RR 64/32) as the
//! workhorse. Both implement [`rand::RngCore`] and therefore compose
//! with the whole `rand` API surface.

use rand::RngCore;

/// SplitMix64 — tiny, fast, and the standard tool for expanding one u64
/// seed into independent streams.
///
/// ```
/// use wsg_net::SplitMix64;
/// use rand::RngCore;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive an independent child generator (stream split).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next())
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

/// PCG-XSH-RR 64/32: small state, excellent statistical quality, and a
/// stream parameter so per-node generators are independent.
///
/// ```
/// use wsg_net::Pcg32;
/// use rand::Rng;
///
/// let mut rng = Pcg32::new(42, 0);
/// let x: f64 = rng.random_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULTIPLIER: u64 = 6364136223846793005;

    /// A generator with the given seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(Self::MULTIPLIER)
            .wrapping_add(self.inc);
    }

    /// Next 32-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl RngCore for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        self.next()
    }

    fn next_u64(&mut self) -> u64 {
        let hi = self.next() as u64;
        let lo = self.next() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next(), 6457827717110365317);
        assert_eq!(rng.next(), 3203168211198807973);
    }

    #[test]
    fn pcg_deterministic_and_stream_independent() {
        let mut a = Pcg32::new(9, 0);
        let mut b = Pcg32::new(9, 0);
        let mut c = Pcg32::new(9, 1);
        let seq_a: Vec<u32> = (0..8).map(|_| a.next()).collect();
        let seq_b: Vec<u32> = (0..8).map(|_| b.next()).collect();
        let seq_c: Vec<u32> = (0..8).map(|_| c.next()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn split_streams_differ() {
        let mut root = SplitMix64::new(5);
        let mut x = root.split();
        let mut y = root.split();
        assert_ne!(x.next(), y.next());
    }

    #[test]
    fn works_with_rand_api() {
        let mut rng = Pcg32::new(1, 7);
        let v: f64 = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
        let roll = rng.random_range(0..6);
        assert!((0..6).contains(&roll));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Pcg32::new(2, 3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_smoke() {
        // Chi-square-ish sanity check on 16 buckets.
        let mut rng = Pcg32::new(99, 4);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next() >> 28) as usize] += 1;
        }
        for &count in &buckets {
            assert!((800..1200).contains(&count), "bucket count {count} out of range");
        }
    }
}
