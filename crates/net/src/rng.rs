//! Deterministic random number generation — the project's only source of
//! randomness.
//!
//! Experiments must be bit-for-bit reproducible across runs and immune to
//! upstream algorithm changes in third-party generators, so the whole
//! workspace uses its own small, well-known generators — [`SplitMix64`]
//! for seeding/stream-splitting and [`Pcg32`] (PCG-XSH-RR 64/32) as the
//! workhorse — behind the in-tree [`Rng64`] trait. No crate in this
//! workspace links the external `rand` crate; hermetic, registry-free
//! builds are a project invariant (see README "Zero-dependency policy").
//!
//! * [`Rng64`] is the dyn-compatible core: raw `u64`/`u32` output, byte
//!   filling and unbiased bounded integers. `Context::rng()` hands
//!   protocols a `&mut dyn Rng64`.
//! * [`RngExt`] adds the generic conveniences — [`RngExt::gen_range`],
//!   [`RngExt::shuffle`], [`RngExt::choose`] — and is blanket-implemented
//!   for every `Rng64`, including `dyn Rng64`.

use std::ops::{Range, RangeInclusive};

/// The dyn-compatible random-stream interface every generator implements.
///
/// Only [`Rng64::next_u64`] is required; everything else derives from it
/// deterministically, so two implementations with identical raw output
/// produce identical derived draws.
///
/// ```
/// use wsg_net::{Rng64, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit output (upper half of the 64-bit draw by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes (little-endian 64-bit chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// An unbiased draw from `0..bound` (Lemire's widening-multiply
    /// rejection method).
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn gen_u64_below(&mut self, bound: u64) -> u64 {
        (**self).gen_u64_below(bound)
    }
}

/// A range that [`RngExt::gen_range`] can sample uniformly.
///
/// Implemented for `Range` and `RangeInclusive` over the integer types the
/// simulator uses, and for `f64` ranges (half-open `[lo, hi)` semantics).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_in<R: Rng64 + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng64 + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.gen_u64_below(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng64 + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on an empty range");
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // The range covers the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.gen_u64_below(span) as $t)
            }
        }
    )*};
}

int_sample_range! {
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i32 => u32,
    i64 => u64,
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng64 + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: Rng64 + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on an empty range");
        start + rng.gen_f64() * (end - start)
    }
}

/// Generic conveniences over any [`Rng64`], including trait objects.
///
/// ```
/// use wsg_net::{Pcg32, RngExt};
///
/// let mut rng = Pcg32::new(42, 0);
/// let x: f64 = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// let roll = rng.gen_range(0..6);
/// assert!((0..6).contains(&roll));
/// ```
pub trait RngExt: Rng64 {
    /// A uniform draw from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_in(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    fn choose<'s, T>(&mut self, slice: &'s [T]) -> Option<&'s T> {
        if slice.is_empty() {
            None
        } else {
            slice.get(self.gen_u64_below(slice.len() as u64) as usize)
        }
    }
}

impl<R: Rng64 + ?Sized> RngExt for R {}

/// SplitMix64 — tiny, fast, and the standard tool for expanding one u64
/// seed into independent streams.
///
/// ```
/// use wsg_net::{Rng64, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive an independent child generator (stream split).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next())
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// PCG-XSH-RR 64/32: small state, excellent statistical quality, and a
/// stream parameter so per-node generators are independent.
///
/// ```
/// use wsg_net::{Pcg32, RngExt};
///
/// let mut rng = Pcg32::new(42, 0);
/// let x: f64 = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULTIPLIER: u64 = 6364136223846793005;

    /// A generator with the given seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(Self::MULTIPLIER)
            .wrapping_add(self.inc);
    }

    /// Next 32-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        self.next()
    }

    fn next_u64(&mut self) -> u64 {
        let hi = self.next() as u64;
        let lo = self.next() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next(), 6457827717110365317);
        assert_eq!(rng.next(), 3203168211198807973);
    }

    #[test]
    fn pcg_deterministic_and_stream_independent() {
        let mut a = Pcg32::new(9, 0);
        let mut b = Pcg32::new(9, 0);
        let mut c = Pcg32::new(9, 1);
        let seq_a: Vec<u32> = (0..8).map(|_| a.next()).collect();
        let seq_b: Vec<u32> = (0..8).map(|_| b.next()).collect();
        let seq_c: Vec<u32> = (0..8).map(|_| c.next()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn split_streams_differ() {
        let mut root = SplitMix64::new(5);
        let mut x = root.split();
        let mut y = root.split();
        assert_ne!(x.next(), y.next());
    }

    #[test]
    fn gen_range_covers_int_and_float() {
        let mut rng = Pcg32::new(1, 7);
        let v: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
        let roll = rng.gen_range(0..6);
        assert!((0..6).contains(&roll));
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_works_through_dyn_rng64() {
        let mut concrete = Pcg32::new(3, 3);
        let rng: &mut dyn Rng64 = &mut concrete;
        let x = rng.gen_range(0u64..=9);
        assert!(x <= 9);
        let f: f64 = rng.gen_range(0.0..2.0);
        assert!((0.0..2.0).contains(&f));
    }

    #[test]
    fn gen_u64_below_is_unbiased_enough() {
        // Modulo bias would over-represent small values for bounds near
        // 2^63; Lemire rejection keeps buckets level.
        let mut rng = Pcg32::new(11, 0);
        let bound = 3u64;
        let mut buckets = [0u32; 3];
        for _ in 0..30_000 {
            buckets[rng.gen_u64_below(bound) as usize] += 1;
        }
        for &count in &buckets {
            assert!((9_000..11_000).contains(&count), "bucket {count} out of range");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(4, 0);
        let mut values: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // With 50 elements an identity shuffle is astronomically unlikely.
        assert_ne!(values, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_returns_member_or_none() {
        let mut rng = Pcg32::new(5, 0);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let pool = [10, 20, 30];
        for _ in 0..100 {
            assert!(pool.contains(rng.choose(&pool).unwrap()));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Pcg32::new(2, 3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Pcg32::new(8, 0);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "observed {hits}/10000");
    }

    #[test]
    fn uniformity_smoke() {
        // Chi-square-ish sanity check on 16 buckets.
        let mut rng = Pcg32::new(99, 4);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next() >> 28) as usize] += 1;
        }
        for &count in &buckets {
            assert!((800..1200).contains(&count), "bucket count {count} out of range");
        }
    }
}
