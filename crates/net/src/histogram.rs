//! A small log-bucketed histogram for latency statistics.

/// Histogram over `u64` values (microseconds, counts, …) with
/// power-of-two buckets — O(1) record, at most √2× relative quantile
/// error (quantiles report the bucket's geometric midpoint), fixed
/// 64-slot footprint. Enough for the harness's percentile tables.
///
/// ```
/// use wsg_net::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 5);
/// assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile: the geometric midpoint of the matched
    /// bucket, clamped to observed min/max. The midpoint halves the
    /// log-scale error of reporting a bucket bound — worst case √2×
    /// relative error instead of 2×. `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Bucket 0 holds exactly {0}; bucket b >= 1 holds
                // [2^(b-1), 2^b - 1] (the last spans to u64::MAX).
                let mid = if bucket == 0 {
                    0u64
                } else {
                    let lo = 1u64 << (bucket - 1);
                    let hi = if bucket >= 64 { u64::MAX } else { (1u64 << bucket) - 1 };
                    (((lo as f64) * (hi as f64)).sqrt() as u64).clamp(lo, hi)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn records_track_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn quantiles_are_order_correct() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99);
        // Geometric midpoint of the bucket holding the 500th value
        // ([256, 511]): sqrt(256 * 511) = 361.
        assert_eq!(p50, 361);
        assert!(p99 <= 1000, "clamped to observed max");
    }

    #[test]
    fn quantiles_stay_within_sqrt2_of_exact_on_uniform_data() {
        // Regression for the old behavior of returning the bucket
        // *upper bound*, which overshot the exact quantile by up to 2x
        // (p50 of uniform 1..=1000 came back as 511, not ~500-adjacent
        // on a log scale).
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let sqrt2 = 2f64.sqrt();
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = h.quantile(q) as f64;
            let exact = exact as f64;
            assert!(
                got >= exact / sqrt2 && got <= exact * sqrt2,
                "q={q}: estimate {got} outside sqrt(2) band of exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_clamps_midpoint_to_observed_range() {
        // All values identical: the bucket midpoint (sqrt(8*15) = 10)
        // would overshoot every recorded value; clamping repairs it.
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(8);
        }
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn sum_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.sum(), 60);
    }

    #[test]
    fn zero_values_supported() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.9), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
