//! The protocol abstraction shared by the simulator and the thread runtime.

use crate::rng::Rng64;
use crate::time::{SimDuration, SimTime};

/// Identity of a node within a network run.
///
/// Dense indices (0..n) so protocol state can use plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies which timer fired; protocols choose their own tag values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerTag(pub u64);

/// The runtime services available to a protocol while it handles an event.
///
/// Both [`crate::sim::SimNet`] and [`crate::threads::ThreadNet`] provide
/// this, so a protocol written against `dyn Context<M>` runs deterministic
/// simulations and live threaded deployments unchanged.
pub trait Context<M> {
    /// Current (virtual or wall-clock) time.
    fn now(&self) -> SimTime;

    /// This node's identity.
    fn self_id(&self) -> NodeId;

    /// Number of nodes in the network (a static deployment-time fact; for
    /// dynamic membership, protocols layer their own view on top).
    fn node_count(&self) -> usize;

    /// Send `msg` to `to`. Delivery is asynchronous and may fail (loss,
    /// crash, partition) depending on the runtime's fault configuration.
    fn send(&mut self, to: NodeId, msg: M);

    /// Arrange for [`Protocol::on_timer`] to be invoked `delay` from now.
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag);

    /// This node's deterministic random stream.
    fn rng(&mut self) -> &mut dyn Rng64;
}

/// A read-only liveness oracle over node identities.
///
/// Live runtimes with a membership plane (`wsg_cluster`) implement this
/// over their failure-detected view; consumers such as the WS-Gossip
/// coordinator filter per-round peer lists through it so gossip stops
/// targeting dead members. Static deployments use [`AllLive`].
pub trait PeerLiveness: Send + Sync + std::fmt::Debug {
    /// Whether `peer` is currently believed usable as a gossip target
    /// (alive or merely suspect — erring towards availability is the
    /// caller's policy choice when implementing this).
    fn is_live(&self, peer: NodeId) -> bool;
}

/// The static-deployment [`PeerLiveness`]: everyone is always live.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllLive;

impl PeerLiveness for AllLive {
    fn is_live(&self, _peer: NodeId) -> bool {
        true
    }
}

/// A deterministic, event-driven protocol state machine.
///
/// All interaction with the world goes through the [`Context`]; protocols
/// never block, never read clocks directly, and never use ambient
/// randomness — this is what makes simulation runs reproducible.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Message: Clone;

    /// Called once when the network starts, before any message flows.
    fn on_start(&mut self, _ctx: &mut dyn Context<Self::Message>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut dyn Context<Self::Message>,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _tag: TimerTag, _ctx: &mut dyn Context<Self::Message>) {}

    /// Called when the node recovers from a crash (fail-recover model).
    /// Timers armed before the crash were lost, so the default behaviour
    /// restarts the protocol's periodic machinery via [`Protocol::on_start`].
    fn on_recover(&mut self, ctx: &mut dyn Context<Self::Message>) {
        self.on_start(ctx);
    }
}
