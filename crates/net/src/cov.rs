//! wsg_cov — in-tree edge-coverage instrumentation for the fuzzing
//! harness (DESIGN.md §14).
//!
//! The wire parsers (`wsg-http`'s request/response parser, `wsg-xml`'s
//! pull reader, `wsg-soap`'s envelope and batch wire, `wsg-cluster`'s
//! membership binding) carry hand-placed [`crate::cov!`] callsites on their
//! branch points. Each callsite hashes its `(file, line, column)`
//! location to a slot in a fixed-size hit-count table at **compile
//! time** (the hash is a `const fn`, so the id is a constant baked into
//! the instruction stream — no runtime hashing). The coverage-guided
//! fuzzer in `crates/fuzz` snapshots the table after every execution
//! and admits an input to its corpus when it lights up a previously
//! unseen `(edge, count-bucket)` pair — the AFL feedback signal, built
//! in-tree per the zero-dependency policy.
//!
//! # The `wsg_cov` cfg-shim
//!
//! Exactly like the `wsg_model` shims in [`crate::sync`], the whole
//! mechanism is gated on a custom cfg: build with
//! `RUSTFLAGS="--cfg wsg_cov"` and every `cov!()` expands to an atomic
//! `fetch_add` on the table; build without it and `cov!()` expands to
//! an empty block — provably zero-cost (the const assertion below
//! evaluates `cov!()` in const context, which only type-checks when the
//! expansion is literally the unit expression). Normal builds are
//! bit-identical in behaviour with the instrumentation compiled out.
//!
//! The table is process-global: concurrent fuzz runs over it would
//! interleave their signals, so the engine in `crates/fuzz` serialises
//! executions behind a lock. `snapshot`/`reset`/`enabled` are part of
//! the always-compiled API (returning empty/no-op/false without the
//! cfg) so the engine never needs its own cfg gates.

/// Number of slots in the edge hit-count table.
///
/// Callsite ids are reduced modulo this size; with a few hundred
/// hand-placed edges in a 65 536-slot table, collisions are possible
/// but vanishingly rare, and (as in AFL) a collision only merges two
/// edges' counters — it never misattributes a crash.
pub const MAP_SIZE: usize = 1 << 16;

/// Compile-time callsite id: FNV-1a over the file path mixed with the
/// line and column, reduced into the table.
///
/// `const fn` so that `cov!()` can bake the slot index into the binary
/// as a constant (`const ID: usize = edge_id(file!(), line!(), column!())`).
pub const fn edge_id(file: &str, line: u32, column: u32) -> usize {
    let bytes = file.as_bytes();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash = (hash ^ bytes[i] as u64).wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash = (hash ^ line as u64).wrapping_mul(0x0000_0100_0000_01b3);
    hash = (hash ^ column as u64).wrapping_mul(0x0000_0100_0000_01b3);
    (hash % MAP_SIZE as u64) as usize
}

/// AFL-style count bucketing: raw hit counts are collapsed into eight
/// coarse classes so that "hit once" vs "hit twice" vs "hit many times"
/// are distinct coverage signals but 47 vs 48 hits are not (which would
/// make every input look novel).
pub const fn bucket(count: u32) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 3,
        4..=7 => 4,
        8..=15 => 5,
        16..=127 => 6,
        _ => 7,
    }
}

#[cfg(wsg_cov)]
mod table {
    use std::sync::atomic::{AtomicU32, Ordering};

    // Relaxed is exact here: coverage counters are pure statistics with
    // no ordering requirement against any other memory (A2 allowlist).
    static HITS: [AtomicU32; super::MAP_SIZE] = [const { AtomicU32::new(0) }; super::MAP_SIZE];

    /// Record one hit of the edge in slot `id`.
    #[inline]
    pub fn hit(id: usize) {
        HITS[id % super::MAP_SIZE].fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every counter (the engine calls this before each execution).
    pub fn reset() {
        for slot in HITS.iter() {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// All nonzero `(slot, bucketed count)` pairs, in slot order.
    pub fn snapshot() -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        for (i, slot) in HITS.iter().enumerate() {
            let count = slot.load(Ordering::Relaxed);
            if count != 0 {
                out.push((i as u32, super::bucket(count)));
            }
        }
        out
    }
}

/// Whether edge instrumentation is compiled in (`--cfg wsg_cov`).
#[inline]
pub const fn enabled() -> bool {
    cfg!(wsg_cov)
}

/// Record one hit of the edge in slot `id`. Called by the [`cov!`]
/// expansion; a no-op symbol does not even exist without the cfg.
#[cfg(wsg_cov)]
#[inline]
pub fn hit(id: usize) {
    table::hit(id);
}

/// Zero the hit-count table. No-op when instrumentation is off.
pub fn reset() {
    #[cfg(wsg_cov)]
    table::reset();
}

/// Nonzero `(edge slot, bucketed count)` pairs since the last
/// [`reset`], in slot order. Always empty when instrumentation is off.
pub fn snapshot() -> Vec<(u32, u8)> {
    #[cfg(wsg_cov)]
    {
        table::snapshot()
    }
    #[cfg(not(wsg_cov))]
    {
        Vec::new()
    }
}

/// Number of distinct edges hit since the last [`reset`].
pub fn edges_hit() -> usize {
    snapshot().len()
}

/// Mark an edge in a wire parser's branch structure.
///
/// Expands to a constant-id atomic increment under `--cfg wsg_cov` and
/// to an empty block otherwise. Placement is policed by `wsg_lint` rule
/// F1: only the designated parser modules (and this module) may invoke
/// it, so instrumentation stays on the audited hot paths.
#[macro_export]
macro_rules! cov {
    () => {{
        #[cfg(wsg_cov)]
        {
            const __WSG_COV_ID: usize =
                $crate::cov::edge_id(file!(), line!(), column!());
            $crate::cov::hit(__WSG_COV_ID);
        }
    }};
}

// Zero-cost pin: without the cfg, `cov!()` must expand to a unit
// expression that is legal in const context — i.e. literally nothing.
// (Mirrors the release-build size asserts in `crate::sync`.)
#[cfg(not(wsg_cov))]
const _: () = cov!();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_id_is_stable_and_in_range() {
        let a = edge_id("crates/http/src/parser.rs", 100, 9);
        let b = edge_id("crates/http/src/parser.rs", 100, 9);
        assert_eq!(a, b);
        assert!(a < MAP_SIZE);
        // Different callsites almost surely land in different slots.
        let c = edge_id("crates/http/src/parser.rs", 101, 9);
        assert_ne!(a, c);
    }

    #[test]
    fn buckets_collapse_counts() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 3);
        assert_eq!(bucket(5), 4);
        assert_eq!(bucket(12), 5);
        assert_eq!(bucket(100), 6);
        assert_eq!(bucket(1_000_000), 7);
    }

    #[test]
    fn snapshot_reflects_cfg() {
        reset();
        cov!();
        let snap = snapshot();
        if enabled() {
            assert_eq!(snap.len(), 1);
            assert_eq!(snap[0].1, 1);
        } else {
            assert!(snap.is_empty());
        }
        reset();
        assert_eq!(edges_hit(), 0);
    }
}
