//! Link latency models.

use crate::rng::{Rng64, RngExt};
use crate::time::SimDuration;

/// How long a message spends on the wire.
///
/// All models return strictly positive durations so event causality is
/// never violated (a message can never arrive at or before its send time).
///
/// ```
/// use wsg_net::{LatencyModel, Pcg32};
///
/// let model = LatencyModel::uniform_millis(1, 10);
/// let mut rng = Pcg32::new(3, 0);
/// let sample = model.sample(&mut rng);
/// assert!(sample.as_millis() >= 1 && sample.as_millis() <= 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniform between `min` and `max` (inclusive of `min`).
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound.
        max: SimDuration,
    },
    /// Exponentially distributed around `mean`, shifted by `floor` so the
    /// minimum physical propagation delay is respected — a common model for
    /// LAN/WAN message delay tails.
    Exponential {
        /// Minimum (propagation) delay added to every sample.
        floor: SimDuration,
        /// Mean of the exponential component.
        mean: SimDuration,
    },
}

impl LatencyModel {
    /// Constant latency of `ms` milliseconds.
    pub fn constant_millis(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Uniform latency between `min_ms` and `max_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min_ms > max_ms`.
    pub fn uniform_millis(min_ms: u64, max_ms: u64) -> Self {
        assert!(min_ms <= max_ms, "uniform latency requires min <= max");
        LatencyModel::Uniform {
            min: SimDuration::from_millis(min_ms),
            max: SimDuration::from_millis(max_ms),
        }
    }

    /// Exponential latency: `floor_ms` + Exp(mean = `mean_ms`).
    pub fn exponential_millis(floor_ms: u64, mean_ms: u64) -> Self {
        LatencyModel::Exponential {
            floor: SimDuration::from_millis(floor_ms),
            mean: SimDuration::from_millis(mean_ms),
        }
    }

    /// Draw one latency sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let raw = match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros();
                if lo >= hi {
                    *min
                } else {
                    SimDuration::from_micros(rng.gen_range(lo..=hi))
                }
            }
            LatencyModel::Exponential { floor, mean } => {
                // Inverse-CDF sampling; clamp u away from 0 to avoid inf.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let exp = -(u.ln()) * mean.as_secs_f64();
                *floor + SimDuration::from_secs_f64(exp)
            }
        };
        // Enforce causality: at least one microsecond on the wire.
        if raw.as_micros() == 0 {
            SimDuration::from_micros(1)
        } else {
            raw
        }
    }

    /// The mean of the distribution (used for analytic expectations in the
    /// benchmark harness).
    pub fn mean(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Exponential { floor, mean } => *floor + *mean,
        }
    }
}

impl Default for LatencyModel {
    /// A LAN-ish default: 1–5 ms uniform.
    fn default() -> Self {
        LatencyModel::uniform_millis(1, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn constant_is_constant() {
        let model = LatencyModel::constant_millis(7);
        let mut rng = Pcg32::new(1, 0);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), SimDuration::from_millis(7));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let model = LatencyModel::uniform_millis(2, 9);
        let mut rng = Pcg32::new(1, 0);
        for _ in 0..1000 {
            let s = model.sample(&mut rng).as_millis();
            assert!((2..=9).contains(&s));
        }
    }

    #[test]
    fn exponential_respects_floor() {
        let model = LatencyModel::exponential_millis(3, 10);
        let mut rng = Pcg32::new(1, 0);
        for _ in 0..1000 {
            assert!(model.sample(&mut rng) >= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let model = LatencyModel::exponential_millis(0, 10);
        let mut rng = Pcg32::new(42, 0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| model.sample(&mut rng).as_secs_f64()).sum();
        let mean_ms = total / n as f64 * 1000.0;
        assert!((8.5..11.5).contains(&mean_ms), "observed mean {mean_ms} ms");
    }

    #[test]
    fn zero_latency_clamped_to_one_microsecond() {
        let model = LatencyModel::Constant(SimDuration::ZERO);
        let mut rng = Pcg32::new(1, 0);
        assert_eq!(model.sample(&mut rng), SimDuration::from_micros(1));
    }

    #[test]
    fn means() {
        assert_eq!(LatencyModel::constant_millis(4).mean(), SimDuration::from_millis(4));
        assert_eq!(LatencyModel::uniform_millis(2, 4).mean(), SimDuration::from_millis(3));
        assert_eq!(
            LatencyModel::exponential_millis(1, 2).mean(),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_bounds() {
        let _ = LatencyModel::uniform_millis(5, 2);
    }
}
