//! Aggregate counters collected by a network run.

use crate::protocol::NodeId;

/// Counters for one run; read with [`crate::sim::SimNet::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network by protocols.
    pub sent: u64,
    /// Messages delivered to destination protocols.
    pub delivered: u64,
    /// Messages dropped by the random-loss model.
    pub dropped_loss: u64,
    /// Messages discarded because the destination was crashed.
    pub dropped_crashed: u64,
    /// Messages discarded by a network partition.
    pub dropped_partitioned: u64,
    /// Extra copies injected by the duplication model.
    pub duplicated: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Total bytes handed to the network (only counted when a size
    /// function is installed).
    pub bytes_sent: u64,
    /// Per-node count of messages received.
    pub received_per_node: Vec<u64>,
    /// Per-node count of messages sent.
    pub sent_per_node: Vec<u64>,
}

impl SimStats {
    pub(crate) fn ensure_node(&mut self, id: NodeId) {
        let need = id.index() + 1;
        if self.received_per_node.len() < need {
            self.received_per_node.resize(need, 0);
            self.sent_per_node.resize(need, 0);
        }
    }

    /// Total messages that failed to be delivered, for any reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_crashed + self.dropped_partitioned
    }

    /// The maximum number of messages any single node received — the "hot
    /// spot" metric used to compare broker vs gossip load (experiment E6).
    pub fn max_received(&self) -> u64 {
        self.received_per_node.iter().copied().max().unwrap_or(0)
    }

    /// The maximum number of messages any single node sent.
    pub fn max_sent(&self) -> u64 {
        self.sent_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages received per node.
    pub fn mean_received(&self) -> f64 {
        if self.received_per_node.is_empty() {
            0.0
        } else {
            self.received_per_node.iter().sum::<u64>() as f64
                / self.received_per_node.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_maxima() {
        let mut s = SimStats::default();
        s.ensure_node(NodeId(2));
        s.received_per_node = vec![1, 5, 2];
        s.sent_per_node = vec![3, 0, 0];
        s.dropped_loss = 2;
        s.dropped_crashed = 1;
        assert_eq!(s.dropped_total(), 3);
        assert_eq!(s.max_received(), 5);
        assert_eq!(s.max_sent(), 3);
        assert!((s.mean_received() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SimStats::default();
        assert_eq!(s.max_received(), 0);
        assert_eq!(s.mean_received(), 0.0);
    }
}
