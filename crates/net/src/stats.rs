//! Aggregate counters collected by a network run.

use crate::protocol::NodeId;

/// Counters for one run; read with [`crate::sim::SimNet::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network by protocols.
    pub sent: u64,
    /// Messages delivered to destination protocols.
    pub delivered: u64,
    /// Messages dropped by the random-loss model.
    pub dropped_loss: u64,
    /// Messages discarded because the destination was crashed.
    pub dropped_crashed: u64,
    /// Messages discarded by a network partition.
    pub dropped_partitioned: u64,
    /// Extra copies injected by the duplication model.
    pub duplicated: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Total bytes handed to the network (only counted when a size
    /// function is installed).
    pub bytes_sent: u64,
    /// Per-node count of messages received.
    pub received_per_node: Vec<u64>,
    /// Per-node count of messages sent.
    pub sent_per_node: Vec<u64>,
}

impl SimStats {
    pub(crate) fn ensure_node(&mut self, id: NodeId) {
        let need = id.index() + 1;
        // Resize each vector independently: if stats are seeded or
        // merged the two can start at different lengths, and gating
        // `sent_per_node` on `received_per_node`'s length leaves it
        // short — indexing out of bounds on the next send.
        if self.received_per_node.len() < need {
            self.received_per_node.resize(need, 0);
        }
        if self.sent_per_node.len() < need {
            self.sent_per_node.resize(need, 0);
        }
    }

    /// Merge another run's counters into this one (scalars sum; the
    /// per-node vectors extend to the longer length and sum
    /// element-wise).
    pub fn merge(&mut self, other: &SimStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_loss += other.dropped_loss;
        self.dropped_crashed += other.dropped_crashed;
        self.dropped_partitioned += other.dropped_partitioned;
        self.duplicated += other.duplicated;
        self.timers_fired += other.timers_fired;
        self.bytes_sent += other.bytes_sent;
        merge_per_node(&mut self.received_per_node, &other.received_per_node);
        merge_per_node(&mut self.sent_per_node, &other.sent_per_node);
    }

    /// Total messages that failed to be delivered, for any reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_crashed + self.dropped_partitioned
    }

    /// The maximum number of messages any single node received — the "hot
    /// spot" metric used to compare broker vs gossip load (experiment E6).
    pub fn max_received(&self) -> u64 {
        self.received_per_node.iter().copied().max().unwrap_or(0)
    }

    /// The maximum number of messages any single node sent.
    pub fn max_sent(&self) -> u64 {
        self.sent_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages received per node.
    pub fn mean_received(&self) -> f64 {
        if self.received_per_node.is_empty() {
            0.0
        } else {
            self.received_per_node.iter().sum::<u64>() as f64
                / self.received_per_node.len() as f64
        }
    }
}

fn merge_per_node(mine: &mut Vec<u64>, theirs: &[u64]) {
    if mine.len() < theirs.len() {
        mine.resize(theirs.len(), 0);
    }
    for (m, t) in mine.iter_mut().zip(theirs) {
        *m += t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_maxima() {
        let mut s = SimStats::default();
        s.ensure_node(NodeId(2));
        s.received_per_node = vec![1, 5, 2];
        s.sent_per_node = vec![3, 0, 0];
        s.dropped_loss = 2;
        s.dropped_crashed = 1;
        assert_eq!(s.dropped_total(), 3);
        assert_eq!(s.max_received(), 5);
        assert_eq!(s.max_sent(), 3);
        assert!((s.mean_received() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SimStats::default();
        assert_eq!(s.max_received(), 0);
        assert_eq!(s.mean_received(), 0.0);
    }

    #[test]
    fn ensure_node_resizes_each_vector_independently() {
        // Seeded stats where the vectors diverge (the old code only
        // resized `sent_per_node` when `received_per_node` was short).
        let mut s = SimStats { received_per_node: vec![1, 2, 3], ..SimStats::default() };
        s.ensure_node(NodeId(1));
        assert_eq!(s.received_per_node.len(), 3);
        assert_eq!(s.sent_per_node.len(), 2, "sent_per_node must grow on its own");
        s.ensure_node(NodeId(4));
        assert_eq!(s.received_per_node.len(), 5);
        assert_eq!(s.sent_per_node.len(), 5);
    }

    #[test]
    fn merge_sums_scalars_and_extends_per_node_vectors() {
        let mut a = SimStats {
            sent: 10,
            delivered: 8,
            dropped_loss: 1,
            bytes_sent: 100,
            received_per_node: vec![1, 2],
            sent_per_node: vec![3],
            ..SimStats::default()
        };
        let b = SimStats {
            sent: 5,
            delivered: 4,
            dropped_crashed: 2,
            timers_fired: 7,
            received_per_node: vec![10, 20, 30],
            sent_per_node: vec![1, 1, 1, 1],
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.sent, 15);
        assert_eq!(a.delivered, 12);
        assert_eq!(a.dropped_total(), 3);
        assert_eq!(a.timers_fired, 7);
        assert_eq!(a.bytes_sent, 100);
        assert_eq!(a.received_per_node, vec![11, 22, 30]);
        assert_eq!(a.sent_per_node, vec![4, 1, 1, 1]);
        // Merging must leave the per-node vectors usable by ensure_node.
        a.ensure_node(NodeId(5));
        assert_eq!(a.received_per_node.len(), 6);
        assert_eq!(a.sent_per_node.len(), 6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SimStats { sent: 3, received_per_node: vec![1], ..SimStats::default() };
        let before = a.clone();
        a.merge(&SimStats::default());
        assert_eq!(a, before);
    }
}
