//! Virtual time, and the [`Clock`] abstraction that lets time-keeping
//! components run on either virtual or wall-clock time.
//!
//! ## Who may observe the wall clock
//!
//! `SimTime`/`SimDuration` are the *only* time types protocols and
//! membership components touch; where the microseconds come from is the
//! runtime's business. Lint rule **D2** pins the raw wall-clock reads
//! (`Instant::now`/`SystemTime`) to exactly two layers:
//!
//! * `wsg_bench::timing` — the sanctioned measurement stopwatch;
//! * `wsg_http` — the socket transport and its runtimes, which provide
//!   [`wsg_http` `WallClock`](https://example.org) mapping process uptime
//!   onto `SimTime`.
//!
//! Everything else — including the live membership plane in
//! `wsg_cluster` — receives time through a [`Clock`], so the same
//! `MembershipView`/`FailureDetectorConfig`/`PhiAccrual` code runs
//! bit-identically in the simulator (driven by `SimNet`'s virtual clock)
//! and on real sockets (driven by `wsg_http::WallClock`).
//!
//! ## Sim-vs-wall conversions
//!
//! [`SimDuration::to_std`] / [`SimDuration::from_std`] are the one pair
//! of sanctioned conversion helpers between virtual durations and
//! `std::time::Duration`. Both are exact at microsecond granularity
//! (`from_std` truncates sub-microsecond precision and saturates at
//! `u64::MAX` microseconds), so converting back and forth never drifts
//! by more than a microsecond.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
///
/// ```
/// use wsg_net::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time `micros` microseconds after start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// A time `millis` milliseconds after start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// A time `secs` seconds after start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since start.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since start (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since start, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration since an earlier time (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// From a float number of seconds (rounding to microseconds, saturating
    /// at zero for negative inputs).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale by an integer factor.
    pub const fn saturating_mul(&self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Divide by an integer factor (truncating); zero divisor yields zero
    /// rather than panicking, keeping timer arithmetic total.
    pub const fn div(&self, divisor: u64) -> Self {
        match self.0.checked_div(divisor) {
            Some(scaled) => SimDuration(scaled),
            None => SimDuration(0),
        }
    }

    /// The equivalent `std::time::Duration` — exact, since both count
    /// microseconds. The sanctioned bridge for wall-clock runtimes
    /// (`wsg_http`, `wsg_cluster`) that must sleep or set socket
    /// timeouts for a virtual duration.
    pub const fn to_std(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }

    /// The virtual equivalent of a `std::time::Duration`, truncating to
    /// microsecond granularity and saturating at `u64::MAX` microseconds.
    pub const fn from_std(duration: std::time::Duration) -> Self {
        let micros = duration.as_micros();
        if micros > u64::MAX as u128 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(micros as u64)
        }
    }
}

/// A source of [`SimTime`] readings.
///
/// The simulator's event loop *is* a clock (virtual time advances from
/// event to event); wall-clock runtimes implement this by measuring
/// process uptime (`wsg_http::WallClock`). Components that take a
/// `&dyn Clock` (or `Arc<dyn Clock>`) are thereby generic over both —
/// the membership view and failure detectors run bit-identically in
/// simulation and on real sockets.
pub trait Clock: Send + Sync {
    /// The current reading. Monotone non-decreasing per clock instance.
    fn now(&self) -> SimTime;
}

/// A hand-cranked [`Clock`] for tests of wall-clock-generic components:
/// time only moves when the test advances it.
///
/// ```
/// use wsg_net::time::{Clock, ManualClock, SimDuration, SimTime};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now(), SimTime::ZERO);
/// clock.advance(SimDuration::from_millis(250));
/// assert_eq!(clock.now(), SimTime::from_millis(250));
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: std::sync::atomic::AtomicU64,
}

impl ManualClock {
    /// A clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `at`.
    pub fn at(at: SimTime) -> Self {
        let clock = Self::new();
        clock.set(at);
        clock
    }

    /// Move the clock forward by `delta`.
    pub fn advance(&self, delta: SimDuration) {
        self.micros.fetch_add(delta.as_micros(), std::sync::atomic::Ordering::SeqCst);
    }

    /// Jump to an absolute reading (monotonicity is the caller's duty).
    pub fn set(&self, at: SimTime) {
        self.micros.store(at.as_micros(), std::sync::atomic::Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(std::sync::atomic::Ordering::SeqCst))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // saturating subtraction
        assert_eq!(SimTime::ZERO - SimTime::from_millis(1), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn std_conversions_are_exact_at_microsecond_granularity() {
        let d = SimDuration::from_millis(1234);
        assert_eq!(d.to_std(), std::time::Duration::from_millis(1234));
        assert_eq!(SimDuration::from_std(d.to_std()), d);
        // Sub-microsecond precision truncates rather than rounding up, so
        // a sleep never overshoots its virtual duration by conversion.
        let fine = std::time::Duration::from_nanos(1_500);
        assert_eq!(SimDuration::from_std(fine), SimDuration::from_micros(1));
        // Saturation instead of overflow for absurd durations.
        let huge = std::time::Duration::from_secs(u64::MAX);
        assert_eq!(SimDuration::from_std(huge), SimDuration::from_micros(u64::MAX));
    }

    #[test]
    fn div_is_total() {
        assert_eq!(SimDuration::from_millis(10).div(2), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(10).div(0), SimDuration::ZERO);
    }

    #[test]
    fn manual_clock_advances() {
        let clock = ManualClock::at(SimTime::from_secs(1));
        assert_eq!(clock.now(), SimTime::from_secs(1));
        clock.advance(SimDuration::from_millis(500));
        assert_eq!(clock.now(), SimTime::from_millis(1500));
        clock.set(SimTime::from_secs(9));
        assert_eq!(clock.now(), SimTime::from_secs(9));
    }
}
