//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
///
/// ```
/// use wsg_net::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time `micros` microseconds after start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// A time `millis` milliseconds after start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// A time `secs` seconds after start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since start.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since start (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since start, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration since an earlier time (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// From a float number of seconds (rounding to microseconds, saturating
    /// at zero for negative inputs).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale by an integer factor.
    pub const fn saturating_mul(&self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // saturating subtraction
        assert_eq!(SimTime::ZERO - SimTime::from_millis(1), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
