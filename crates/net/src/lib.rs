//! # wsg-net — deterministic network simulation for WS-Gossip
//!
//! The WS-Gossip paper evaluates protocol-level properties — delivery
//! ratio, dissemination latency in rounds, per-node load, resilience to
//! crashes and loss. Its 2008 SOAP testbed is long gone, so this crate
//! provides the substitute substrate: a **deterministic discrete-event
//! simulator** ([`sim::SimNet`]) with configurable latency distributions,
//! message loss/duplication, crash and partition injection, per-node
//! perturbation (for the bimodal-multicast throughput experiment) and full
//! send/deliver/drop tracing — plus a thread-based runtime
//! ([`threads::ThreadNet`]) that runs the *same* [`Protocol`]
//! implementations on real OS threads and channels for live examples.
//!
//! Protocols are written once against the [`Protocol`]/[`Context`] pair and
//! run unmodified on either runtime.
//!
//! ## Example
//!
//! ```
//! use wsg_net::{sim::{SimNet, SimConfig}, Protocol, Context, NodeId};
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Message = String;
//!     fn on_message(&mut self, from: NodeId, msg: String, ctx: &mut dyn Context<String>) {
//!         if msg == "ping" { ctx.send(from, "pong".to_string()); }
//!     }
//! }
//!
//! let mut net = SimNet::new(SimConfig::default().seed(7));
//! let a = net.add_node(Echo);
//! let b = net.add_node(Echo);
//! net.send_external(a, b, "ping".to_string());
//! net.run_to_quiescence();
//! assert_eq!(net.stats().delivered, 2); // ping + pong
//! ```

pub mod check;
pub mod cov;
pub mod faults;
pub mod histogram;
pub mod latency;
pub mod protocol;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod sync;
pub mod threads;
pub mod time;
pub mod trace;

pub use faults::{FaultEvent, FaultSchedule};
pub use histogram::Histogram;
pub use latency::LatencyModel;
pub use protocol::{AllLive, Context, NodeId, PeerLiveness, Protocol, TimerTag};
pub use rng::{Pcg32, Rng64, RngExt, SplitMix64};
pub use sim::{SimConfig, SimNet};
pub use stats::SimStats;
pub use time::{Clock, ManualClock, SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind};
