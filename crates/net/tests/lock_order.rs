//! Behavioural tests for the debug lock-order deadlock detector, through
//! the public `wsg_net::sync` API only.
//!
//! The classic bug: two threads acquiring two locks in opposite order.
//! The schedule that actually deadlocks is rare; the detector's job is
//! to report the *ordering* violation deterministically on every run,
//! before any blocking happens. Release builds compile the tracking out
//! (checked at compile time in `wsg_net::sync`), so these tests are
//! debug-only.

#![cfg(debug_assertions)]

use std::sync::Arc;
use wsg_net::sync::Mutex;

/// The detector must name the rule and carry both acquisition sites in
/// its panic payload.
fn diagnostic_of(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap_or_default()
    })
}

#[test]
fn two_threads_opposite_order_report_a_cycle() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Thread 1 establishes the order a → b and exits cleanly.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("consistent order must not panic");
    }

    // Thread 2 takes them in the opposite order. Without the detector
    // this is a latent deadlock that a scheduler interleaving may or may
    // not expose; with it, the acquisition of `a` while holding `b`
    // panics deterministically.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let err = std::thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    })
    .join()
    .expect_err("inverted order must trip the detector");

    let msg = diagnostic_of(err);
    assert!(msg.contains("lock-order cycle"), "diagnostic names the failure: {msg}");
    assert!(msg.contains("lock_order.rs"), "diagnostic carries acquisition sites: {msg}");
    assert!(msg.contains("previously observed"), "diagnostic shows the witness: {msg}");
}

#[test]
fn independent_locks_never_false_positive() {
    // Disjoint pairs taken in arbitrary per-pair orders never form a
    // cycle; the detector must stay silent under heavy concurrency.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                let x = Mutex::new(0u8);
                let y = Mutex::new(0u8);
                for _ in 0..100 {
                    let _gx = x.lock();
                    let _gy = y.lock();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no false positives");
    }
}

#[test]
fn detector_reports_instead_of_deadlocking_under_contention() {
    // Both threads run concurrently with a barrier, each holding one
    // lock before taking the other — the textbook deadlock schedule.
    // At least one thread must panic with the cycle report; the process
    // must not hang. (Which thread trips depends on who registers its
    // edge first, so only the *presence* of a report is asserted.)
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let barrier = Arc::new(std::sync::Barrier::new(2));

    let t1 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            let _ga = a.lock();
            barrier.wait();
            let _gb = b.lock();
        })
    };
    let t2 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            let _gb = b.lock();
            barrier.wait();
            let _ga = a.lock();
        })
    };

    let outcomes = [t1.join(), t2.join()];
    let reports: Vec<String> = outcomes
        .into_iter()
        .filter_map(|o| o.err())
        .map(diagnostic_of)
        .collect();
    // The tripped thread panics while holding the lock its peer wants,
    // so the peer may die of poisoning as fallout — also fine: the
    // process made progress and at least one thread carries the report.
    assert!(
        reports.iter().any(|m| m.contains("lock-order cycle")),
        "the textbook deadlock schedule must produce a cycle report, got: {reports:?}"
    );
}
