//! Exhaustive model-checking of the debug lock-order deadlock detector
//! (ISSUE 9): the detector's own bookkeeping — the global order graph
//! and its check-then-insert critical section — must be race-free, and
//! in *every* interleaving of an inverted-order acquisition pair the
//! detector must panic before an actual deadlock can form.
//!
//! Compiled only under `RUSTFLAGS="--cfg wsg_model"` (and debug, where
//! the detector exists); see DESIGN.md §13.
#![cfg(all(wsg_model, debug_assertions))]

use std::sync::Arc;

use wsg_model::{thread, Explorer};
use wsg_net::sync::Mutex;

#[test]
fn detector_bookkeeping_is_race_free() {
    // Two threads acquire the same pair in the same order: no cycle
    // exists, so every interleaving of the graph's check-then-insert
    // sections and the held-stack updates must complete cleanly.
    let outcome = Explorer::new()
        .preemption_bound(2)
        .max_schedules(200_000)
        .samples(16)
        .explore(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    thread::spawn(move || {
                        let mut ga = a.lock();
                        let mut gb = b.lock(); // records a → b (once)
                        *ga += 1;
                        *gb += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*a.lock(), 2);
            assert_eq!(*b.lock(), 2);
        });
    assert!(
        outcome.failure.is_none(),
        "detector bookkeeping raced:\n{}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    assert!(outcome.exhausted, "fixture must be small enough to explore exhaustively");
}

#[test]
fn cycle_detection_fires_before_deadlock_in_every_interleaving() {
    // The classic inverted pair: t1 takes a then b, t2 takes b then a.
    // Because the cycle check and the edge insert share one critical
    // section, every interleaving has exactly one thread panic with the
    // cycle report *before* blocking — the model's deadlock detector
    // (which would fail the exploration) must never trigger.
    let outcome = Explorer::new()
        .preemption_bound(2)
        .max_schedules(200_000)
        .samples(16)
        .explore(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let spawn_pair = |first: Arc<Mutex<()>>, second: Arc<Mutex<()>>| {
                thread::spawn(move || {
                    let _g = first.lock();
                    wsg_model::catch(|| drop(second.lock())).err()
                })
            };
            let t1 = spawn_pair(Arc::clone(&a), Arc::clone(&b)); // a → b
            let t2 = spawn_pair(Arc::clone(&b), Arc::clone(&a)); // b → a
            let reports: Vec<String> = [t1, t2]
                .into_iter()
                .filter_map(|h| h.join().unwrap())
                .collect();
            assert!(
                !reports.is_empty(),
                "one thread must hit the detector before any deadlock forms"
            );
            for msg in &reports {
                assert!(msg.contains("lock-order cycle"), "unexpected panic: {msg}");
            }
        });
    assert!(
        outcome.failure.is_none(),
        "a schedule deadlocked or panicked outside the detector:\n{}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    assert!(outcome.exhausted, "fixture must be small enough to explore exhaustively");
}
