//! Engine self-tests: the fuzzer is deterministic, and it can actually
//! find, minimize and replay a real bug (a planted panic) before anyone
//! trusts a clean sweep.

use wsg_fuzz::targets::{Planted, XmlTarget};
use wsg_fuzz::{fuzz, run_input, FuzzConfig};

fn config(seed: u64, budget: u64) -> FuzzConfig {
    FuzzConfig { seed, budget, ..FuzzConfig::default() }
}

#[test]
fn same_seed_and_budget_replay_the_exact_trajectory() {
    let seeds = vec![b"<a><b>x</b></a>".to_vec(), b"<a/>".to_vec()];
    let first = fuzz(&XmlTarget, &seeds, &config(7, 3_000));
    let second = fuzz(&XmlTarget, &seeds, &config(7, 3_000));
    // Identical corpus trajectory (admission iterations and input hashes),
    // coverage map, execution count and crash list — the whole outcome.
    assert_eq!(first, second);
    assert!(first.executions <= seeds.len() as u64 + 3_000);
}

#[test]
fn different_seeds_explore_differently() {
    // Corpus growth needs the coverage novelty signal — without
    // `--cfg wsg_cov` both runs keep exactly the seed corpus.
    if !wsg_net::cov::enabled() {
        return;
    }
    let seeds = vec![b"<a><b>x</b></a>".to_vec()];
    let first = fuzz(&XmlTarget, &seeds, &config(1, 2_000));
    let second = fuzz(&XmlTarget, &seeds, &config(2, 2_000));
    // The corpus contents (mutated inputs) diverge even if counts happen
    // to coincide.
    assert_ne!(first.corpus, second.corpus);
}

#[test]
fn planted_bug_is_found_minimized_and_replayable() {
    // One case-flip away from the trigger: 'm' vs 'M' differ in bit 5.
    let seeds = vec![b"header xxBOOmxx trailer".to_vec()];
    // Stop at the first crash — the budget only bounds the search.
    let config = FuzzConfig { max_crashes: 1, ..config(0, 30_000) };
    let outcome = fuzz(&Planted, &seeds, &config);
    assert!(
        !outcome.crashes.is_empty(),
        "planted bug not found in {} executions",
        outcome.executions
    );
    let crash = &outcome.crashes[0];
    assert!(crash.message.contains("planted bug reached"), "{}", crash.message);
    // Removal-only shrinking bottoms out at the irreducible trigger.
    assert_eq!(crash.minimized, b"BOOM");
    // The recorded input and its minimized form both replay to the same
    // failure outside the fuzz loop.
    let replayed = run_input(&Planted, &crash.input).unwrap_err();
    assert_eq!(replayed, crash.message);
    assert_eq!(run_input(&Planted, &crash.minimized).unwrap_err(), crash.message);

    // And the discovery itself is deterministic: same seed, same budget,
    // byte-identical crash at the same iteration.
    let again = fuzz(&Planted, &seeds, &config);
    assert_eq!(outcome, again);
}
