//! Replays the committed corpus — seeds and minimized regression inputs —
//! through every target as a plain `cargo test`, so every past fuzz
//! finding stays fixed and the seeds stay parseable without anyone
//! running the fuzzer.

use wsg_fuzz::targets::all_targets;
use wsg_fuzz::{corpus, run_input};

#[test]
fn committed_corpus_replays_clean_on_every_target() {
    for target in all_targets() {
        let seeds = corpus::seeds(target.name()).unwrap();
        assert!(!seeds.is_empty(), "no committed seeds for {}", target.name());
        let mut inputs = seeds;
        inputs.extend(corpus::regressions(target.name()).unwrap());
        for (i, input) in inputs.iter().enumerate() {
            if let Err(message) = run_input(target.as_ref(), input) {
                panic!(
                    "{} corpus entry {i} ({} bytes) fails: {message}",
                    target.name(),
                    input.len()
                );
            }
        }
    }
}

#[test]
fn fixed_bugs_keep_their_minimized_triggers() {
    // The two parser bugs this harness found stay pinned by their
    // minimized inputs: the reader accepting `<wsa:0/>` (a QName local
    // part the writer refuses, so serialisation panicked), and a batch
    // message slice that leaned on the wrapper's xmlns:wsgb binding.
    assert!(!corpus::regressions("xml").unwrap().is_empty());
    assert!(!corpus::regressions("batch").unwrap().is_empty());
}
