//! The five wire-parser fuzz targets and their oracles.
//!
//! A target wraps one parse path behind a uniform byte-string entry
//! point. `run` returning `Err` is an **oracle violation** (the parser
//! accepted/produced something inconsistent); a panic inside `run` is
//! caught by the engine and reported as a crash. A clean rejection of
//! malformed input is `Ok` — rejecting garbage is the parsers' job.

use wsg_cluster::proto::ClusterMessage;
use wsg_http::parser::{Parsed, RequestParser, ResponseParser};
use wsg_http::Request;
use wsg_soap::batch::{is_batch, parse_wire, unbundle, Unbundled};
use wsg_soap::Envelope;
use wsg_xml::reader::MAX_DEPTH;
use wsg_xml::{Element, XmlEvent, XmlReader};

/// One fuzzable parse path.
pub trait FuzzTarget: Sync {
    /// Stable name — keys the corpus directory and the RNG stream.
    fn name(&self) -> &'static str;

    /// Feed one input. `Err` = oracle violation; panics are caught by the
    /// engine; `Ok` covers both acceptance and clean rejection.
    fn run(&self, input: &[u8]) -> Result<(), String>;
}

/// The five production parse paths, in corpus-directory order.
pub fn all_targets() -> Vec<Box<dyn FuzzTarget>> {
    vec![
        Box::new(HttpTarget),
        Box::new(XmlTarget),
        Box::new(EnvelopeTarget),
        Box::new(BatchTarget),
        Box::new(MembershipTarget),
    ]
}

/// Look a target up by name (CLI `--target`, corpus replay).
pub fn target_by_name(name: &str) -> Option<Box<dyn FuzzTarget>> {
    all_targets().into_iter().find(|t| t.name() == name)
}

// ---------------------------------------------------------------------
// HTTP framing
// ---------------------------------------------------------------------

/// `wsg_http::parser` — incremental request/response framing.
///
/// Oracles: chunked feeding agrees with whole-buffer feeding; a parser
/// left in `Partial` never buffers more than head cap + body cap
/// (limits actually bound allocation); completed messages survive a
/// parse → serialise → parse round trip.
pub struct HttpTarget;

/// Drive a request parser to its terminal state: completed messages,
/// then either a clean `Partial` (`None`) or the first error.
fn drain_requests(parser: &mut RequestParser) -> (Vec<Request>, Option<String>) {
    let mut messages = Vec::new();
    loop {
        match parser.parse() {
            Ok(Parsed::Complete(request)) => messages.push(request),
            Ok(Parsed::Partial) => return (messages, None),
            Err(error) => return (messages, Some(error.to_string())),
        }
    }
}

impl FuzzTarget for HttpTarget {
    fn name(&self) -> &'static str {
        "http"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        // Whole-buffer feed.
        let mut whole = RequestParser::new();
        whole.feed(input);
        let (whole_messages, whole_end) = drain_requests(&mut whole);

        // Chunked feed: same bytes, 7 at a time, draining after each
        // chunk. Terminal state must agree with the whole-buffer parse.
        let mut chunked = RequestParser::new();
        let mut chunked_messages = Vec::new();
        let mut chunked_end = None;
        'feed: for chunk in input.chunks(7) {
            chunked.feed(chunk);
            loop {
                match chunked.parse() {
                    Ok(Parsed::Complete(request)) => chunked_messages.push(request),
                    Ok(Parsed::Partial) => break,
                    Err(error) => {
                        chunked_end = Some(error.to_string());
                        break 'feed;
                    }
                }
            }
        }
        if whole_messages != chunked_messages || whole_end != chunked_end {
            return Err(format!(
                "chunked vs whole-buffer divergence: {}+{:?} vs {}+{:?}",
                whole_messages.len(),
                whole_end,
                chunked_messages.len(),
                chunked_end
            ));
        }

        // Round trip every completed request.
        for request in &whole_messages {
            let mut reparse = RequestParser::new();
            reparse.feed(&request.to_bytes());
            match reparse.parse() {
                Ok(Parsed::Complete(again)) => {
                    if again != *request {
                        return Err(format!(
                            "request parse→serialise→parse mismatch: {request:?} vs {again:?}"
                        ));
                    }
                }
                other => {
                    return Err(format!(
                        "serialised accepted request does not reparse: {other:?}"
                    ))
                }
            }
        }

        // Limit enforcement: a small-capped parser that stays Partial
        // must never be buffering more than head + separator + body.
        let (max_head, max_body) = (128usize, 256usize);
        let mut limited = RequestParser::with_limits(max_head, max_body);
        limited.feed(input);
        let (_, end) = drain_requests(&mut limited);
        if end.is_none() && limited.buffered() > max_head + 4 + max_body {
            return Err(format!(
                "limited parser is Partial with {} bytes buffered (caps {max_head}+{max_body})",
                limited.buffered()
            ));
        }

        // The response parser shares the framing code but has its own
        // status-line grammar; completed responses must round-trip too.
        let mut responses = ResponseParser::new();
        responses.feed(input);
        while let Ok(Parsed::Complete(response)) = responses.parse() {
            let mut reparse = ResponseParser::new();
            reparse.feed(&response.to_bytes());
            match reparse.parse() {
                Ok(Parsed::Complete(again)) if again == response => {}
                other => {
                    return Err(format!("response round trip failed: {response:?} vs {other:?}"))
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// XML reader
// ---------------------------------------------------------------------

/// `wsg_xml::XmlReader` + `Element::parse`.
///
/// Oracles: the event stream terminates within a linear bound (no
/// livelock), open-element depth never exceeds [`MAX_DEPTH`], and a tree
/// that parses has an idempotent serialisation
/// (serialise → parse → serialise is a fixed point).
pub struct XmlTarget;

impl FuzzTarget for XmlTarget {
    fn name(&self) -> &'static str {
        "xml"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let mut reader = XmlReader::new(&text);
        let bound = 4 * text.len() + 16;
        let mut events = 0usize;
        loop {
            match reader.next_event() {
                Ok(XmlEvent::Eof) => break,
                Ok(_) => {
                    events += 1;
                    if events > bound {
                        return Err(format!(
                            "reader emitted {events} events for {} bytes (livelock?)",
                            text.len()
                        ));
                    }
                    if reader.depth() > MAX_DEPTH {
                        return Err(format!("depth {} exceeds MAX_DEPTH", reader.depth()));
                    }
                }
                Err(_) => return Ok(()), // clean rejection
            }
        }

        if let Ok(first) = Element::parse(&text) {
            let serialised = first.to_xml_string();
            let again = Element::parse(&serialised).map_err(|error| {
                format!("serialised tree does not reparse: {error} in {serialised:?}")
            })?;
            let twice = again.to_xml_string();
            if serialised != twice {
                return Err(format!(
                    "serialise→parse→serialise not a fixed point: {serialised:?} vs {twice:?}"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SOAP envelope
// ---------------------------------------------------------------------

/// `wsg_soap::Envelope::parse`.
///
/// Oracle: an accepted envelope's serialisation is a fixed point —
/// `parse(to_xml(parse(x)))` serialises to the same bytes again.
pub struct EnvelopeTarget;

impl FuzzTarget for EnvelopeTarget {
    fn name(&self) -> &'static str {
        "envelope"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let Ok(envelope) = Envelope::parse(&text) else {
            return Ok(()); // clean rejection
        };
        let serialised = envelope.to_xml();
        let again = Envelope::parse(&serialised)
            .map_err(|error| format!("serialised envelope does not reparse: {error}"))?;
        let twice = again.to_xml();
        if serialised != twice {
            return Err(format!(
                "envelope parse→serialise→parse not a fixed point: {serialised:?} vs {twice:?}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Batch wire
// ---------------------------------------------------------------------

/// `wsg_soap::batch::parse_wire` vs the tree path (`Element::parse` +
/// `unbundle`).
///
/// Oracles: the streaming classifier agrees with the tree walk; each
/// streamed message's `raw` is the sender's bytes and reparses to the
/// same envelope (byte-identity recovery).
pub struct BatchTarget;

impl FuzzTarget for BatchTarget {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let streamed = parse_wire(&text);
        let tree = Element::parse(&text);
        match (streamed, tree) {
            (Ok(_), Err(error)) => Err(format!(
                "parse_wire accepted a document Element::parse rejects: {error}"
            )),
            (Ok(Unbundled::Single(root)), Ok(parsed)) => {
                if is_batch(&parsed) {
                    return Err("parse_wire classified a batch as Single".into());
                }
                if root != parsed {
                    return Err("parse_wire Single tree differs from Element::parse".into());
                }
                Ok(())
            }
            (Ok(Unbundled::Batch(messages)), Ok(parsed)) => {
                let via_tree = unbundle(&parsed).map_err(|error| {
                    format!("parse_wire accepted a batch unbundle rejects: {error}")
                })?;
                if messages.len() != via_tree.len() {
                    return Err(format!(
                        "streamed {} messages, tree walk {}",
                        messages.len(),
                        via_tree.len()
                    ));
                }
                for (i, (streamed, tree)) in messages.iter().zip(&via_tree).enumerate() {
                    if streamed.envelope != tree.envelope || streamed.target != tree.target {
                        return Err(format!("message {i} differs between stream and tree"));
                    }
                    // Byte-identity recovery: the raw slice must itself be
                    // a standalone document for the same envelope.
                    match Envelope::parse(&streamed.raw) {
                        Ok(env) if env == streamed.envelope => {}
                        other => {
                            return Err(format!(
                                "message {i} raw does not recover its envelope: {other:?}"
                            ))
                        }
                    }
                }
                Ok(())
            }
            (Err(_), Ok(parsed)) => {
                // A structural rejection must be one the tree walk makes
                // too — otherwise parse_wire dropped a valid document.
                if is_batch(&parsed) {
                    if unbundle(&parsed).is_ok() {
                        return Err("parse_wire rejected a batch unbundle accepts".into());
                    }
                    Ok(())
                } else {
                    Err("parse_wire rejected a non-batch document Element::parse accepts".into())
                }
            }
            (Err(_), Err(_)) => Ok(()), // agreed rejection
        }
    }
}

// ---------------------------------------------------------------------
// WS-Membership binding
// ---------------------------------------------------------------------

/// `wsg_cluster::proto::ClusterMessage::from_envelope`.
///
/// Oracle: a decoded membership message re-encodes to an envelope that
/// decodes to the same message.
pub struct MembershipTarget;

impl FuzzTarget for MembershipTarget {
    fn name(&self) -> &'static str {
        "membership"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let Ok(envelope) = Envelope::parse(&text) else {
            return Ok(());
        };
        let Ok(message) = ClusterMessage::from_envelope(&envelope) else {
            return Ok(()); // clean rejection
        };
        let to = envelope.addressing().to().unwrap_or("http://node/membership");
        let xml = message.to_envelope(to).to_xml();
        let again = Envelope::parse(&xml)
            .map_err(|error| format!("re-encoded membership envelope does not parse: {error}"))?;
        let decoded = ClusterMessage::from_envelope(&again)
            .map_err(|error| format!("re-encoded membership envelope does not decode: {error}"))?;
        if decoded != message {
            return Err(format!(
                "membership decode→encode→decode mismatch: {message:?} vs {decoded:?}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Planted bug (self-test only)
// ---------------------------------------------------------------------

/// A deliberately buggy target for the engine's own self-test: panics on
/// inputs containing `BOOM` (one case-flip away from the seed corpus the
/// test plants). Mirrors the `wsg_model` explorer self-test pattern —
/// the harness proves it can find, minimize and replay a real panic
/// before anyone trusts a clean sweep.
pub struct Planted;

impl FuzzTarget for Planted {
    fn name(&self) -> &'static str {
        "planted"
    }

    fn run(&self, input: &[u8]) -> Result<(), String> {
        if input.windows(4).any(|w| w == b"BOOM") {
            panic!("planted bug reached");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable() {
        let names: Vec<&str> = all_targets().iter().map(|t| t.name()).collect();
        assert_eq!(names, ["http", "xml", "envelope", "batch", "membership"]);
        assert!(target_by_name("batch").is_some());
        assert!(target_by_name("nope").is_none());
    }

    #[test]
    fn targets_accept_well_formed_inputs() {
        let envelope = Envelope::request(
            wsg_soap::MessageHeaders::request("http://dest/svc", "urn:app:Op"),
            Element::text_node("tick", "hi"),
        )
        .to_xml();
        assert_eq!(EnvelopeTarget.run(envelope.as_bytes()), Ok(()));
        assert_eq!(XmlTarget.run(b"<a x=\"1\"><b/>text</a>"), Ok(()));
        assert_eq!(
            HttpTarget.run(b"POST /gossip HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"),
            Ok(())
        );
        let heartbeat = ClusterMessage::Heartbeat(Vec::new())
            .to_envelope("http://x/membership")
            .to_xml();
        assert_eq!(MembershipTarget.run(heartbeat.as_bytes()), Ok(()));
        let mut batch = String::new();
        wsg_soap::batch::write_batch(
            &[
                wsg_soap::batch::BatchItem { target: None, xml: &envelope },
                wsg_soap::batch::BatchItem { target: Some("/membership"), xml: &heartbeat },
            ],
            &mut batch,
        );
        assert_eq!(BatchTarget.run(batch.as_bytes()), Ok(()));
    }

    #[test]
    fn targets_cleanly_reject_garbage() {
        for garbage in [&b"\xff\xfe\x00garbage"[..], b"<unclosed", b"", b"GET"] {
            for target in all_targets() {
                assert_eq!(target.run(garbage), Ok(()), "{}", target.name());
            }
        }
    }
}
