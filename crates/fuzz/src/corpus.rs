//! On-disk corpus layout and deterministic loading.
//!
//! The committed corpus lives at the repository root:
//!
//! ```text
//! fuzz/corpus/<target>/            seed + discovered inputs (replayed in CI)
//! fuzz/corpus/regressions/<target>/  minimized crash/oracle inputs (regression tests)
//! ```
//!
//! Files are loaded in sorted filename order so every run — local, CI,
//! replay — sees the same corpus sequence. New entries are named by
//! their FNV-1a content hash, so re-saving an existing input is a
//! no-op and the directory never accumulates duplicates.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Repository-root `fuzz/corpus` directory (the crate sits at
/// `crates/fuzz`, two levels below the root).
pub fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Seed/discovered corpus directory for one target.
pub fn dir_for(target: &str) -> PathBuf {
    corpus_root().join(target)
}

/// Minimized regression-input directory for one target.
pub fn regressions_for(target: &str) -> PathBuf {
    corpus_root().join("regressions").join(target)
}

/// Load every file in `dir`, sorted by filename for determinism.
/// A missing directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> io::Result<Vec<Vec<u8>>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.is_file())
            .collect(),
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(error) => return Err(error),
    };
    paths.sort();
    paths.iter().map(fs::read).collect()
}

/// Seed inputs committed for `target`.
pub fn seeds(target: &str) -> io::Result<Vec<Vec<u8>>> {
    load_dir(&dir_for(target))
}

/// Minimized regression inputs committed for `target`.
pub fn regressions(target: &str) -> io::Result<Vec<Vec<u8>>> {
    load_dir(&regressions_for(target))
}

/// Write `input` into `dir` under its content-hash name. Returns the
/// path written (or already present).
pub fn save(dir: &Path, input: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{:016x}", crate::fnv64(input)));
    if !path.exists() {
        fs::write(&path, input)?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        assert_eq!(load_dir(Path::new("/nonexistent/wsg-fuzz")).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn committed_seed_corpus_is_present_for_every_target() {
        for target in ["http", "xml", "envelope", "batch", "membership"] {
            let seeds = seeds(target).unwrap();
            assert!(!seeds.is_empty(), "no committed seeds for {target}");
        }
    }

    #[test]
    fn save_is_idempotent_and_content_addressed() {
        let dir = std::env::temp_dir().join("wsg-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let a = save(&dir, b"hello").unwrap();
        let b = save(&dir, b"hello").unwrap();
        assert_eq!(a, b);
        assert_eq!(load_dir(&dir).unwrap(), vec![b"hello".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
