//! # wsg_fuzz — coverage-guided fuzzing for the WS-Gossip wire parsers
//!
//! Every byte that reaches a gossip node flows through one of five
//! hand-rolled parsers: HTTP/1.1 framing, the XML pull reader, the SOAP
//! envelope, the `urn:ws-gossip:batch` wire, and the WS-Membership
//! binding. The paper's availability argument assumes nodes fail only by
//! crashing — not by *being* crashed by a hostile byte string — so this
//! crate is the third leg of the correctness-tooling stack (after
//! `wsg_lint`'s static rules and `wsg_model`'s schedule exploration): a
//! zero-dependency coverage-guided fuzzer in the AFL/libFuzzer tradition
//! (DESIGN.md §14).
//!
//! * **Feedback** comes from `wsg_net::cov` — `cov!()` callsites on the
//!   parsers' branch points, compiled in with `RUSTFLAGS="--cfg wsg_cov"`.
//!   An input that lights up a new `(edge, count-bucket)` pair joins the
//!   corpus. Without the cfg the engine still runs (mutation + oracles),
//!   it just never grows the corpus beyond the seeds.
//! * **Mutation** ([`mutate`]) is deterministic on `wsg_net::rng`: byte
//!   mutators (bitflips, splices, repeats, truncation, interesting
//!   values) plus structure-aware ones that work at token granularity
//!   (swap/duplicate XML tags, corrupt `Content-Length`, shuffle batch
//!   segments).
//! * **Oracles** ([`targets`]) go beyond "no panic": parse → serialise →
//!   parse fixed points, `parse_wire` byte-identity recovery, chunked vs
//!   whole-buffer HTTP agreement, and parser-limit enforcement.
//! * **Reproducibility**: the whole run is a pure function of
//!   (`WSG_FUZZ_SEED`, budget, seed corpus). A crashing input is
//!   minimized by the same shrink-by-halving philosophy as
//!   `wsg_net::check` and can be replayed via `WSG_FUZZ_INPUT`.
//!
//! Environment variables (all optional):
//!
//! | variable         | meaning                                          |
//! |------------------|--------------------------------------------------|
//! | `WSG_FUZZ_SEED`  | engine RNG seed (default 0)                      |
//! | `WSG_FUZZ_BUDGET`| iterations (`5000`) or wall time (`10s`/`500ms`) |
//! | `WSG_FUZZ_INPUT` | path of one input to replay (CLI, with --target) |

pub mod corpus;
pub mod mutate;
pub mod targets;

use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, Once};

use wsg_net::cov;
use wsg_net::rng::RngExt;
use wsg_net::SplitMix64;

pub use targets::{all_targets, FuzzTarget};

/// FNV-1a over a byte string — used for stable input fingerprints in the
/// admission trajectory and for per-target RNG streams (same constants as
/// `wsg_net::check`'s name hashing).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Engine parameters. The run is a pure function of these plus the seeds.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base RNG seed (xor-mixed with the target name's hash so that every
    /// target gets an independent deterministic stream).
    pub seed: u64,
    /// Mutation iterations after the seed replay.
    pub budget: u64,
    /// Optional wall-clock cap in milliseconds; whichever budget runs out
    /// first ends the loop.
    pub wall_ms: Option<u64>,
    /// Inputs larger than this are truncated after mutation.
    pub max_len: usize,
    /// Stop after this many distinct crashes/oracle violations.
    pub max_crashes: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            budget: 2_000,
            wall_ms: None,
            max_len: 1 << 16,
            max_crashes: 4,
        }
    }
}

impl FuzzConfig {
    /// Read `WSG_FUZZ_SEED` / `WSG_FUZZ_BUDGET` over the defaults.
    pub fn from_env() -> Self {
        let mut config = FuzzConfig::default();
        if let Ok(seed) = std::env::var("WSG_FUZZ_SEED") {
            if let Ok(seed) = seed.trim().parse::<u64>() {
                config.seed = seed;
            }
        }
        if let Ok(budget) = std::env::var("WSG_FUZZ_BUDGET") {
            let (iterations, wall_ms) = parse_budget(budget.trim());
            if let Some(iterations) = iterations {
                config.budget = iterations;
            }
            config.wall_ms = wall_ms;
        }
        config
    }
}

/// Parse a `WSG_FUZZ_BUDGET` value: a bare integer is an iteration count,
/// a `10s` / `1500ms` suffix is a wall-clock cap (with the iteration
/// budget left effectively unbounded so the clock is what stops the run).
pub fn parse_budget(value: &str) -> (Option<u64>, Option<u64>) {
    if let Some(ms) = value.strip_suffix("ms") {
        return (Some(u64::MAX), ms.trim().parse::<u64>().ok());
    }
    if let Some(secs) = value.strip_suffix('s') {
        return (
            Some(u64::MAX),
            secs.trim().parse::<u64>().ok().map(|s| s.saturating_mul(1_000)),
        );
    }
    (value.parse::<u64>().ok(), None)
}

/// One distinct failure found by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// `panic: …` payload or `oracle: …` violation message.
    pub message: String,
    /// The mutated input that first triggered the failure.
    pub input: Vec<u8>,
    /// Shrink-by-halving minimized form (still fails with `message`).
    pub minimized: Vec<u8>,
    /// Iteration at which the failure surfaced (0 = a seed itself fails).
    pub iteration: u64,
}

/// Everything a fuzzing run produced, sufficient to compare two runs for
/// determinism byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// Target name.
    pub target: &'static str,
    /// Total executions (seeds + mutations + minimization probes are NOT
    /// counted here; this is the main-loop execution count).
    pub executions: u64,
    /// Final corpus: seeds plus every admitted input, in admission order.
    pub corpus: Vec<Vec<u8>>,
    /// `(iteration, fnv64(input))` for every admission — the corpus
    /// trajectory the determinism test compares.
    pub admissions: Vec<(u64, u64)>,
    /// Aggregate `(edge, bucket)` coverage map over the whole run.
    pub coverage: BTreeSet<(u32, u8)>,
    /// Coverage pairs first reached by a *mutated* input (i.e. beyond
    /// what the seed corpus already covered).
    pub new_edges: usize,
    /// Distinct failures, in discovery order.
    pub crashes: Vec<Crash>,
}

// The cov table is process-global, so concurrent engine runs would blend
// their feedback signals; every entry point that touches the table
// serialises here. `unwrap_or_else(into_inner)` keeps the lock usable
// after a poisoning panic (the engine itself catches target panics, so
// poisoning can only come from a bug in the harness).
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    static IN_FUZZ_EXEC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Suppress the default "thread panicked at …" stderr noise for panics
/// the engine catches, without hiding panics from anything else (same
/// idea as `wsg_model::install_quiet_panic_hook`, but flag-based because
/// the engine runs on the caller's thread).
fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_FUZZ_EXEC.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Run `input` through `target` once, catching panics, and snapshot the
/// edge coverage it produced. Internal: assumes the engine lock is held.
fn execute(target: &dyn FuzzTarget, input: &[u8]) -> (Result<(), String>, Vec<(u32, u8)>) {
    cov::reset();
    IN_FUZZ_EXEC.with(|flag| flag.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| target.run(input)));
    IN_FUZZ_EXEC.with(|flag| flag.set(false));
    let coverage = cov::snapshot();
    let outcome = match result {
        Ok(Ok(())) => Ok(()),
        Ok(Err(oracle)) => Err(format!("oracle: {oracle}")),
        Err(payload) => Err(format!("panic: {}", payload_message(payload.as_ref()))),
    };
    (outcome, coverage)
}

/// Run one input through a target, panic-safely — the public form used by
/// corpus replay tests and `WSG_FUZZ_INPUT` replay.
pub fn run_input(target: &dyn FuzzTarget, input: &[u8]) -> Result<(), String> {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_quiet_panic_hook();
    execute(target, input).0
}

/// Shrink a failing input by removing ever-smaller chunks while the same
/// failure message reproduces — the `wsg_net::check` shrinking philosophy
/// (halve, retry, halve again) applied to a byte string. Bounded by a
/// fixed probe budget so a pathological failure cannot stall the run.
fn minimize(target: &dyn FuzzTarget, input: &[u8], message: &str) -> Vec<u8> {
    let mut current = input.to_vec();
    let mut probes = 4_096usize;
    let still_fails = |candidate: &[u8], probes: &mut usize| -> bool {
        *probes = probes.saturating_sub(1);
        matches!(&execute(target, candidate).0, Err(m) if m == message)
    };
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i + chunk <= current.len() && probes > 0 {
            let mut candidate = current.clone();
            candidate.drain(i..i + chunk);
            if still_fails(&candidate, &mut probes) {
                current = candidate;
                progressed = true;
                // The suffix shifted left onto `i`; retry the same offset.
            } else {
                i += chunk;
            }
        }
        if probes == 0 || (chunk == 1 && !progressed) {
            return current;
        }
        if !progressed {
            chunk /= 2;
        } else {
            chunk = chunk.min(current.len().max(1));
        }
        if chunk == 0 {
            return current;
        }
    }
}

/// The coverage-guided mutation loop.
///
/// Replays `seeds` (admitting them all), then mutates corpus picks for
/// `config.budget` iterations, admitting inputs that reach novel
/// `(edge, bucket)` coverage and minimizing every distinct failure. The
/// outcome is a deterministic function of `(seeds, config)` for a given
/// build — the property the determinism self-test pins.
pub fn fuzz(target: &dyn FuzzTarget, seeds: &[Vec<u8>], config: &FuzzConfig) -> FuzzOutcome {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_quiet_panic_hook();

    let mut rng = SplitMix64::new(config.seed ^ fnv64(target.name().as_bytes()));
    let mut seen: BTreeSet<(u32, u8)> = BTreeSet::new();
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    let mut admissions: Vec<(u64, u64)> = Vec::new();
    let mut crashes: Vec<Crash> = Vec::new();
    let mut executions: u64 = 0;

    // wsg_lint: allow(wall-clock) — the optional WSG_FUZZ_BUDGET wall cap
    // exists to bound CI time; determinism holds per-iteration regardless.
    let started = config.wall_ms.map(|_| std::time::Instant::now());

    let default_seed: Vec<Vec<u8>>;
    let seeds: &[Vec<u8>] = if seeds.is_empty() {
        default_seed = vec![Vec::new()];
        &default_seed
    } else {
        seeds
    };

    for seed in seeds {
        let (result, coverage) = execute(target, seed);
        executions += 1;
        for pair in coverage {
            seen.insert(pair);
        }
        if let Err(message) = result {
            if !crashes.iter().any(|c| c.message == message) {
                let minimized = minimize(target, seed, &message);
                crashes.push(Crash { message, input: seed.clone(), minimized, iteration: 0 });
            }
        }
        corpus.push(seed.clone());
    }
    let seed_coverage = seen.len();

    for iteration in 1..=config.budget {
        if crashes.len() >= config.max_crashes {
            break;
        }
        if let (Some(started), Some(wall_ms)) = (started, config.wall_ms) {
            if started.elapsed().as_millis() as u64 >= wall_ms {
                break;
            }
        }
        let mut input = rng.choose(&corpus).cloned().unwrap_or_default();
        mutate::mutate(&mut input, &corpus, &mut rng, config.max_len);
        let (result, coverage) = execute(target, &input);
        executions += 1;
        let mut novel = false;
        for pair in coverage {
            if seen.insert(pair) {
                novel = true;
            }
        }
        match result {
            Err(message) => {
                if !crashes.iter().any(|c| c.message == message) {
                    let minimized = minimize(target, &input, &message);
                    crashes.push(Crash { message, input, minimized, iteration });
                }
            }
            Ok(()) => {
                if novel {
                    admissions.push((iteration, fnv64(&input)));
                    corpus.push(input);
                }
            }
        }
    }

    FuzzOutcome {
        target: target.name(),
        executions,
        corpus,
        admissions,
        new_edges: seen.len() - seed_coverage,
        coverage: seen,
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_distinguishes_inputs() {
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"same"), fnv64(b"same"));
    }

    #[test]
    fn parse_budget_forms() {
        assert_eq!(parse_budget("5000"), (Some(5_000), None));
        assert_eq!(parse_budget("10s"), (Some(u64::MAX), Some(10_000)));
        assert_eq!(parse_budget("250ms"), (Some(u64::MAX), Some(250)));
        assert_eq!(parse_budget("junk"), (None, None));
    }

    #[test]
    fn run_input_catches_panics() {
        let planted = targets::Planted;
        let err = run_input(&planted, b"xxBOOMxx").unwrap_err();
        assert!(err.starts_with("panic: "), "{err}");
        assert!(run_input(&planted, b"calm").is_ok());
    }

    #[test]
    fn minimize_reduces_to_the_trigger() {
        let planted = targets::Planted;
        let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_quiet_panic_hook();
        let message = execute(&planted, b"noise BOOM more noise").0.unwrap_err();
        let minimized = minimize(&planted, b"noise BOOM more noise", &message);
        assert_eq!(minimized, b"BOOM");
    }
}
