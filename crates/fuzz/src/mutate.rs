//! Deterministic byte-level and structure-aware mutators.
//!
//! Every mutation is a pure function of the RNG stream, the input and
//! the corpus — no wall clock, no global state — so a fuzzing run can be
//! replayed exactly from `WSG_FUZZ_SEED`. The structure-aware mutators
//! work at token granularity on the wire shapes this workspace actually
//! speaks (XML tags, `Content-Length` framing, `wsgb:Msg` segments),
//! which is what lets the engine reach deep parser branches that blind
//! bitflips practically never hit.

use wsg_net::rng::RngExt;
use wsg_net::SplitMix64;

/// Grammar fragments of the five wire formats, spliced in wholesale so a
/// mutation can introduce a well-formed token the parsers dispatch on.
pub const DICTIONARY: &[&[u8]] = &[
    b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>",
    b"<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\">",
    b"</wsgb:Batch>",
    b"<wsgb:Msg>",
    b"</wsgb:Msg>",
    b"<wsgb:Msg target=\"/membership\">",
    b"<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\">",
    b"</env:Envelope>",
    b"<env:Header>",
    b"<env:Body>",
    b"</env:Body>",
    b"<env:Fault>",
    b"<wsa:To>http://peer/gossip</wsa:To>",
    b"<wsa:Action>urn:app:Op</wsa:Action>",
    b"urn:ws-membership:2008",
    b"<wsm:Member id=\"1\" addr=\"127.0.0.1:9000\" heartbeat=\"2\"/>",
    b"Heartbeat",
    b"JoinResponse",
    b"POST /gossip HTTP/1.1\r\n",
    b"HTTP/1.1 200 OK\r\n",
    b"Content-Length: 0\r\n",
    b"Transfer-Encoding: chunked\r\n",
    b"\r\n\r\n",
    b"<![CDATA[",
    b"]]>",
    b"<!--",
    b"-->",
    b"<!DOCTYPE a>",
    b"xmlns=\"\"",
    b"&amp;",
    b"&#x41;",
    b"&#xD800;",
];

/// Boundary numbers for length fields and numeric attributes.
pub const INTERESTING: &[&[u8]] = &[
    b"0",
    b"1",
    b"-1",
    b"255",
    b"65536",
    b"4294967295",
    b"8388609",
    b"18446744073709551615",
    b"99999999999999999999",
];

/// Apply a random stack of 1–4 mutations to `input` in place, truncating
/// to `max_len` at the end.
pub fn mutate(input: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut SplitMix64, max_len: usize) {
    let stack = rng.gen_range(1..=4usize);
    for _ in 0..stack {
        mutate_once(input, corpus, rng);
    }
    if input.len() > max_len {
        input.truncate(max_len);
    }
}

fn mutate_once(input: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut SplitMix64) {
    match rng.gen_range(0..16u32) {
        0 => bitflip(input, rng),
        1 => byte_set(input, rng),
        2 => insert_bytes(input, rng),
        3 => delete_range(input, rng),
        4 => repeat_range(input, rng),
        5 => truncate_tail(input, rng),
        6 => splice(input, corpus, rng),
        7 => overwrite_token(input, rng, INTERESTING),
        8 => insert_token(input, rng, DICTIONARY),
        9 => overwrite_token(input, rng, DICTIONARY),
        10 => case_flip(input, rng),
        11 => insert_token(input, rng, &[b"\r\n", b"\r", b"\n", b"\0"]),
        12 => swap_tags(input, rng),
        13 => duplicate_or_drop_tag(input, rng),
        14 => corrupt_content_length(input, rng),
        _ => shuffle_batch_segments(input, rng),
    }
}

fn bitflip(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        return insert_token(input, rng, DICTIONARY);
    }
    let bit = rng.gen_range(0..input.len() * 8);
    input[bit / 8] ^= 1 << (bit % 8);
}

fn byte_set(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        return insert_token(input, rng, DICTIONARY);
    }
    let at = rng.gen_range(0..input.len());
    input[at] = rng.gen_range(0..=255u32) as u8;
}

fn insert_bytes(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    let at = rng.gen_range(0..=input.len());
    let count = rng.gen_range(1..=8usize);
    for i in 0..count {
        input.insert(at + i, rng.gen_range(0..=255u32) as u8);
    }
}

fn delete_range(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        return;
    }
    let start = rng.gen_range(0..input.len());
    let len = rng.gen_range(1..=(input.len() - start).min(32));
    input.drain(start..start + len);
}

fn repeat_range(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        return insert_token(input, rng, DICTIONARY);
    }
    let start = rng.gen_range(0..input.len());
    let len = rng.gen_range(1..=(input.len() - start).min(64));
    let times = rng.gen_range(1..=4usize);
    let chunk: Vec<u8> = input[start..start + len].to_vec();
    let at = start + len;
    for t in 0..times {
        for (i, &b) in chunk.iter().enumerate() {
            input.insert(at + t * chunk.len() + i, b);
        }
    }
}

fn truncate_tail(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        return;
    }
    let keep = rng.gen_range(0..input.len());
    input.truncate(keep);
}

fn splice(input: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut SplitMix64) {
    let Some(other) = rng.choose(corpus) else {
        return;
    };
    if other.is_empty() {
        return;
    }
    let own_cut = rng.gen_range(0..=input.len());
    let other_cut = rng.gen_range(0..other.len());
    input.truncate(own_cut);
    input.extend_from_slice(&other[other_cut..]);
}

fn insert_token(input: &mut Vec<u8>, rng: &mut SplitMix64, pool: &[&[u8]]) {
    let Some(token) = rng.choose(pool) else {
        return;
    };
    let at = rng.gen_range(0..=input.len());
    for (i, &b) in token.iter().enumerate() {
        input.insert(at + i, b);
    }
}

fn overwrite_token(input: &mut Vec<u8>, rng: &mut SplitMix64, pool: &[&[u8]]) {
    let Some(token) = rng.choose(pool) else {
        return;
    };
    if input.len() < token.len() {
        return insert_token(input, rng, pool);
    }
    let at = rng.gen_range(0..=input.len() - token.len());
    input[at..at + token.len()].copy_from_slice(token);
}

fn case_flip(input: &mut [u8], rng: &mut SplitMix64) {
    if input.is_empty() {
        return;
    }
    let at = rng.gen_range(0..input.len());
    if input[at].is_ascii_alphabetic() {
        input[at] ^= 0x20;
    }
}

/// Byte spans of `<...>` markup tokens, by simple bracket scanning (no
/// parse — mutation must work on malformed input too).
fn tag_spans(input: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut open: Option<usize> = None;
    for (i, &b) in input.iter().enumerate() {
        match b {
            b'<' => open = Some(i),
            b'>' => {
                if let Some(start) = open.take() {
                    spans.push((start, i + 1));
                }
            }
            _ => {}
        }
    }
    spans
}

/// Structure-aware: exchange two markup tokens (start tags, end tags,
/// whole self-closing elements), e.g. reordering `</a></b>` close order.
fn swap_tags(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    let spans = tag_spans(input);
    if spans.len() < 2 {
        return bitflip(input, rng);
    }
    let a = rng.gen_range(0..spans.len());
    let b = rng.gen_range(0..spans.len());
    let (first, second) = if spans[a].0 <= spans[b].0 { (spans[a], spans[b]) } else { (spans[b], spans[a]) };
    if first == second || first.1 > second.0 {
        return bitflip(input, rng);
    }
    let mut out = Vec::with_capacity(input.len());
    out.extend_from_slice(&input[..first.0]);
    out.extend_from_slice(&input[second.0..second.1]);
    out.extend_from_slice(&input[first.1..second.0]);
    out.extend_from_slice(&input[first.0..first.1]);
    out.extend_from_slice(&input[second.1..]);
    *input = out;
}

/// Structure-aware: duplicate or delete one markup token, unbalancing
/// the element structure in a way byte mutators rarely produce cleanly.
fn duplicate_or_drop_tag(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    let spans = tag_spans(input);
    let Some(&(start, end)) = rng.choose(&spans) else {
        return bitflip(input, rng);
    };
    if rng.gen_range(0..2u32) == 0 {
        let chunk: Vec<u8> = input[start..end].to_vec();
        for (i, &b) in chunk.iter().enumerate() {
            input.insert(end + i, b);
        }
    } else {
        input.drain(start..end);
    }
}

/// Structure-aware: desynchronise the `Content-Length` header from the
/// actual body length — the classic HTTP framing attack surface.
fn corrupt_content_length(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    let needle = b"Content-Length:";
    let Some(at) = input
        .windows(needle.len())
        .position(|w| w.eq_ignore_ascii_case(needle))
    else {
        return insert_token(input, rng, &[b"Content-Length: 99\r\n"]);
    };
    let value_start = at + needle.len();
    let value_end = input[value_start..]
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .map(|i| value_start + i)
        .unwrap_or(input.len());
    let replacement: Vec<u8> = match rng.gen_range(0..3u32) {
        0 => {
            let Some(token) = rng.choose(INTERESTING) else { return };
            let mut v = b" ".to_vec();
            v.extend_from_slice(token);
            v
        }
        1 => format!(" {}", rng.gen_range(0..10_000u32)).into_bytes(),
        _ => b" ".to_vec(),
    };
    input.splice(value_start..value_end, replacement);
}

/// Structure-aware: reorder the `wsgb:Msg` segments of a batch document
/// (segment boundaries found textually, so near-batches mutate too).
fn shuffle_batch_segments(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    let sep = b"</wsgb:Msg>";
    let mut cuts = Vec::new();
    let mut from = 0;
    while let Some(i) = input[from..]
        .windows(sep.len())
        .position(|w| w == sep)
        .map(|i| from + i)
    {
        cuts.push(i + sep.len());
        from = i + sep.len();
    }
    if cuts.len() < 2 {
        return overwrite_token(input, rng, DICTIONARY);
    }
    // Segments: [0, cuts[0]), [cuts[0], cuts[1]), …, tail stays in place.
    let mut segments: Vec<Vec<u8>> = Vec::with_capacity(cuts.len());
    let mut start = 0;
    for &cut in &cuts {
        segments.push(input[start..cut].to_vec());
        start = cut;
    }
    let tail: Vec<u8> = input[start..].to_vec();
    rng.shuffle(&mut segments);
    input.clear();
    for segment in &segments {
        input.extend_from_slice(segment);
    }
    input.extend_from_slice(&tail);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(42)
    }

    #[test]
    fn mutation_is_deterministic() {
        let corpus = vec![b"<a><b/></a>".to_vec(), b"POST / HTTP/1.1\r\n\r\n".to_vec()];
        let mut first = corpus[0].clone();
        let mut second = corpus[0].clone();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..200 {
            mutate(&mut first, &corpus, &mut r1, 1 << 12);
            mutate(&mut second, &corpus, &mut r2, 1 << 12);
        }
        assert_eq!(first, second);
    }

    #[test]
    fn mutators_survive_degenerate_inputs() {
        let corpus = vec![Vec::new(), b"x".to_vec()];
        let mut r = rng();
        for len in [0usize, 1, 2, 3] {
            let mut input = vec![b'<'; len];
            for _ in 0..500 {
                mutate(&mut input, &corpus, &mut r, 64);
                assert!(input.len() <= 64);
            }
        }
    }

    #[test]
    fn tag_spans_finds_markup() {
        assert_eq!(tag_spans(b"<a><b/>"), vec![(0, 3), (3, 7)]);
        assert!(tag_spans(b"no markup").is_empty());
        // Unterminated tail tag is simply not a span.
        assert_eq!(tag_spans(b"<a><oops"), vec![(0, 3)]);
    }

    #[test]
    fn content_length_corruption_targets_the_value() {
        let mut input = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec();
        let mut r = rng();
        corrupt_content_length(&mut input, &mut r);
        let text = String::from_utf8_lossy(&input);
        assert!(text.starts_with("POST / HTTP/1.1\r\nContent-Length:"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello"), "{text}");
    }

    #[test]
    fn batch_shuffle_preserves_segment_multiset() {
        let wire = b"<B><wsgb:Msg>1</wsgb:Msg><wsgb:Msg>2</wsgb:Msg><wsgb:Msg>3</wsgb:Msg></B>";
        let mut r = SplitMix64::new(9);
        for _ in 0..16 {
            let mut input = wire.to_vec();
            shuffle_batch_segments(&mut input, &mut r);
            assert_eq!(input.len(), wire.len());
            let text = String::from_utf8(input).unwrap();
            assert_eq!(text.matches("</wsgb:Msg>").count(), 3);
            assert!(text.ends_with("</B>"));
        }
    }
}
