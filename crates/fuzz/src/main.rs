//! `wsg_fuzz` CLI — run the coverage-guided sweep, replay one input, or
//! regenerate the committed seed corpus.
//!
//! ```text
//! wsg_fuzz [--all | --target NAME]... [--budget N|Ns|Nms] [--seed N]
//!          [--save] [--assert-coverage]
//! wsg_fuzz --target NAME --replay FILE     (also: WSG_FUZZ_INPUT=FILE)
//! wsg_fuzz --write-seeds                   (regenerate fuzz/corpus seeds)
//! ```
//!
//! Exit codes: `0` clean, `1` crashes or oracle violations were found,
//! `2` usage error or `--assert-coverage` failure.

use std::process::ExitCode;

use wsg_fuzz::targets::{all_targets, target_by_name, FuzzTarget};
use wsg_fuzz::{corpus, fnv64, run_input, FuzzConfig};

struct Cli {
    targets: Vec<Box<dyn FuzzTarget>>,
    config: FuzzConfig,
    save: bool,
    assert_coverage: bool,
    replay: Option<String>,
    write_seeds: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        targets: Vec::new(),
        config: FuzzConfig::from_env(),
        save: false,
        assert_coverage: false,
        replay: std::env::var("WSG_FUZZ_INPUT").ok(),
        write_seeds: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--all" => cli.targets = all_targets(),
            "--target" => {
                let name = value("--target")?;
                cli.targets
                    .push(target_by_name(&name).ok_or(format!("unknown target '{name}'"))?);
            }
            "--budget" => {
                let spec = value("--budget")?;
                let (iterations, wall_ms) = wsg_fuzz::parse_budget(&spec);
                cli.config.budget = iterations.ok_or(format!("bad --budget '{spec}'"))?;
                cli.config.wall_ms = wall_ms;
            }
            "--seed" => {
                cli.config.seed =
                    value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--save" => cli.save = true,
            "--assert-coverage" => cli.assert_coverage = true,
            "--replay" => cli.replay = Some(value("--replay")?),
            "--write-seeds" => cli.write_seeds = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cli.targets.is_empty() {
        cli.targets = all_targets();
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("wsg_fuzz: {error}");
            return ExitCode::from(2);
        }
    };

    if cli.write_seeds {
        return match write_seeds() {
            Ok(count) => {
                println!("wrote {count} seed inputs under {}", corpus::corpus_root().display());
                ExitCode::SUCCESS
            }
            Err(error) => {
                eprintln!("wsg_fuzz: --write-seeds: {error}");
                ExitCode::from(2)
            }
        };
    }

    if let Some(path) = &cli.replay {
        let input = match std::fs::read(path) {
            Ok(input) => input,
            Err(error) => {
                eprintln!("wsg_fuzz: cannot read {path}: {error}");
                return ExitCode::from(2);
            }
        };
        let mut failed = false;
        for target in &cli.targets {
            match run_input(target.as_ref(), &input) {
                Ok(()) => println!("{}: ok ({} bytes)", target.name(), input.len()),
                Err(message) => {
                    failed = true;
                    println!("{}: FAIL — {message}", target.name());
                }
            }
        }
        return if failed { ExitCode::from(1) } else { ExitCode::SUCCESS };
    }

    let mut any_crash = false;
    let mut coverage_ok = true;
    for target in &cli.targets {
        let mut seeds = corpus::seeds(target.name()).unwrap_or_default();
        seeds.extend(corpus::regressions(target.name()).unwrap_or_default());
        let outcome = wsg_fuzz::fuzz(target.as_ref(), &seeds, &cli.config);
        println!(
            "{:<11} execs={:<7} corpus={:<4} edges={:<4} new-edges={:<4} crashes={}",
            outcome.target,
            outcome.executions,
            outcome.corpus.len(),
            outcome.coverage.iter().map(|(edge, _)| edge).collect::<std::collections::BTreeSet<_>>().len(),
            outcome.new_edges,
            outcome.crashes.len(),
        );
        if cli.save {
            for input in &outcome.corpus[seeds.len().min(outcome.corpus.len())..] {
                if let Err(err) = corpus::save(&corpus::dir_for(target.name()), input) {
                    eprintln!("wsg_fuzz: saving {} corpus entry failed: {err}", target.name());
                }
            }
            for crash in &outcome.crashes {
                if let Ok(path) =
                    corpus::save(&corpus::regressions_for(target.name()), &crash.minimized)
                {
                    println!("  saved regression {}", path.display());
                }
            }
        }
        for crash in &outcome.crashes {
            any_crash = true;
            println!(
                "  crash at iteration {} ({} bytes, minimized {}): {}",
                crash.iteration,
                crash.input.len(),
                crash.minimized.len(),
                crash.message
            );
            println!("  minimized input hash {:016x}", fnv64(&crash.minimized));
        }
        if cli.assert_coverage && outcome.new_edges == 0 {
            coverage_ok = false;
            eprintln!("wsg_fuzz: target {} discovered no new edges", outcome.target);
        }
    }
    if cli.assert_coverage && !wsg_net::cov::enabled() {
        eprintln!("wsg_fuzz: --assert-coverage requires RUSTFLAGS=\"--cfg wsg_cov\"");
        coverage_ok = false;
    }
    if !coverage_ok {
        ExitCode::from(2)
    } else if any_crash {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Regenerate the committed seed corpus from the real serialisers, so
/// seeds never drift from the wire format they exercise.
fn write_seeds() -> std::io::Result<usize> {
    use wsg_cluster::proto::{ClusterMessage, MemberEntry};
    use wsg_net::NodeId;
    use wsg_soap::batch::{write_batch, BatchItem};
    use wsg_soap::{Envelope, Fault, FaultCode, MessageHeaders};
    use wsg_xml::Element;

    let push = Envelope::request(
        MessageHeaders::request("http://peer:9000/gossip", "urn:ws-gossip:2008:Push"),
        Element::in_ns("wsg", "urn:ws-gossip:2008", "Push")
            .with_attr("round", "3")
            .with_child(Element::text_node("state", "v=17")),
    )
    .with_header(Element::text_node("Hint", "lazy"))
    .to_xml();
    let fault = Envelope::fault(
        MessageHeaders::request("http://peer:9000/gossip", "urn:ws-gossip:2008:Fault"),
        Fault::new(FaultCode::Sender, "malformed digest"),
    )
    .to_xml();

    let entry = |id: usize, port: u16, heartbeat: u64| MemberEntry {
        id: NodeId(id),
        addr: format!("10.0.0.{}:{port}", id + 1).parse().unwrap(),
        heartbeat,
    };
    let heartbeat = ClusterMessage::Heartbeat(vec![entry(0, 9000, 12), entry(1, 9001, 7)])
        .to_envelope("http://10.0.0.1:9000/membership")
        .to_xml();
    let join = ClusterMessage::Join(entry(2, 9002, 1))
        .to_envelope("http://10.0.0.1:9000/membership")
        .to_xml();

    let mut pair = String::new();
    write_batch(
        &[
            BatchItem { target: None, xml: &push },
            BatchItem { target: Some("/membership"), xml: &heartbeat },
        ],
        &mut pair,
    );
    let mut empty = String::new();
    write_batch(&[], &mut empty);

    type TargetSeeds<'a> = (&'a str, &'a [(&'a str, &'a [u8])]);
    let seeds: &[TargetSeeds<'_>] = &[
        (
            "http",
            &[
                (
                    "post-gossip",
                    b"POST /gossip HTTP/1.1\r\nHost: peer:9000\r\nSOAPAction: \"urn:ws-gossip:2008:Push\"\r\nContent-Length: 5\r\n\r\nhello",
                ),
                ("response-ok", b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"),
                (
                    "pipelined",
                    b"POST /a HTTP/1.1\r\nContent-Length: 1\r\n\r\nxPOST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                ),
            ],
        ),
        (
            "xml",
            &[
                ("envelope", push.as_bytes()),
                (
                    "mixed",
                    b"<?xml version=\"1.0\" encoding=\"UTF-8\"?><root a=\"1\"><!-- c --><child xmlns:p=\"urn:x\"><p:leaf>text &amp; more</p:leaf><![CDATA[raw <bits>]]></child><?pi data?></root>",
                ),
            ],
        ),
        ("envelope", &[("push", push.as_bytes()), ("fault", fault.as_bytes())]),
        (
            "batch",
            &[
                ("pair", pair.as_bytes()),
                ("empty", empty.as_bytes()),
                ("single", push.as_bytes()),
            ],
        ),
        (
            "membership",
            &[("heartbeat", heartbeat.as_bytes()), ("join", join.as_bytes())],
        ),
    ];

    let mut written = 0;
    for (target, inputs) in seeds {
        let dir = corpus::dir_for(target);
        std::fs::create_dir_all(&dir)?;
        for (name, bytes) in *inputs {
            std::fs::write(dir.join(format!("seed-{name}")), bytes)?;
            written += 1;
        }
    }
    Ok(written)
}
