//! WS-Addressing 1.0 message addressing properties.

use wsg_xml::{Element, QName, XmlError, XmlWriter};

use crate::error::SoapError;
use crate::{qnames, WSA_ANONYMOUS, WSA_NS};

/// A WS-Addressing endpoint reference: the address plus opaque reference
/// parameters that are echoed back in messages sent to the endpoint.
///
/// ```
/// use wsg_soap::EndpointReference;
///
/// let epr = EndpointReference::new("http://node7/gossip");
/// assert_eq!(epr.address(), "http://node7/gossip");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointReference {
    address: String,
    reference_parameters: Vec<Element>,
}

impl EndpointReference {
    /// An endpoint with the given address URI.
    pub fn new(address: impl Into<String>) -> Self {
        EndpointReference { address: address.into(), reference_parameters: Vec::new() }
    }

    /// The WS-Addressing anonymous endpoint.
    pub fn anonymous() -> Self {
        EndpointReference::new(WSA_ANONYMOUS)
    }

    /// Attach a reference parameter (builder style).
    pub fn with_parameter(mut self, parameter: Element) -> Self {
        self.reference_parameters.push(parameter);
        self
    }

    /// The address URI.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Reference parameters, in order.
    pub fn reference_parameters(&self) -> &[Element] {
        &self.reference_parameters
    }

    /// Serialise as the content of an EPR-typed element named `name`.
    pub fn to_element(&self, local: &str) -> Element {
        let mut epr = Element::in_ns("wsa", WSA_NS, local);
        epr.push_child(
            Element::in_ns("wsa", WSA_NS, "Address").with_text(self.address.clone()),
        );
        if !self.reference_parameters.is_empty() {
            let mut params = Element::in_ns("wsa", WSA_NS, "ReferenceParameters");
            for p in &self.reference_parameters {
                params.push_child(p.clone());
            }
            epr.push_child(params);
        }
        epr
    }

    /// Stream this EPR as an element named `name` into an open writer —
    /// byte-identical to serialising [`EndpointReference::to_element`],
    /// without building the intermediate tree.
    pub fn write_into(&self, name: &QName, w: &mut XmlWriter) -> Result<(), XmlError> {
        w.start_element(name)?;
        w.start_element(&qnames::WSA_ADDRESS)?;
        w.text(&self.address)?;
        w.end_element()?;
        if !self.reference_parameters.is_empty() {
            w.start_element(&qnames::WSA_REFERENCE_PARAMETERS)?;
            for p in &self.reference_parameters {
                p.write_into(w)?;
            }
            w.end_element()?;
        }
        w.end_element()
    }

    /// Parse an EPR from its element form.
    ///
    /// # Errors
    ///
    /// Fails when the mandatory `Address` child is missing.
    pub fn from_element(element: &Element) -> Result<Self, SoapError> {
        let address = element
            .child_ns(WSA_NS, "Address")
            .map(|a| a.text())
            .ok_or_else(|| SoapError::Addressing("EndpointReference without Address".into()))?;
        let mut epr = EndpointReference::new(address);
        if let Some(params) = element.child_ns(WSA_NS, "ReferenceParameters") {
            for child in params.children() {
                epr.reference_parameters.push(child.clone());
            }
        }
        Ok(epr)
    }
}

impl From<&str> for EndpointReference {
    fn from(address: &str) -> Self {
        EndpointReference::new(address)
    }
}

/// The WS-Addressing properties of one message: `To`, `Action`,
/// `MessageID`, `RelatesTo`, `From`, `ReplyTo`, `FaultTo`.
///
/// `To` and `Action` are the two properties SOAP intermediaries route on;
/// the gossip handler rewrites `To` when re-routing a message to peers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageHeaders {
    to: Option<String>,
    action: Option<String>,
    message_id: Option<String>,
    relates_to: Option<String>,
    from: Option<EndpointReference>,
    reply_to: Option<EndpointReference>,
    fault_to: Option<EndpointReference>,
}

impl MessageHeaders {
    /// Empty set of addressing properties.
    pub fn new() -> Self {
        Self::default()
    }

    /// The usual request shape: a destination and an action URI.
    pub fn request(to: impl Into<String>, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: Some(to.into()),
            action: Some(action.into()),
            ..Default::default()
        }
    }

    /// Builder: set `MessageID`.
    pub fn with_message_id(mut self, id: impl Into<String>) -> Self {
        self.message_id = Some(id.into());
        self
    }

    /// Builder: set `RelatesTo` (correlates replies to requests).
    pub fn with_relates_to(mut self, id: impl Into<String>) -> Self {
        self.relates_to = Some(id.into());
        self
    }

    /// Builder: set the `From` endpoint.
    pub fn with_from(mut self, from: EndpointReference) -> Self {
        self.from = Some(from);
        self
    }

    /// Builder: set the `ReplyTo` endpoint.
    pub fn with_reply_to(mut self, reply_to: EndpointReference) -> Self {
        self.reply_to = Some(reply_to);
        self
    }

    /// Builder: set the `FaultTo` endpoint.
    pub fn with_fault_to(mut self, fault_to: EndpointReference) -> Self {
        self.fault_to = Some(fault_to);
        self
    }

    /// Destination URI.
    pub fn to(&self) -> Option<&str> {
        self.to.as_deref()
    }

    /// Action URI identifying the operation.
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// Unique message identifier.
    pub fn message_id(&self) -> Option<&str> {
        self.message_id.as_deref()
    }

    /// Identifier of the message this one relates to.
    pub fn relates_to(&self) -> Option<&str> {
        self.relates_to.as_deref()
    }

    /// Source endpoint.
    pub fn from(&self) -> Option<&EndpointReference> {
        self.from.as_ref()
    }

    /// Reply endpoint.
    pub fn reply_to(&self) -> Option<&EndpointReference> {
        self.reply_to.as_ref()
    }

    /// Fault endpoint.
    pub fn fault_to(&self) -> Option<&EndpointReference> {
        self.fault_to.as_ref()
    }

    /// Rewrite the destination — used by the gossip layer when re-routing
    /// an intercepted message to a selected peer.
    pub fn set_to(&mut self, to: impl Into<String>) {
        self.to = Some(to.into());
    }

    /// Rewrite the source endpoint.
    pub fn set_from(&mut self, from: EndpointReference) {
        self.from = Some(from);
    }

    /// Set the message identifier.
    pub fn set_message_id(&mut self, id: impl Into<String>) {
        self.message_id = Some(id.into());
    }

    /// Serialise the present properties as SOAP header blocks.
    pub fn to_header_blocks(&self) -> Vec<Element> {
        let mut blocks = Vec::new();
        if let Some(to) = &self.to {
            blocks.push(Element::in_ns("wsa", WSA_NS, "To").with_text(to.clone()));
        }
        if let Some(action) = &self.action {
            blocks.push(Element::in_ns("wsa", WSA_NS, "Action").with_text(action.clone()));
        }
        if let Some(id) = &self.message_id {
            blocks.push(Element::in_ns("wsa", WSA_NS, "MessageID").with_text(id.clone()));
        }
        if let Some(rel) = &self.relates_to {
            blocks.push(Element::in_ns("wsa", WSA_NS, "RelatesTo").with_text(rel.clone()));
        }
        if let Some(from) = &self.from {
            blocks.push(from.to_element("From"));
        }
        if let Some(reply_to) = &self.reply_to {
            blocks.push(reply_to.to_element("ReplyTo"));
        }
        if let Some(fault_to) = &self.fault_to {
            blocks.push(fault_to.to_element("FaultTo"));
        }
        blocks
    }

    /// Whether any addressing property is set (i.e. whether
    /// [`MessageHeaders::to_header_blocks`] would be non-empty).
    pub fn is_empty(&self) -> bool {
        self.to.is_none()
            && self.action.is_none()
            && self.message_id.is_none()
            && self.relates_to.is_none()
            && self.from.is_none()
            && self.reply_to.is_none()
            && self.fault_to.is_none()
    }

    /// Stream the present properties as SOAP header blocks into an open
    /// writer — byte-identical to serialising the elements from
    /// [`MessageHeaders::to_header_blocks`] in order, without building them.
    pub fn write_header_blocks(&self, w: &mut XmlWriter) -> Result<(), XmlError> {
        // Text blocks mirror the tree form exactly: `with_text` always
        // pushes a text node, so `w.text` is called even for empty values
        // (`<wsa:To></wsa:To>`, never self-closed).
        if let Some(to) = &self.to {
            w.start_element(&qnames::WSA_TO)?;
            w.text(to)?;
            w.end_element()?;
        }
        if let Some(action) = &self.action {
            w.start_element(&qnames::WSA_ACTION)?;
            w.text(action)?;
            w.end_element()?;
        }
        if let Some(id) = &self.message_id {
            w.start_element(&qnames::WSA_MESSAGE_ID)?;
            w.text(id)?;
            w.end_element()?;
        }
        if let Some(rel) = &self.relates_to {
            w.start_element(&qnames::WSA_RELATES_TO)?;
            w.text(rel)?;
            w.end_element()?;
        }
        if let Some(from) = &self.from {
            from.write_into(&qnames::WSA_FROM, w)?;
        }
        if let Some(reply_to) = &self.reply_to {
            reply_to.write_into(&qnames::WSA_REPLY_TO, w)?;
        }
        if let Some(fault_to) = &self.fault_to {
            fault_to.write_into(&qnames::WSA_FAULT_TO, w)?;
        }
        Ok(())
    }

    /// Extract addressing properties from a set of SOAP header blocks,
    /// ignoring non-addressing headers.
    ///
    /// # Errors
    ///
    /// Fails when an EPR-typed header is structurally invalid.
    pub fn from_header_blocks(blocks: &[Element]) -> Result<Self, SoapError> {
        let mut headers = MessageHeaders::new();
        for block in blocks {
            if block.name().namespace() != Some(WSA_NS) {
                continue;
            }
            match block.local_name() {
                "To" => headers.to = Some(block.text()),
                "Action" => headers.action = Some(block.text()),
                "MessageID" => headers.message_id = Some(block.text()),
                "RelatesTo" => headers.relates_to = Some(block.text()),
                "From" => headers.from = Some(EndpointReference::from_element(block)?),
                "ReplyTo" => headers.reply_to = Some(EndpointReference::from_element(block)?),
                "FaultTo" => headers.fault_to = Some(EndpointReference::from_element(block)?),
                _ => {}
            }
        }
        Ok(headers)
    }
}

/// The qualified name of a WS-Addressing header block.
pub fn wsa_name(local: &str) -> QName {
    QName::with_ns(WSA_NS, local).with_prefix("wsa")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_to_and_action() {
        let h = MessageHeaders::request("http://dest", "urn:op");
        assert_eq!(h.to(), Some("http://dest"));
        assert_eq!(h.action(), Some("urn:op"));
        assert_eq!(h.message_id(), None);
    }

    #[test]
    fn header_blocks_roundtrip() {
        let h = MessageHeaders::request("http://dest", "urn:op")
            .with_message_id("urn:uuid:1")
            .with_relates_to("urn:uuid:0")
            .with_from(EndpointReference::new("http://src"))
            .with_reply_to(EndpointReference::anonymous())
            .with_fault_to(EndpointReference::new("http://faults"));
        let blocks = h.to_header_blocks();
        let parsed = MessageHeaders::from_header_blocks(&blocks).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn non_wsa_headers_ignored() {
        let foreign = Element::in_ns("x", "urn:other", "To").with_text("nope");
        let parsed = MessageHeaders::from_header_blocks(&[foreign]).unwrap();
        assert_eq!(parsed.to(), None);
    }

    #[test]
    fn epr_with_reference_parameters_roundtrips() {
        let epr = EndpointReference::new("http://node")
            .with_parameter(Element::text_node("shard", "3"));
        let el = epr.to_element("ReplyTo");
        let parsed = EndpointReference::from_element(&el).unwrap();
        assert_eq!(parsed, epr);
    }

    #[test]
    fn epr_without_address_rejected() {
        let el = Element::in_ns("wsa", WSA_NS, "ReplyTo");
        assert!(EndpointReference::from_element(&el).is_err());
    }

    #[test]
    fn set_to_rewrites_destination() {
        let mut h = MessageHeaders::request("http://a", "urn:op");
        h.set_to("http://b");
        assert_eq!(h.to(), Some("http://b"));
    }
}
