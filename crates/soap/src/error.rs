use std::fmt;

use wsg_xml::XmlError;

/// Error raised while building or parsing SOAP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SoapError {
    /// The underlying XML was malformed.
    Xml(XmlError),
    /// The document is XML but not a SOAP 1.2 envelope.
    NotAnEnvelope(String),
    /// The envelope is missing a required part.
    MissingPart(&'static str),
    /// A header carried `mustUnderstand="true"` but no handler understood it.
    NotUnderstood(String),
    /// A WS-Addressing property was missing or malformed.
    Addressing(String),
    /// A `urn:ws-gossip:batch` wrapper was malformed.
    Batch(String),
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "invalid xml: {e}"),
            SoapError::NotAnEnvelope(w) => write!(f, "not a soap 1.2 envelope: {w}"),
            SoapError::MissingPart(p) => write!(f, "envelope missing {p}"),
            SoapError::NotUnderstood(h) => {
                write!(f, "mustUnderstand header '{h}' was not understood")
            }
            SoapError::Addressing(w) => write!(f, "ws-addressing violation: {w}"),
            SoapError::Batch(w) => write!(f, "invalid batch: {w}"),
        }
    }
}

impl std::error::Error for SoapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoapError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Xml(e)
    }
}
