//! # wsg-soap — SOAP 1.2 processing stack
//!
//! The message layer the WS-Gossip middleware is built on: a SOAP 1.2
//! [`Envelope`] model with headers and faults, **WS-Addressing** message
//! addressing properties ([`addressing::MessageHeaders`]), and — most
//! importantly for the paper — a [`handler::HandlerChain`]: the *compliant
//! middleware stack* of the paper's §3, an ordered set of handlers through
//! which every inbound and outbound message flows, and which a handler (the
//! gossip layer) may use to intercept and **re-route** messages to selected
//! destinations.
//!
//! ## Example
//!
//! ```
//! use wsg_soap::{Envelope, addressing::MessageHeaders};
//! use wsg_xml::Element;
//!
//! # fn main() -> Result<(), wsg_soap::SoapError> {
//! let headers = MessageHeaders::request("http://svc/stock", "http://svc/stock/Notify")
//!     .with_message_id("urn:uuid:1234");
//! let envelope = Envelope::request(headers, Element::text_node("tick", "ACME 101.25"));
//! let wire = envelope.to_xml();
//! let parsed = Envelope::parse(&wire)?;
//! assert_eq!(parsed.addressing().action(), Some("http://svc/stock/Notify"));
//! # Ok(())
//! # }
//! ```

pub mod addressing;
pub mod batch;
pub mod envelope;
pub mod fault;
pub mod handler;
pub mod handlers;
pub mod qnames;
pub mod uuid;

mod error;

pub use addressing::{EndpointReference, MessageHeaders};
pub use envelope::Envelope;
pub use error::SoapError;
pub use fault::{Fault, FaultCode};
pub use handler::{ChainResult, Disposition, Handler, HandlerChain, HandlerOutcome, MessageContext};
pub use uuid::Uuid;

/// SOAP 1.2 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://www.w3.org/2003/05/soap-envelope";

/// WS-Addressing 1.0 namespace.
pub const WSA_NS: &str = "http://www.w3.org/2005/08/addressing";

/// WS-Addressing anonymous endpoint URI (reply to the connection peer).
pub const WSA_ANONYMOUS: &str = "http://www.w3.org/2005/08/addressing/anonymous";

/// WS-Addressing "none" endpoint URI (discard replies).
pub const WSA_NONE: &str = "http://www.w3.org/2005/08/addressing/none";
