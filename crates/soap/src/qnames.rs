//! Interned qualified names for the recurring SOAP and WS-Addressing
//! vocabulary.
//!
//! Every message serialised by the middleware writes these names, so they
//! are [`QName::interned`] statics: cloning one never allocates, which
//! keeps the per-message serialisation cost down on the gossip hot path.

use wsg_xml::QName;

use crate::{SOAP_ENV_NS, WSA_NS};

/// `env:Envelope`.
pub static ENVELOPE: QName = QName::interned(SOAP_ENV_NS, "env", "Envelope");

/// `env:Header`.
pub static HEADER: QName = QName::interned(SOAP_ENV_NS, "env", "Header");

/// `env:Body`.
pub static BODY: QName = QName::interned(SOAP_ENV_NS, "env", "Body");

/// `wsa:To`.
pub static WSA_TO: QName = QName::interned(WSA_NS, "wsa", "To");

/// `wsa:Action`.
pub static WSA_ACTION: QName = QName::interned(WSA_NS, "wsa", "Action");

/// `wsa:MessageID`.
pub static WSA_MESSAGE_ID: QName = QName::interned(WSA_NS, "wsa", "MessageID");

/// `wsa:RelatesTo`.
pub static WSA_RELATES_TO: QName = QName::interned(WSA_NS, "wsa", "RelatesTo");

/// `wsa:From`.
pub static WSA_FROM: QName = QName::interned(WSA_NS, "wsa", "From");

/// `wsa:ReplyTo`.
pub static WSA_REPLY_TO: QName = QName::interned(WSA_NS, "wsa", "ReplyTo");

/// `wsa:FaultTo`.
pub static WSA_FAULT_TO: QName = QName::interned(WSA_NS, "wsa", "FaultTo");

/// `wsa:Address`.
pub static WSA_ADDRESS: QName = QName::interned(WSA_NS, "wsa", "Address");

/// `wsa:ReferenceParameters`.
pub static WSA_REFERENCE_PARAMETERS: QName =
    QName::interned(WSA_NS, "wsa", "ReferenceParameters");
